//! The DBLP-like workload: generate a bibliography graph, answer the
//! Q01–Q10 workload under every strategy (Figure 6's comparison).
//!
//! Run with: `cargo run --release --example dblp_workload [authors]`

use jucq_core::{AnswerError, RdfDatabase, Strategy};
use jucq_datagen::dblp;
use jucq_store::EngineProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let authors: usize = std::env::args().nth(1).map(|a| a.parse()).transpose()?.unwrap_or(2_000);

    eprintln!("generating DBLP-like data for {authors} authors...");
    let graph = dblp::generate(&dblp::DblpConfig::new(authors));
    eprintln!("  {} data triples", graph.len());

    let mut db = RdfDatabase::from_graph(graph, EngineProfile::pg_like());
    db.prepare();

    println!(
        "\n{:<4} {:>10} {:>10} {:>10} {:>10}   (evaluation ms; F = failure)",
        "", "SAT", "UCQ", "SCQ", "GCov"
    );
    for nq in dblp::workload() {
        let q = db.parse_query(&nq.sparql)?;
        print!("{:<4}", nq.name);
        for s in [Strategy::Saturation, Strategy::Ucq, Strategy::Scq, Strategy::gcov_default()] {
            match db.answer(&q, &s) {
                Ok(r) => print!(" {:>10.1}", r.eval_time.as_secs_f64() * 1e3),
                Err(AnswerError::Engine(_)) => print!(" {:>10}", "F"),
                Err(e) => print!(" {:>10}", format!("{e:.6}")),
            }
        }
        println!();
    }

    // Per-query reformulation sizes (|q_ref| of Table 4).
    println!("\n|q_ref| per query (UCQ union terms):");
    for nq in dblp::workload() {
        let q = db.parse_query(&nq.sparql)?;
        match db.answer(&q, &Strategy::Ucq) {
            Ok(r) => println!("  {}: {}", nq.name, r.union_terms),
            Err(AnswerError::Engine(e)) => println!("  {}: too large ({e})", nq.name),
            Err(e) => println!("  {}: {e}", nq.name),
        }
    }
    Ok(())
}
