//! Cost-model calibration (§4.1): learn per-engine constants by running
//! calibration queries, then check the model's predictions against
//! measured evaluation times for the three covers of a two-atom query.
//!
//! Run with: `cargo run --release --example cost_calibration`

use jucq_core::reformulation::jucq_for_cover;
use jucq_core::reformulation::reformulate::ReformulationEnv;
use jucq_core::reformulation::Cover;
use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_optimizer::{calibrate, PaperCostModel};
use jucq_store::EngineProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = lubm::generate(&lubm::LubmConfig::new(1));
    println!("dataset: {} triples\n", graph.len());

    for profile in EngineProfile::rdbms_trio() {
        let name = profile.name.clone();
        let mut db = RdfDatabase::from_graph(graph.clone(), profile);
        db.prepare();
        let constants = calibrate(db.plain_store());
        db.set_cost_constants(constants);
        println!("[{name}] calibrated constants:");
        println!(
            "  c_db = {:.3e}s  c_t = {:.3e}s/t  c_j = {:.3e}s/t",
            constants.c_db, constants.c_t, constants.c_j
        );
        println!(
            "  c_m  = {:.3e}s/t  c_l = {:.3e}s/t  c_k = {:.3e}s/t",
            constants.c_m, constants.c_l, constants.c_k
        );

        // Predict vs measure on the three covers of a two-atom query.
        let sparql = format!(
            "PREFIX ub: <{}>\nSELECT ?x WHERE {{ ?x a ub:Student . ?x ub:memberOf ?d }}",
            lubm::NS
        );
        let q = db.parse_query(&sparql)?;
        let rdf_type = db.rdf_type();
        let covers = vec![
            ("UCQ  {{t1,t2}}", Cover::single_fragment(&q)?),
            ("SCQ  {{t1},{t2}}", Cover::singletons(&q)?),
        ];
        println!("  cover predictions vs measurements:");
        for (label, cover) in covers {
            let (predicted, measured) = {
                let closure = db.closure().clone();
                let env = ReformulationEnv { closure: &closure, rdf_type };
                let jucq = jucq_for_cover(&q, &cover, &env);
                let store = db.plain_store();
                let model = PaperCostModel::new(store.table(), store.stats(), constants);
                let predicted = model.cost(&jucq);
                let report = db.answer(&q, &Strategy::FixedCover(cover.clone()))?;
                (predicted, report.eval_time.as_secs_f64())
            };
            println!("    {label:<18} predicted {predicted:>9.4}s   measured {measured:>9.4}s");
        }
        println!();
    }
    Ok(())
}
