//! Incremental updates: the paper's §5.3 trade-off, live.
//!
//! Saturation-based answering pays a maintenance cost on every update;
//! reformulation adapts at query time for free. This example inserts
//! and deletes triples on a prepared database and shows (a) both
//! techniques staying in sync through counting-based incremental
//! saturation maintenance, and (b) the per-update entailment deltas.
//!
//! Run with: `cargo run --release --example incremental_updates`

use jucq_core::model::{Term, Triple};
use jucq_core::{RdfDatabase, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = RdfDatabase::new();
    db.load_turtle(
        r#"
        @prefix ex: <http://example.org/> .
        ex:Book      rdfs:subClassOf    ex:Publication .
        ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
        ex:writtenBy rdfs:domain        ex:Book .
        ex:writtenBy rdfs:range         ex:Person .
        ex:doi1      ex:writtenBy       ex:grrm .
    "#,
    )?;
    db.prepare();

    let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <http://example.org/Person> . }")?;
    let count =
        |db: &mut RdfDatabase, q, s: &Strategy| db.answer(q, s).map(|r| r.rows.len()).unwrap_or(0);
    println!(
        "people before update: SAT={} GCov={}",
        count(&mut db, &q, &Strategy::Saturation),
        count(&mut db, &q, &Strategy::gcov_default()),
    );

    // Insert a second book.
    let batch = vec![Triple::new(
        Term::uri("http://example.org/doi2"),
        Term::uri("http://example.org/writtenBy"),
        Term::uri("http://example.org/robin"),
    )];
    let report = db.apply_data_updates(&batch, &[]);
    println!(
        "insert: incremental={} (+{} explicit, +{} entailed)",
        report.incremental, report.inserted, report.entailed_added
    );
    println!(
        "people after insert:  SAT={} GCov={}",
        count(&mut db, &q, &Strategy::Saturation),
        count(&mut db, &q, &Strategy::gcov_default()),
    );

    // And delete it again: the entailed Person fact must disappear too.
    let report = db.apply_data_updates(&[], &batch);
    println!(
        "delete: incremental={} (-{} explicit, -{} entailed)",
        report.incremental, report.deleted, report.entailed_removed
    );
    println!(
        "people after delete:  SAT={} GCov={}",
        count(&mut db, &q, &Strategy::Saturation),
        count(&mut db, &q, &Strategy::gcov_default()),
    );
    Ok(())
}
