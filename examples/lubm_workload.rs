//! The LUBM-like workload, end to end: generate a university graph,
//! answer the paper's motivating query q1 and a sample of the Q01–Q28
//! workload under every strategy, and print a Figure-4-style
//! comparison.
//!
//! Run with: `cargo run --release --example lubm_workload [universities]`

use std::time::Duration;

use jucq_core::{AnswerError, CostSource, RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_store::EngineProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universities: usize = std::env::args().nth(1).map(|a| a.parse()).transpose()?.unwrap_or(1);

    eprintln!("generating LUBM-like data for {universities} university(ies)...");
    let graph = lubm::generate(&lubm::LubmConfig::new(universities));
    eprintln!("  {} data triples", graph.len());

    let mut db = RdfDatabase::from_graph(graph, EngineProfile::pg_like());
    eprintln!("preparing stores (plain + saturated) and calibrating...");
    db.prepare();

    let strategies: Vec<Strategy> = vec![
        Strategy::Saturation,
        Strategy::Ucq,
        Strategy::Scq,
        Strategy::GCov {
            budget: Duration::from_secs(10),
            max_moves: 2_000,
            cost: CostSource::Paper,
        },
    ];

    let mut queries = lubm::motivating_queries();
    for name in ["Q01", "Q05", "Q08", "Q10", "Q14", "Q22"] {
        queries.extend(lubm::workload().into_iter().filter(|q| q.name == name));
    }

    println!(
        "\n{:<4} {:>12} {:>12} {:>12} {:>12}   (evaluation ms; F = engine failure)",
        "", "SAT", "UCQ", "SCQ", "GCov"
    );
    for nq in &queries {
        let q = db.parse_query(&nq.sparql)?;
        print!("{:<4}", nq.name);
        for s in &strategies {
            match db.answer(&q, s) {
                Ok(r) => print!(" {:>12.1}", r.eval_time.as_secs_f64() * 1e3),
                Err(AnswerError::Engine(e)) => {
                    let tag = if e.to_string().contains("stack depth") { "F(union)" } else { "F" };
                    print!(" {tag:>12}");
                }
                Err(e) => print!(" {:>12}", format!("{e:.8}")),
            }
        }
        println!();
    }

    // Show the chosen cover for q1 — the paper's Table 2 story.
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql)?;
    let report = db.answer(&q1, &Strategy::gcov_default())?;
    println!(
        "\nGCov chose cover {} for q1 ({} union terms, {} covers explored, {} answers)",
        report.cover.as_ref().expect("cover-based strategy"),
        report.union_terms,
        report.covers_explored.unwrap_or(0),
        report.rows.len(),
    );
    Ok(())
}
