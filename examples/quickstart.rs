//! Quickstart: load a tiny RDF graph with RDFS constraints, then answer
//! a query that has **no explicit matches** — all answers are implicit
//! and recovered either by saturating the graph or by reformulating the
//! query (the paper's two reasoning techniques).
//!
//! Run with: `cargo run --example quickstart`

use jucq_core::{RdfDatabase, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = RdfDatabase::new();
    db.load_turtle(
        r#"
        @prefix ex: <http://example.org/> .

        # Schema: books are publications; writing something makes you its
        # author; only books are written; writers of books are people.
        ex:Book      rdfs:subClassOf    ex:Publication .
        ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
        ex:writtenBy rdfs:domain        ex:Book .
        ex:writtenBy rdfs:range         ex:Person .

        # Data: one book, described only through writtenBy.
        ex:doi1 ex:writtenBy  ex:grrm .
        ex:doi1 ex:hasTitle   "Game of Thrones" .
        ex:grrm ex:hasName    "George R. R. Martin" .
        ex:doi1 ex:publishedIn "1996" .
    "#,
    )?;

    // Who are the known people? Nothing is *explicitly* typed Person:
    // the answer exists only because range(writtenBy) = Person.
    let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <http://example.org/Person> . }")?;

    println!("query: people (no explicit rdf:type Person triples exist)\n");
    for strategy in [Strategy::Saturation, Strategy::Ucq, Strategy::Scq, Strategy::gcov_default()] {
        let report = db.answer(&q, &strategy)?;
        let rows = db.decode_rows(&report.rows);
        println!(
            "{:>5}: {} answer(s) via {} union term(s) in {:?}",
            report.strategy,
            rows.len(),
            report.union_terms,
            report.eval_time,
        );
        for row in rows {
            println!("        -> {}", row[0]);
        }
    }

    // The reformulation itself, printed: the UCQ contains the original
    // atom plus the range-derived rewriting (z writtenBy x).
    let report = db.answer(&q, &Strategy::Ucq)?;
    println!(
        "\nUCQ reformulation size |q_ref| = {} (original atom + schema-derived rewritings)",
        report.union_terms
    );
    Ok(())
}
