//! Property tests of the optimizer layer: the cost model behaves like a
//! cost model (non-negative, monotone in obvious dimensions), and the
//! cover-search algorithms return valid covers whose reported costs are
//! reproducible.

use proptest::prelude::*;
use std::time::Duration;

use jucq_core::reformulation::reformulate::ReformulationEnv;
use jucq_core::RdfDatabase;
use jucq_model::{vocab, Graph, Term, Triple};
use jucq_optimizer::{ecov, gcov, CostConstants, CoverSearch, PaperCostModel};
use jucq_reformulation::BgpQuery;
use jucq_store::{EngineProfile, PatternTerm, StorePattern};

/// A small deterministic dataset with hierarchy and selectivity skew.
fn database(seed: u64) -> RdfDatabase {
    let mut g = Graph::new();
    let t = |s: String, p: String, o: String| Triple::new(Term::uri(s), Term::uri(p), Term::uri(o));
    g.insert(&t("C1".into(), vocab::RDFS_SUBCLASS_OF.into(), "C0".into()));
    g.insert(&t("C2".into(), vocab::RDFS_SUBCLASS_OF.into(), "C1".into()));
    g.insert(&t("p1".into(), vocab::RDFS_DOMAIN.into(), "C0".into()));
    g.insert(&t("p2".into(), vocab::RDFS_RANGE.into(), "C2".into()));
    g.insert(&t("p3".into(), vocab::RDFS_SUBPROPERTY_OF.into(), "p1".into()));
    // Data with a seed-dependent skew.
    let n = 200 + (seed % 100) as usize;
    for i in 0..n {
        g.insert(&t(format!("e{i}"), "p1".into(), format!("v{}", i % 7)));
        if i % 3 == 0 {
            g.insert(&t(format!("e{i}"), "p2".into(), format!("e{}", (i + 1) % n)));
        }
        if i % 11 == 0 {
            g.insert(&t(format!("e{i}"), "p3".into(), format!("v{}", i % 5)));
        }
        g.insert(&t(format!("e{i}"), vocab::RDF_TYPE.into(), format!("C{}", i % 3)));
    }
    let mut db = RdfDatabase::from_graph(g, EngineProfile::pg_like());
    db.set_cost_constants(CostConstants::default());
    db.prepare();
    db
}

fn three_atom_query(db: &mut RdfDatabase) -> BgpQuery {
    let ty = db.rdf_type();
    let c0 = db.intern_uri("C0");
    let p1 = db.intern_uri("p1");
    let p2 = db.intern_uri("p2");
    BgpQuery::new(
        vec![0],
        vec![
            StorePattern::new(PatternTerm::Var(0), PatternTerm::Const(ty), PatternTerm::Const(c0)),
            StorePattern::new(PatternTerm::Var(0), PatternTerm::Const(p1), PatternTerm::Var(1)),
            StorePattern::new(PatternTerm::Var(0), PatternTerm::Const(p2), PatternTerm::Var(2)),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn costs_are_positive_and_scale_with_constants(seed in 0u64..50) {
        let mut db = database(seed);
        let q = three_atom_query(&mut db);
        let rdf_type = db.rdf_type();
        let closure = db.closure().clone();
        let env = ReformulationEnv { closure: &closure, rdf_type };
        let store = db.plain_store();

        let base = CostConstants::default();
        let mut doubled = base;
        doubled.c_t *= 2.0;
        doubled.c_j *= 2.0;
        doubled.c_l *= 2.0;
        doubled.c_m *= 2.0;
        doubled.c_k *= 2.0;
        doubled.c_db *= 2.0;

        let m1 = PaperCostModel::new(store.table(), store.stats(), base);
        let m2 = PaperCostModel::new(store.table(), store.stats(), doubled);
        let s1 = CoverSearch::new(&q, env, &m1);
        let s2 = CoverSearch::new(&q, env, &m2);
        let c1 = s1.cover_cost(&jucq_reformulation::Cover::singletons(&q).unwrap());
        let c2 = s2.cover_cost(&jucq_reformulation::Cover::singletons(&q).unwrap());
        prop_assert!(c1 > 0.0 && c1.is_finite());
        prop_assert!((c2 / c1 - 2.0).abs() < 1e-6, "cost is linear in the constants: {c2} vs {c1}");
    }

    #[test]
    fn gcov_never_beats_its_own_reported_cost(seed in 0u64..50) {
        let mut db = database(seed);
        let q = three_atom_query(&mut db);
        let rdf_type = db.rdf_type();
        let closure = db.closure().clone();
        let env = ReformulationEnv { closure: &closure, rdf_type };
        let store = db.plain_store();
        let model = PaperCostModel::new(store.table(), store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let r = gcov(&search, Duration::from_secs(10), 1_000).unwrap();
        // Re-costing the returned cover reproduces the reported value.
        let again = search.cover_cost(&r.cover);
        prop_assert!((again - r.estimated_cost).abs() < 1e-9);
    }

    #[test]
    fn ecov_at_least_matches_gcov_estimate(seed in 0u64..50) {
        let mut db = database(seed);
        let q = three_atom_query(&mut db);
        let rdf_type = db.rdf_type();
        let closure = db.closure().clone();
        let env = ReformulationEnv { closure: &closure, rdf_type };
        let store = db.plain_store();
        let model = PaperCostModel::new(store.table(), store.stats(), CostConstants::default());
        let s_e = CoverSearch::new(&q, env, &model);
        let e = ecov(&s_e, Duration::from_secs(10)).unwrap();
        let s_g = CoverSearch::new(&q, env, &model);
        let g = gcov(&s_g, Duration::from_secs(10), 1_000).unwrap();
        prop_assert!(!e.truncated, "3-atom space is tiny");
        prop_assert!(
            e.estimated_cost <= g.estimated_cost + 1e-9,
            "exhaustive optimum ({}) cannot exceed the greedy one ({})",
            e.estimated_cost,
            g.estimated_cost
        );
        // Both covers are valid covers of the query's atoms.
        for r in [&e, &g] {
            let mut covered: Vec<usize> = r.cover.fragments().into_iter().flatten().collect();
            covered.sort_unstable();
            covered.dedup();
            prop_assert_eq!(covered, vec![0, 1, 2]);
        }
    }
}
