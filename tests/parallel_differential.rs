//! Differential test for the parallel JUCQ execution engine: a
//! parallel run must be indistinguishable from a sequential one.
//!
//! For every engine profile, every generated workload (LUBM and DBLP)
//! and every strategy with a fragment-evaluation phase, running the
//! same query at parallelism 1 (strictly sequential), 2 and 8 must
//! yield *identical* sorted answer rows and *identical* aggregate
//! executor `Counters` — the order-stable merge makes worker
//! scheduling unobservable. When the sequential run fails (budget,
//! timeout), the parallel run must fail too.

use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::{dblp, lubm};
use jucq_model::Graph;
use jucq_store::{Counters, EngineProfile, Relation};

const PARALLELISMS: [usize; 3] = [1, 2, 8];

type Observation = Result<(Vec<Vec<jucq_model::TermId>>, Counters), String>;

fn tuned(profile: EngineProfile) -> EngineProfile {
    profile
        .with_max_union_terms(2_000_000)
        .with_memory_budget(100_000_000)
        .with_timeout(std::time::Duration::from_secs(60))
}

fn sorted_rows(mut r: Relation) -> Vec<Vec<jucq_model::TermId>> {
    r.sort();
    r.to_rows()
}

/// Answer `sparql` under `strategy` at each parallelism level and
/// return one (rows, counters) observation per level; a failed run
/// records its error message instead.
fn observe(
    graph: &Graph,
    profile: &EngineProfile,
    sparql: &str,
    strategy: &Strategy,
) -> Vec<Observation> {
    PARALLELISMS
        .iter()
        .map(|&p| {
            let mut db =
                RdfDatabase::from_graph(graph.clone(), tuned(profile.clone().with_parallelism(p)));
            db.set_cost_constants(Default::default());
            let q = db.parse_query(sparql).expect("workload query parses");
            match db.answer(&q, strategy) {
                Ok(r) => Ok((sorted_rows(r.rows), r.counters)),
                Err(e) => Err(e.to_string()),
            }
        })
        .collect()
}

fn check_workload(graph: &Graph, queries: &[jucq_datagen::NamedQuery], profiles: &[EngineProfile]) {
    for profile in profiles {
        for nq in queries {
            for strategy in [Strategy::Ucq, Strategy::gcov_default()] {
                let obs = observe(graph, profile, &nq.sparql, &strategy);
                let (reference, rest) = obs.split_first().expect("three parallelism levels");
                for (level, got) in PARALLELISMS[1..].iter().zip(rest) {
                    match (reference, got) {
                        (Ok((ref_rows, ref_counters)), Ok((rows, counters))) => {
                            assert_eq!(
                                ref_rows,
                                rows,
                                "{}/{}: rows differ at parallelism {level}",
                                nq.name,
                                strategy.name()
                            );
                            assert_eq!(
                                ref_counters,
                                counters,
                                "{}/{}: counters differ at parallelism {level}",
                                nq.name,
                                strategy.name()
                            );
                        }
                        (Err(_), Err(_)) => {
                            // Same-failure equality: both runs hit an
                            // engine limit. The exact message may
                            // differ (parallel holds every member
                            // result until the merge, so it can breach
                            // the memory budget earlier).
                        }
                        (Ok(_), Err(e)) => {
                            // The parallel memory model reserves all
                            // member results at once; only a memory
                            // budget breach may appear at higher
                            // parallelism where sequential passed.
                            assert!(
                                e.contains("memory budget"),
                                "{}/{}: parallelism {level} failed where sequential \
                                 passed, and not on the memory budget: {e}",
                                nq.name,
                                strategy.name()
                            );
                        }
                        (Err(e), Ok(_)) => panic!(
                            "{}/{}: parallelism {level} succeeded where sequential \
                             failed ({e})",
                            nq.name,
                            strategy.name()
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn lubm_parallel_matches_sequential_across_profiles() {
    let graph = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 });
    // A selective slice of the workload keeps the full profile ×
    // strategy × parallelism matrix fast; the chosen queries span
    // single-atom, star and reformulation-heavy shapes.
    let picked = ["q1", "Q08", "Q15", "Q22"];
    let queries: Vec<_> = lubm::motivating_queries()
        .into_iter()
        .chain(lubm::workload())
        .filter(|q| picked.contains(&q.name.as_str()))
        .collect();
    assert_eq!(queries.len(), picked.len(), "all sampled queries found");
    check_workload(&graph, &queries, &EngineProfile::rdbms_trio());
}

#[test]
fn dblp_parallel_matches_sequential_across_profiles() {
    let graph = dblp::generate(&dblp::DblpConfig { authors: 200, seed: 7 });
    let queries: Vec<_> = dblp::workload().into_iter().take(4).collect();
    check_workload(&graph, &queries, &EngineProfile::rdbms_trio());
}
