//! End-to-end workload telemetry: record a LUBM workload into the
//! structured query log, round-trip it through JSONL, replay it against
//! an identical fresh database with zero mismatches, and validate the
//! catapult trace export — the acceptance path of `--query-log` /
//! `jucq replay` / `--trace-out`.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_obs::record::{self, QueryLogConfig, QueryRecord};
use jucq_store::EngineProfile;

/// The obs sink and span collector are process-global; serialize the
/// tests that install them.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn permissive() -> EngineProfile {
    EngineProfile::pg_like()
        .with_max_union_terms(2_000_000)
        .with_memory_budget(100_000_000)
        .with_timeout(Duration::from_secs(30))
}

fn lubm_db() -> RdfDatabase {
    let graph = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 });
    let mut db = RdfDatabase::from_graph(graph, permissive());
    db.set_cost_constants(Default::default());
    db.enable_plan_cache(64);
    db
}

fn sample_queries() -> Vec<jucq_datagen::NamedQuery> {
    lubm::motivating_queries()
        .into_iter()
        .chain(lubm::workload())
        .filter(|q| ["q1", "Q08", "Q15", "Q22"].contains(&q.name.as_str()))
        .collect()
}

/// Answer the sample workload with the sink installed, returning the
/// written log text.
fn record_workload(log_path: &std::path::Path) -> String {
    record::install(QueryLogConfig {
        path: Some(log_path.to_path_buf()),
        ring_capacity: 0,
        slow_threshold: None,
    })
    .expect("install query-log sink");
    let mut db = lubm_db();
    for nq in sample_queries() {
        let q = db.parse_query(&nq.sparql).expect("workload query parses");
        for strategy in [Strategy::Saturation, Strategy::Ucq, Strategy::gcov_default()] {
            db.answer(&q, &strategy).expect("workload query answers");
        }
        // A fixed cover exercises the `Cover` replay path (the record
        // must carry the fragments to rebuild it).
        let cover = jucq_core::reformulation::Cover::singletons(&q).expect("singleton cover");
        db.answer(&q, &Strategy::FixedCover(cover)).expect("fixed cover answers");
    }
    // Answer one query twice so the plan cache serves the repetition
    // and the record carries a cache-hit flag.
    let nq = &sample_queries()[0];
    let q = db.parse_query(&nq.sparql).unwrap();
    db.answer(&q, &Strategy::gcov_default()).expect("repeat answers");
    record::uninstall();
    std::fs::read_to_string(log_path).expect("query log written")
}

#[test]
fn recorded_workload_replays_with_zero_mismatches() {
    let _serial = obs_lock();
    let log_path =
        std::env::temp_dir().join(format!("jucq-telemetry-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let text = record_workload(&log_path);

    let (records, errors) = record::parse_log(&text);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(records.len(), sample_queries().len() * 4 + 1);

    // Every record round-trips through its JSONL rendering.
    for rec in &records {
        let line = rec.to_json_line();
        let parsed = QueryRecord::from_json_line(&line).expect("round-trips");
        assert_eq!(&parsed, rec);
        assert_eq!(rec.outcome, "ok");
        assert!(!rec.fingerprint.is_empty());
        assert!(rec.plan_fingerprint.is_some(), "profiled runs carry a plan fingerprint");
        assert!(!rec.nodes.is_empty(), "profiled runs carry per-node rows");
        assert!(rec.slow_explain.is_none(), "no threshold, no explain payload");
    }
    // The same query shape fingerprints identically across strategies
    // and the Cover record carries its fragments.
    let q1: Vec<&QueryRecord> =
        records.iter().filter(|r| r.fingerprint == records[0].fingerprint).collect();
    assert!(q1.len() >= 4, "one record per strategy for the first query");
    assert!(records.iter().any(|r| r.strategy == "Cover" && r.cover.is_some()));
    // The repeated GCov run hit the plan cache.
    let last = records.last().unwrap();
    assert_eq!(last.cover_cache_hit, Some(true), "repeat served from cover cache");

    // Replay against an identical fresh database: zero mismatches.
    let mut db = lubm_db();
    let report = jucq_core::replay(&mut db, &records);
    assert_eq!(report.total, records.len());
    assert_eq!(report.row_mismatches, 0, "{:#?}", report.entries);
    assert_eq!(report.outcome_mismatches, 0);
    assert_eq!(report.replay_errors, 0);
    assert_eq!(report.mismatches(), 0);
    assert!(report.recorded_latency.p50 > 0, "recorded percentiles are real timings");
    assert!(report.replayed_latency.p50 > 0);
    assert!(report.recorded_latency.p50 <= report.recorded_latency.p95);
    assert!(report.recorded_latency.p95 <= report.recorded_latency.p99);

    // The report document parses and carries the percentile deltas.
    let doc = jucq_obs::json::parse(&report.to_json()).expect("report is valid JSON");
    use jucq_obs::json::Value;
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("jucq-replay/1"));
    assert_eq!(doc.get("row_mismatches").and_then(Value::as_u64), Some(0));
    for key in ["recorded_latency_ns", "replayed_latency_ns", "latency_delta_ns"] {
        let pct = doc.get(key).unwrap_or_else(|| panic!("report has `{key}`"));
        for p in ["p50", "p95", "p99"] {
            assert!(pct.get(p).and_then(Value::as_f64).is_some(), "{key}.{p}");
        }
    }
    assert_eq!(doc.get("entries").and_then(Value::as_arr).map(<[Value]>::len), Some(records.len()));
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn slow_threshold_embeds_the_explain_tree() {
    let _serial = obs_lock();
    record::install(QueryLogConfig {
        path: None,
        ring_capacity: 0,
        slow_threshold: Some(Duration::ZERO),
    })
    .expect("install");
    let mut db = lubm_db();
    let nq = &sample_queries()[0];
    let q = db.parse_query(&nq.sparql).unwrap();
    db.answer(&q, &Strategy::gcov_default()).expect("answers");
    let records = record::drain_ring();
    record::uninstall();
    assert_eq!(records.len(), 1);
    let explain = records[0].slow_explain.as_deref().expect("threshold 0 captures every query");
    assert!(explain.contains("EXPLAIN ANALYZE"), "{explain}");
    // And the payload survives the JSONL round-trip.
    let parsed = QueryRecord::from_json_line(&records[0].to_json_line()).expect("round-trips");
    assert_eq!(parsed.slow_explain.as_deref(), Some(explain));
}

#[test]
fn answered_queries_export_a_valid_catapult_trace() {
    let _serial = obs_lock();
    jucq_obs::reset();
    jucq_obs::set_enabled(true);
    let mut db = lubm_db();
    let nq = &sample_queries()[0];
    let q = db.parse_query(&nq.sparql).unwrap();
    db.answer(&q, &Strategy::gcov_default()).expect("answers");
    jucq_obs::set_enabled(false);
    let session = jucq_obs::take_session();
    let trace = jucq_obs::to_chrome_trace(&session);
    let complete = jucq_obs::trace_export::validate_catapult(&trace).expect("valid trace");
    assert!(complete >= 2, "expected at least answer+planning spans, got {complete}");
    assert!(trace.contains("\"answer\""));
}
