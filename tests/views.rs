//! End-to-end materialized-view tests: pin cover fragments, answer
//! through the catalog, and check that incremental maintenance
//! invalidates *exactly* the fragments whose footprint the delta
//! touches — with answers identical to a view-free database at every
//! step.

use jucq_core::{RdfDatabase, ServingDb, Strategy};
use jucq_model::{Term, Triple};
use jucq_store::EngineProfile;

/// Sorted, decoded rows — the dictionary-independent answer fingerprint.
fn fingerprint(rows: Vec<Vec<Term>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|row| row.iter().map(ToString::to_string).collect::<Vec<_>>().join("\t"))
        .collect();
    out.sort();
    out
}

/// Two disjoint sub-property hierarchies, so `knows`-rooted and
/// `employs`-rooted fragments have non-overlapping footprints.
const TTL: &str = r#"
    @prefix ex: <http://example.org/> .
    ex:advises rdfs:subPropertyOf ex:knows .
    ex:teaches rdfs:subPropertyOf ex:employs .
    ex:a1 ex:advises ex:s1 .
    ex:a2 ex:knows ex:s2 .
    ex:t1 ex:teaches ex:c1 .
    ex:t2 ex:employs ex:c2 .
"#;

const Q_KNOWS: &str = "SELECT ?x ?y WHERE { ?x <http://example.org/knows> ?y . }";
const Q_EMPLOYS: &str = "SELECT ?x ?y WHERE { ?x <http://example.org/employs> ?y . }";

fn views_db() -> RdfDatabase {
    // Pin the knob explicitly so the test is immune to JUCQ_VIEWS in
    // the environment (the fuzz matrix sets it).
    let mut db = RdfDatabase::with_profile(EngineProfile::default().with_view_scans(true));
    db.load_turtle(TTL).expect("schema + data load");
    db.enable_views(10_000);
    db
}

fn answer(db: &mut RdfDatabase, sparql: &str) -> Vec<String> {
    let q = db.parse_query(sparql).expect("query parses");
    let r = db.answer(&q, &Strategy::Ucq).expect("query answers");
    fingerprint(db.decode_rows(&r.rows))
}

#[test]
fn pinned_views_serve_identical_answers_and_count_hits() {
    let mut db = views_db();
    let baseline_knows = answer(&mut db, Q_KNOWS);
    let baseline_employs = answer(&mut db, Q_EMPLOYS);
    assert_eq!(baseline_knows.len(), 2, "knows ∪ advises");
    let before = db.view_stats().expect("views enabled");
    assert_eq!(before.entries, 0);

    let q = db.parse_query(Q_KNOWS).unwrap();
    let pinned = db.pin_cover_fragments(&q, &Strategy::Ucq, None).expect("pin succeeds");
    assert_eq!(pinned, 1, "a UCQ plan is one fragment");
    // Re-pinning the same fragment is a no-op.
    assert_eq!(db.pin_cover_fragments(&q, &Strategy::Ucq, None).unwrap(), 0);

    let hits_before = db.view_stats().unwrap().hits;
    assert_eq!(answer(&mut db, Q_KNOWS), baseline_knows, "view-served answer identical");
    let after = db.view_stats().unwrap();
    assert!(after.hits > hits_before, "the pinned fragment resolved from the catalog");
    assert_eq!(after.entries, 1);

    // The unpinned query is unaffected and hits nothing new.
    assert_eq!(answer(&mut db, Q_EMPLOYS), baseline_employs);

    // The report surfaces the catalog size for the query log.
    let q = db.parse_query(Q_KNOWS).unwrap();
    let r = db.answer(&q, &Strategy::Ucq).unwrap();
    assert_eq!(r.view_catalog_size, 1);
}

/// The catalog is a *cross-query* cache: the canonical signature
/// renumbers variables, so pinning the `knows` fragment from one query
/// must serve an isomorphic fragment of a *different* query whose
/// VarIds differ (here the fragment sits after another atom, so its
/// variables number 1,2 instead of 0,1). The copy must be positional —
/// realigning by per-query VarId panics or permutes columns.
#[test]
fn cross_query_isomorphic_fragment_serves_from_the_catalog() {
    const CHAIN_TTL: &str = r#"
        @prefix ex: <http://example.org/> .
        ex:advises rdfs:subPropertyOf ex:knows .
        ex:teaches rdfs:subPropertyOf ex:employs .
        ex:a1 ex:advises ex:s1 .
        ex:a2 ex:knows ex:s2 .
        ex:u1 ex:teaches ex:a1 .
        ex:u2 ex:employs ex:a2 .
    "#;
    const Q_CHAIN: &str = "SELECT ?a ?b ?c WHERE { \
         ?a <http://example.org/employs> ?b . \
         ?b <http://example.org/knows> ?c . }";

    let mut db = RdfDatabase::with_profile(EngineProfile::default().with_view_scans(true));
    db.load_turtle(CHAIN_TTL).expect("schema + data load");
    db.enable_views(10_000);

    // Pin query A's single `knows` fragment (head VarIds 0, 1).
    let qa = db.parse_query(Q_KNOWS).unwrap();
    assert_eq!(db.pin_cover_fragments(&qa, &Strategy::Scq, None).unwrap(), 1);

    // Query B's SCQ cover contains an isomorphic `knows` fragment with
    // different VarIds; it must hit the pinned entry and the chain join
    // must still bind the columns correctly.
    let hits_before = db.view_stats().unwrap().hits;
    let qb = db.parse_query(Q_CHAIN).unwrap();
    let r = db.answer(&qb, &Strategy::Scq).expect("cross-query view hit answers");
    let got = fingerprint(db.decode_rows(&r.rows));
    assert!(
        db.view_stats().unwrap().hits > hits_before,
        "the isomorphic fragment resolved from the catalog"
    );
    assert_eq!(got.len(), 2, "both employs∘knows chains bind");

    // Differential check against a view-free database.
    let mut oracle = RdfDatabase::with_profile(EngineProfile::default().with_view_scans(false));
    oracle.load_turtle(CHAIN_TTL).unwrap();
    let q = oracle.parse_query(Q_CHAIN).unwrap();
    let want_rows = oracle.answer(&q, &Strategy::Scq).unwrap().rows;
    let want = fingerprint(oracle.decode_rows(&want_rows));
    assert_eq!(got, want, "view-served chain answer identical to the no-views oracle");
}

#[test]
fn saturation_never_consults_the_catalog() {
    let mut db = views_db();
    let q = db.parse_query(Q_KNOWS).unwrap();
    db.pin_cover_fragments(&q, &Strategy::Ucq, None).unwrap();
    let expected = {
        let r = db.answer(&q, &Strategy::Ucq).unwrap();
        fingerprint(db.decode_rows(&r.rows))
    };
    let hits = db.view_stats().unwrap().hits;
    let r = db.answer(&q, &Strategy::Saturation).unwrap();
    assert_eq!(fingerprint(db.decode_rows(&r.rows)), expected);
    assert_eq!(
        db.view_stats().unwrap().hits,
        hits,
        "saturation plans must not read plain-store views"
    );
}

#[test]
fn incremental_update_invalidates_exactly_intersecting_fragments() {
    let mut db = views_db();
    for sparql in [Q_KNOWS, Q_EMPLOYS] {
        let q = db.parse_query(sparql).unwrap();
        assert_eq!(db.pin_cover_fragments(&q, &Strategy::Ucq, None).unwrap(), 1);
    }
    assert_eq!(db.view_stats().unwrap().entries, 2);

    // A known-vocabulary insert on `advises`: intersects the `knows`
    // fragment (reformulation reads sub-properties), not `employs`.
    let delta = [Triple::new(
        Term::uri("http://example.org/a3"),
        Term::uri("http://example.org/advises"),
        Term::uri("http://example.org/s3"),
    )];
    let report = db.apply_data_updates(&delta, &[]);
    assert!(report.incremental, "known-vocabulary data insert takes the incremental path");

    let stats = db.view_stats().unwrap();
    assert_eq!(stats.entries, 1, "exactly the intersecting fragment was dropped");
    assert_eq!(stats.invalidated, 1);

    // The invalidated query falls back to the union and sees the new
    // row; the surviving view still serves (restamped) and its answer
    // is unchanged.
    let knows = answer(&mut db, Q_KNOWS);
    assert_eq!(knows.len(), 3, "the new advises edge is visible");
    let hits_before = db.view_stats().unwrap().hits;
    let employs = answer(&mut db, Q_EMPLOYS);
    assert_eq!(employs.len(), 2);
    assert!(db.view_stats().unwrap().hits > hits_before, "survivor serves at the new epoch");

    // Differential check against a view-free database with the same
    // final state.
    let mut oracle = RdfDatabase::with_profile(EngineProfile::default().with_view_scans(false));
    oracle.load_turtle(TTL).unwrap();
    oracle.apply_data_updates(&delta, &[]);
    assert_eq!(answer(&mut oracle, Q_KNOWS), knows);
    assert_eq!(answer(&mut oracle, Q_EMPLOYS), employs);
}

#[test]
fn schema_update_rebuild_drops_the_whole_catalog() {
    let mut db = views_db();
    let q = db.parse_query(Q_KNOWS).unwrap();
    db.pin_cover_fragments(&q, &Strategy::Ucq, None).unwrap();
    assert_eq!(db.view_stats().unwrap().entries, 1);

    // A schema triple forces a non-incremental rebuild: term ids may be
    // remapped, so nothing in the catalog can survive.
    let schema = [Triple::new(
        Term::uri("http://example.org/mentors"),
        Term::uri(jucq_model::vocab::RDFS_SUBPROPERTY_OF),
        Term::uri("http://example.org/knows"),
    )];
    let report = db.apply_data_updates(&schema, &[]);
    assert!(!report.incremental, "schema changes rebuild");
    assert_eq!(db.view_stats().unwrap().entries, 0);

    // And answering still works (pure fallback).
    assert_eq!(answer(&mut db, Q_KNOWS).len(), 2);
}

#[test]
fn serving_pins_survive_updates_and_old_snapshots_stay_exact() {
    let mut db = RdfDatabase::with_profile(EngineProfile::default().with_view_scans(true));
    db.load_turtle(TTL).unwrap();
    db.enable_views(10_000);
    let serving = ServingDb::new(db);

    assert_eq!(serving.pin_views(Q_KNOWS, &Strategy::Ucq).expect("pin"), 1);
    assert_eq!(serving.pin_views(Q_EMPLOYS, &Strategy::Ucq).expect("pin"), 1);
    assert_eq!(serving.view_stats().expect("views enabled").entries, 2);

    let old = serving.snapshot();
    let old_epoch = old.epoch();
    let q = old.parse_query(Q_KNOWS).unwrap();
    let old_knows = fingerprint(old.decode_rows(&old.answer(&q, &Strategy::Ucq).unwrap().rows));
    assert_eq!(old_knows.len(), 2);

    // Update intersecting the `knows` pin; the serving layer replays
    // pins, so the dropped view is re-materialized at the new epoch.
    let delta = [Triple::new(
        Term::uri("http://example.org/a3"),
        Term::uri("http://example.org/advises"),
        Term::uri("http://example.org/s3"),
    )];
    let report = serving.apply_data_updates(&delta, &[]);
    assert!(report.incremental);
    let stats = serving.view_stats().unwrap();
    assert_eq!(stats.entries, 2, "the invalidated pin was re-materialized on replay");
    assert_eq!(stats.epoch, serving.epoch());

    // A fresh snapshot serves the new epoch from the catalog …
    let new = serving.snapshot();
    assert_eq!(new.epoch(), old_epoch + 1);
    let hits_before = serving.view_stats().unwrap().hits;
    let q = new.parse_query(Q_KNOWS).unwrap();
    let new_knows = fingerprint(new.decode_rows(&new.answer(&q, &Strategy::Ucq).unwrap().rows));
    assert_eq!(new_knows.len(), 3, "the replayed view includes the new edge");
    assert!(serving.view_stats().unwrap().hits > hits_before);

    // … while the old snapshot — whose epoch no catalog entry carries
    // any more — falls back to its own frozen store and still answers
    // exactly as before the update.
    let q = old.parse_query(Q_KNOWS).unwrap();
    let replayed = fingerprint(old.decode_rows(&old.answer(&q, &Strategy::Ucq).unwrap().rows));
    assert_eq!(replayed, old_knows, "pinned epoch answers never drift");
}
