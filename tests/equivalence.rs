//! Cross-crate gold test: every answering strategy computes the same
//! answer set on the full benchmark workloads.
//!
//! This is the paper's core correctness claim, exercised end to end:
//! `q(db∞) = q_ref(db) = q_JUCQ(db)` for UCQ, SCQ and every
//! ECov/GCov-chosen JUCQ (Theorem 3.1 + the reformulation algorithm).

use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::{dblp, lubm};
use jucq_store::{EngineProfile, Relation};

/// A permissive profile so the fixed reformulations rarely fail on the
/// small test scale. Some queries (q2, Q28) have six-figure UCQ
/// reformulations that are genuinely infeasible — the paper could not
/// evaluate them either — so evaluation keeps a real deadline.
fn permissive() -> EngineProfile {
    EngineProfile::pg_like()
        .with_max_union_terms(2_000_000)
        .with_memory_budget(100_000_000)
        .with_timeout(std::time::Duration::from_secs(30))
}

fn sorted_rows(mut r: Relation) -> Vec<Vec<jucq_model::TermId>> {
    r.sort();
    r.to_rows()
}

fn check_workload(db: &mut RdfDatabase, queries: &[jucq_datagen::NamedQuery]) {
    let mut ucq_ok = 0usize;
    for nq in queries {
        let q = db.parse_query(&nq.sparql).expect("workload query parses");
        let reference = sorted_rows(
            db.answer(&q, &Strategy::Saturation)
                .unwrap_or_else(|e| panic!("{}: saturation failed: {e}", nq.name))
                .rows,
        );
        for strategy in [Strategy::Ucq, Strategy::Scq, Strategy::gcov_default()] {
            let got = match db.answer(&q, &strategy) {
                Ok(r) => sorted_rows(r.rows),
                // UCQ/SCQ may legitimately exceed engine limits (the
                // paper's missing bars); GCov must always complete —
                // that is the paper's headline claim.
                Err(jucq_core::AnswerError::Engine(e)) if strategy.name() != "GCov" => {
                    eprintln!("{}: {} skipped ({e})", nq.name, strategy.name());
                    continue;
                }
                Err(e) => panic!("{}: {} failed: {e}", nq.name, strategy.name()),
            };
            if strategy.name() == "UCQ" {
                ucq_ok += 1;
            }
            assert_eq!(
                got.len(),
                reference.len(),
                "{}: {} row count differs from saturation",
                nq.name,
                strategy.name()
            );
            assert_eq!(got, reference, "{}: {} rows differ", nq.name, strategy.name());
        }
    }
    assert!(
        ucq_ok * 4 >= queries.len() * 3,
        "UCQ must succeed on at least 3/4 of the workload ({ucq_ok}/{})",
        queries.len()
    );
}

#[test]
fn lubm_all_strategies_agree_on_all_queries() {
    // A deliberately small scale so the full 28-query × 4-strategy
    // matrix (including the six-figure-union Q28) stays fast.
    let graph = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 });
    let mut db = RdfDatabase::from_graph(graph, permissive());
    db.set_cost_constants(Default::default());
    let mut queries = lubm::motivating_queries();
    queries.extend(lubm::workload());
    check_workload(&mut db, &queries);
}

#[test]
fn dblp_all_strategies_agree_on_all_queries() {
    let graph = dblp::generate(&dblp::DblpConfig { authors: 300, seed: 42 });
    let mut db = RdfDatabase::from_graph(graph, permissive());
    db.set_cost_constants(Default::default());
    check_workload(&mut db, &dblp::workload());
}

#[test]
fn ecov_agrees_on_a_sample() {
    // ECov on every query would be slow; sample the interesting ones.
    let graph = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 });
    let mut db = RdfDatabase::from_graph(graph, permissive());
    db.set_cost_constants(Default::default());
    for name in ["q1", "Q08", "Q15", "Q22"] {
        let nq = lubm::motivating_queries()
            .into_iter()
            .chain(lubm::workload())
            .find(|q| q.name == name)
            .expect("known query");
        let q = db.parse_query(&nq.sparql).unwrap();
        let sat = sorted_rows(db.answer(&q, &Strategy::Saturation).unwrap().rows);
        let ecov = sorted_rows(db.answer(&q, &Strategy::ecov_default()).unwrap().rows);
        assert_eq!(sat, ecov, "{name}: ECov JUCQ differs from saturation");
    }
}

#[test]
fn strategies_agree_across_engine_profiles() {
    // The three RDBMS-like profiles (different join algorithms and
    // materialization policies) must not change answers — only
    // performance and failure behaviour.
    let graph = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 7 });
    let mut reference: Option<Vec<Vec<jucq_model::TermId>>> = None;
    for profile in EngineProfile::rdbms_trio() {
        let mut db = RdfDatabase::from_graph(
            graph.clone(),
            profile
                .with_max_union_terms(2_000_000)
                .with_memory_budget(100_000_000)
                .with_timeout(std::time::Duration::from_secs(300)),
        );
        db.set_cost_constants(Default::default());
        let nq = &lubm::workload()[7]; // Q08: selective two-atom query.
        let q = db.parse_query(&nq.sparql).unwrap();
        let rows = sorted_rows(db.answer(&q, &Strategy::Ucq).unwrap().rows);
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(r, &rows),
        }
    }
}
