//! End-to-end property test of incremental maintenance: a database that
//! absorbed a random interleaving of insert/delete batches answers
//! exactly like a database built fresh from the final state — under
//! saturation *and* reformulation, with the plan cache enabled.

use proptest::prelude::*;

use jucq_core::{RdfDatabase, Strategy as Answering};
use jucq_model::{vocab, Graph, Term, Triple};
use jucq_store::EngineProfile;

const ENTITIES: usize = 8;

/// One batch: inserts and deletes over a fixed small vocabulary whose
/// schema is declared up front (so updates stay incremental).
type Batch = (Vec<(usize, usize, usize)>, Vec<(usize, usize, usize)>);

fn batches() -> impl Strategy<Value = Vec<Batch>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0..ENTITIES, 0usize..4, 0..ENTITIES), 0..10),
            proptest::collection::vec((0..ENTITIES, 0usize..4, 0..ENTITIES), 0..10),
        ),
        1..6,
    )
}

fn op_triple(op: &(usize, usize, usize)) -> Triple {
    let (s, p, o) = *op;
    let subject = Term::uri(format!("http://u/e{s}"));
    if p == 3 {
        Triple::new(subject, Term::uri(vocab::RDF_TYPE), Term::uri(format!("http://u/C{}", o % 3)))
    } else {
        Triple::new(
            subject,
            Term::uri(format!("http://u/p{p}")),
            Term::uri(format!("http://u/e{o}")),
        )
    }
}

/// A base graph declaring the full vocabulary so later updates never
/// introduce new classes/properties (staying on the incremental path).
fn base_graph() -> Graph {
    let mut g = Graph::new();
    let t = |s: String, p: String, o: String| Triple::new(Term::uri(s), Term::uri(p), Term::uri(o));
    g.insert(&t("http://u/C1".into(), vocab::RDFS_SUBCLASS_OF.into(), "http://u/C0".into()));
    g.insert(&t("http://u/C2".into(), vocab::RDFS_SUBCLASS_OF.into(), "http://u/C1".into()));
    g.insert(&t("http://u/p1".into(), vocab::RDFS_SUBPROPERTY_OF.into(), "http://u/p0".into()));
    g.insert(&t("http://u/p0".into(), vocab::RDFS_DOMAIN.into(), "http://u/C0".into()));
    g.insert(&t("http://u/p2".into(), vocab::RDFS_RANGE.into(), "http://u/C2".into()));
    // Seed data mentioning every property and class once.
    for p in 0..3 {
        g.insert(&op_triple(&(0, p, 1)));
    }
    g.insert(&op_triple(&(0, 3, 0)));
    g.insert(&op_triple(&(0, 3, 1)));
    g.insert(&op_triple(&(0, 3, 2)));
    g
}

fn queries(db: &mut RdfDatabase) -> Vec<jucq_reformulation::BgpQuery> {
    [
        "SELECT ?x WHERE { ?x a <http://u/C0> }",
        "SELECT ?x ?y WHERE { ?x <http://u/p0> ?y }",
        "SELECT ?x ?y WHERE { ?x a ?c . ?x <http://u/p1> ?y }",
    ]
    .iter()
    .map(|text| db.parse_query(text).expect("query parses"))
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn incremental_database_equals_fresh_database(script in batches()) {
        // Path A: incremental absorption.
        let mut inc = RdfDatabase::from_graph(base_graph(), EngineProfile::pg_like());
        inc.set_cost_constants(Default::default());
        inc.enable_plan_cache(16);
        inc.prepare();
        for (ins, del) in &script {
            let inserts: Vec<Triple> = ins.iter().map(op_triple).collect();
            let deletes: Vec<Triple> = del.iter().map(op_triple).collect();
            let report = inc.apply_data_updates(&inserts, &deletes);
            prop_assert!(report.incremental, "vocabulary is pre-declared");
        }

        // Path B: fresh database over the final state.
        let mut final_graph = base_graph();
        for (ins, del) in &script {
            for op in ins {
                final_graph.insert(&op_triple(op));
            }
            let mut dels = jucq_model::FxHashSet::default();
            for op in del {
                let t = op_triple(op);
                let d = final_graph.dict_mut();
                let id = jucq_model::TripleId::new(
                    d.encode(&t.s),
                    d.encode(&t.p),
                    d.encode(&t.o),
                );
                dels.insert(id);
            }
            final_graph.remove_data_batch(&dels);
        }
        let mut fresh = RdfDatabase::from_graph(final_graph, EngineProfile::pg_like());
        fresh.set_cost_constants(Default::default());

        for (qi, qf) in queries(&mut inc).iter().zip(queries(&mut fresh).iter()) {
            for s in [Answering::Saturation, Answering::Ucq, Answering::gcov_default()] {
                let a = inc.answer(qi, &s).unwrap().rows;
                let b = fresh.answer(qf, &s).unwrap().rows;
                let decode = |db: &RdfDatabase, r: &jucq_store::Relation| {
                    let mut v: Vec<Vec<String>> = db
                        .decode_rows(r)
                        .into_iter()
                        .map(|row| row.iter().map(ToString::to_string).collect())
                        .collect();
                    v.sort();
                    v
                };
                prop_assert_eq!(
                    decode(&inc, &a),
                    decode(&fresh, &b),
                    "strategy {} diverged",
                    s.name()
                );
            }
        }
    }
}
