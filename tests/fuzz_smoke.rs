//! Tier-1 smoke pass of the differential fuzzer: 100 seeded cases
//! against the full engine-profile trio must produce zero mismatches.
//! CI runs the wider sweep (`jucq fuzz`, 500 cases per profile); this
//! keeps every `cargo test` honest.

use jucq_qa::run_fuzz;
use jucq_store::EngineProfile;

#[test]
fn one_hundred_seeded_cases_agree_across_strategies() {
    let report = run_fuzz(1, 100, &EngineProfile::rdbms_trio(), false);
    assert_eq!(report.cases, 100);
    assert!(
        report.ok(),
        "differential mismatches:\n{}",
        report
            .failures
            .iter()
            .map(|f| format!("seed {}: {}\n{}", f.seed, f.message, f.reproducer))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn native_profile_smoke() {
    let report = run_fuzz(512, 25, &[EngineProfile::native_like()], false);
    assert!(
        report.ok(),
        "native-profile mismatch: {:?}",
        report.failures.first().map(|f| &f.message)
    );
}
