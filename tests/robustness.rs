//! Robustness properties of the textual front ends: the SPARQL parser
//! and the Turtle loader must never panic on arbitrary input, and the
//! Turtle writer must round-trip arbitrary well-formed graphs.

use proptest::prelude::*;

use jucq_core::turtle;
use jucq_model::{Dictionary, Graph, Term, Triple};

/// URI-safe fragment: no angle brackets, whitespace or control chars
/// (the loader's documented subset).
fn uri_fragment() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9_/:.#-]{1,24}").expect("valid regex")
}

/// Literal content: printable, no newlines (one statement per line).
fn literal_content() -> impl Strategy<Value = String> {
    proptest::string::string_regex(r#"[ -~]{0,24}"#).expect("valid regex")
}

fn random_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        uri_fragment().prop_map(|s| Term::uri(format!("http://t/{s}"))),
        literal_content().prop_map(Term::literal),
        proptest::string::string_regex("[a-zA-Z0-9]{1,8}")
            .expect("valid regex")
            .prop_map(Term::blank),
    ]
}

fn random_triples() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (random_term(), uri_fragment(), random_term())
            .prop_map(|(s, p, o)| Triple::new(s, Term::uri(format!("http://t/{p}")), o)),
        0..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn sparql_parser_never_panics(input in ".{0,200}") {
        let mut dict = Dictionary::new();
        let _ = jucq_core::parser::parse_query(&mut dict, &input);
    }

    #[test]
    fn sparql_parser_handles_query_shaped_garbage(
        vars in proptest::collection::vec("[a-z]{1,4}", 1..4),
        body in "[ -~]{0,120}",
    ) {
        let mut dict = Dictionary::new();
        let select: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
        let text = format!("SELECT {} WHERE {{ {} }}", select.join(" "), body);
        let _ = jucq_core::parser::parse_query(&mut dict, &text);
    }

    #[test]
    fn turtle_loader_never_panics(input in ".{0,300}") {
        let mut g = Graph::new();
        let _ = turtle::load(&mut g, &input);
    }

    #[test]
    fn turtle_write_load_round_trips(triples in random_triples()) {
        let mut g = Graph::new();
        g.extend(&triples);
        let text = turtle::write(&g);
        let mut g2 = Graph::new();
        turtle::load(&mut g2, &text).expect("writer output loads");
        let decode_all = |g: &Graph| {
            let mut v: Vec<String> =
                g.data().iter().map(|t| g.decode(t).to_string()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(decode_all(&g), decode_all(&g2));
        prop_assert_eq!(g.len(), g2.len());
    }
}
