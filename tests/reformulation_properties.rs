//! Property-based tests of the paper's core equations, over random
//! schemas, random graphs and random BGP queries:
//!
//! * `q_ref(db) = q(saturate(db))` — reformulation answers equal
//!   saturation answers (soundness + completeness, §2.3);
//! * `q_JUCQ(db) = q(saturate(db))` for every valid cover
//!   (Theorem 3.1), including the SCQ and GCov covers;
//! * saturation is idempotent and monotone.

use proptest::prelude::*;

use jucq_core::{RdfDatabase, Strategy as Answering};
use jucq_model::{vocab, Graph, Term, Triple};
use jucq_reformulation::{BgpQuery, Cover};
use jucq_store::{EngineProfile, PatternTerm, StorePattern, VarId};

const CLASSES: usize = 5;
const PROPS: usize = 4;
const ENTITIES: usize = 8;

fn class_uri(i: usize) -> String {
    format!("http://t/C{i}")
}

fn prop_uri(i: usize) -> String {
    format!("http://t/p{i}")
}

fn entity_uri(i: usize) -> String {
    format!("http://t/e{i}")
}

/// A randomly generated database description.
#[derive(Debug, Clone)]
struct RandomDb {
    subclass: Vec<(usize, usize)>,
    subprop: Vec<(usize, usize)>,
    domain: Vec<(usize, usize)>,
    range: Vec<(usize, usize)>,
    /// (subject entity, property, object entity).
    edges: Vec<(usize, usize, usize)>,
    /// (entity, class) type assertions.
    types: Vec<(usize, usize)>,
}

fn random_db() -> impl Strategy<Value = RandomDb> {
    let subclass = prop::collection::vec((0..CLASSES, 0..CLASSES), 0..5);
    let subprop = prop::collection::vec((0..PROPS, 0..PROPS), 0..4);
    let domain = prop::collection::vec((0..PROPS, 0..CLASSES), 0..4);
    let range = prop::collection::vec((0..PROPS, 0..CLASSES), 0..4);
    let edges = prop::collection::vec((0..ENTITIES, 0..PROPS, 0..ENTITIES), 5..40);
    let types = prop::collection::vec((0..ENTITIES, 0..CLASSES), 0..12);
    (subclass, subprop, domain, range, edges, types).prop_map(
        |(subclass, subprop, domain, range, edges, types)| RandomDb {
            subclass,
            subprop,
            domain,
            range,
            edges,
            types,
        },
    )
}

/// One random atom: positions choose among variables and constants.
#[derive(Debug, Clone)]
enum Pos {
    Var(VarId),
    Entity(usize),
    Class(usize),
}

#[derive(Debug, Clone)]
enum PropPos {
    Var(VarId),
    Prop(usize),
    RdfType,
}

fn random_pos() -> impl Strategy<Value = Pos> {
    prop_oneof![
        (0..4u16).prop_map(Pos::Var),
        (0..ENTITIES).prop_map(Pos::Entity),
        (0..CLASSES).prop_map(Pos::Class),
    ]
}

fn random_prop_pos() -> impl Strategy<Value = PropPos> {
    prop_oneof![
        2 => (0..PROPS).prop_map(PropPos::Prop),
        2 => Just(PropPos::RdfType),
        1 => (0..4u16).prop_map(|v| PropPos::Var(v + 4)),
    ]
}

fn random_query() -> impl Strategy<Value = Vec<(Pos, PropPos, Pos)>> {
    prop::collection::vec((random_pos(), random_prop_pos(), random_pos()), 1..4)
}

fn build_db(desc: &RandomDb) -> RdfDatabase {
    let mut g = Graph::new();
    let t = |s: String, p: String, o: String| Triple::new(Term::uri(s), Term::uri(p), Term::uri(o));
    for &(a, b) in &desc.subclass {
        g.insert(&t(class_uri(a), vocab::RDFS_SUBCLASS_OF.into(), class_uri(b)));
    }
    for &(a, b) in &desc.subprop {
        g.insert(&t(prop_uri(a), vocab::RDFS_SUBPROPERTY_OF.into(), prop_uri(b)));
    }
    for &(p, c) in &desc.domain {
        g.insert(&t(prop_uri(p), vocab::RDFS_DOMAIN.into(), class_uri(c)));
    }
    for &(p, c) in &desc.range {
        g.insert(&t(prop_uri(p), vocab::RDFS_RANGE.into(), class_uri(c)));
    }
    for &(s, p, o) in &desc.edges {
        g.insert(&t(entity_uri(s), prop_uri(p), entity_uri(o)));
    }
    for &(e, c) in &desc.types {
        g.insert(&t(entity_uri(e), vocab::RDF_TYPE.into(), class_uri(c)));
    }
    let profile =
        EngineProfile::pg_like().with_max_union_terms(1_000_000).with_memory_budget(50_000_000);
    let mut db = RdfDatabase::from_graph(g, profile);
    db.set_cost_constants(Default::default());
    db
}

fn build_query(db: &mut RdfDatabase, atoms_desc: &[(Pos, PropPos, Pos)]) -> BgpQuery {
    // Intern constants like the parser would (ids are append-only, so
    // interning after prepare() is fine).
    let mut atoms = Vec::new();
    for (s, p, o) in atoms_desc {
        let s = match s {
            Pos::Var(v) => PatternTerm::Var(*v),
            Pos::Entity(i) => PatternTerm::Const(db.intern_uri(&entity_uri(*i))),
            Pos::Class(i) => PatternTerm::Const(db.intern_uri(&class_uri(*i))),
        };
        let p = match p {
            PropPos::Var(v) => PatternTerm::Var(*v),
            PropPos::Prop(i) => PatternTerm::Const(db.intern_uri(&prop_uri(*i))),
            PropPos::RdfType => PatternTerm::Const(db.intern_uri(vocab::RDF_TYPE)),
        };
        let o = match o {
            Pos::Var(v) => PatternTerm::Var(*v),
            Pos::Entity(i) => PatternTerm::Const(db.intern_uri(&entity_uri(*i))),
            Pos::Class(i) => PatternTerm::Const(db.intern_uri(&class_uri(*i))),
        };
        atoms.push(StorePattern::new(s, p, o));
    }
    // Head: every variable (maximal head keeps the comparison strict).
    let mut head: Vec<VarId> = Vec::new();
    for a in &atoms {
        for v in a.variables() {
            if !head.contains(&v) {
                head.push(v);
            }
        }
    }
    BgpQuery::new(head, atoms)
}

fn sorted(mut r: jucq_store::Relation) -> Vec<Vec<jucq_model::TermId>> {
    r.sort();
    r.to_rows()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn reformulation_equals_saturation(desc in random_db(), qdesc in random_query()) {
        let mut db = build_db(&desc);
        let q = build_query(&mut db, &qdesc);
        // The UCQ cover requires a connected body (no cartesian
        // products inside a fragment); skip disconnected random bodies.
        prop_assume!(Cover::single_fragment(&q).is_ok());
        let sat = sorted(db.answer(&q, &Answering::Saturation).unwrap().rows);
        let ucq = sorted(db.answer(&q, &Answering::Ucq).unwrap().rows);
        prop_assert_eq!(&sat, &ucq, "UCQ differs from saturation for {:?}", q);
        // Containment-minimized unions answer identically.
        let min = sorted(
            db.answer(&q, &Answering::minimized_ucq_default())
                .unwrap()
                .rows,
        );
        prop_assert_eq!(&sat, &min, "minimized UCQ differs for {:?}", q);
    }

    #[test]
    fn every_valid_cover_is_equivalent(desc in random_db(), qdesc in random_query()) {
        let mut db = build_db(&desc);
        let q = build_query(&mut db, &qdesc);
        let sat = sorted(db.answer(&q, &Answering::Saturation).unwrap().rows);
        // SCQ (when the singletons cover is valid).
        if Cover::singletons(&q).is_ok() {
            let scq = sorted(db.answer(&q, &Answering::Scq).unwrap().rows);
            prop_assert_eq!(&sat, &scq, "SCQ differs for {:?}", q);
            let gcov = sorted(db.answer(&q, &Answering::gcov_default()).unwrap().rows);
            prop_assert_eq!(&sat, &gcov, "GCov differs for {:?}", q);
        }
        // All two-fragment covers of 2–3 atom queries, including the
        // OVERLAPPING ones (every pair of incomparable subsets covering
        // all atoms).
        if (2..=3).contains(&q.len()) {
            let n = q.len();
            for a_mask in 1u8..(1 << n) {
                for b_mask in 1u8..(1 << n) {
                    if a_mask | b_mask != (1 << n) - 1 {
                        continue;
                    }
                    if a_mask & b_mask == a_mask || a_mask & b_mask == b_mask {
                        continue; // inclusion: not a valid cover pair
                    }
                    let frag = |m: u8| -> Vec<usize> {
                        (0..n).filter(|i| m & (1 << i) != 0).collect()
                    };
                    if let Ok(cover) = Cover::new(&q, vec![frag(a_mask), frag(b_mask)]) {
                        let rows =
                            sorted(db.answer(&q, &Answering::FixedCover(cover)).unwrap().rows);
                        prop_assert_eq!(
                            &sat,
                            &rows,
                            "cover {:#b}|{:#b} differs for {:?}",
                            a_mask,
                            b_mask,
                            q
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn saturation_is_idempotent_and_monotone(desc in random_db()) {
        let mut g = Graph::new();
        let t = |s: String, p: String, o: String| {
            Triple::new(Term::uri(s), Term::uri(p), Term::uri(o))
        };
        for &(a, b) in &desc.subclass {
            g.insert(&t(class_uri(a), vocab::RDFS_SUBCLASS_OF.into(), class_uri(b)));
        }
        for &(a, b) in &desc.subprop {
            g.insert(&t(prop_uri(a), vocab::RDFS_SUBPROPERTY_OF.into(), prop_uri(b)));
        }
        for &(p, c) in &desc.domain {
            g.insert(&t(prop_uri(p), vocab::RDFS_DOMAIN.into(), class_uri(c)));
        }
        for &(s, p, o) in &desc.edges {
            g.insert(&t(entity_uri(s), prop_uri(p), entity_uri(o)));
        }
        let sat1 = jucq_reformulation::saturate(&mut g);
        // Monotone: contains all explicit data.
        for t in g.data() {
            prop_assert!(sat1.binary_search(t).is_ok());
        }
        // Idempotent.
        let closure = g.schema_closure();
        let rdf_type = g.rdf_type();
        let sat2 = jucq_reformulation::saturation::saturate_with(&sat1, &closure, rdf_type);
        prop_assert_eq!(sat1, sat2);
    }
}
