//! Reproduce the *shapes* of the paper's motivating examples
//! (Section 3, Tables 1–3) on the LUBM-like dataset:
//!
//! * per-triple reformulation counts: `degreeFrom` → 4, `memberOf` → 3,
//!   and a large count for the class-variable atom (paper: 188);
//! * cover-based reformulation sizes combine per-fragment products and
//!   across-fragment sums (Table 2's arithmetic);
//! * the motivating query q2's UCQ reformulation is too large for the
//!   strict engines.

use jucq_core::{AnswerError, RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_reformulation::Cover;
use jucq_store::{EngineError, EngineProfile};

fn db() -> RdfDatabase {
    let graph = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 });
    let mut db = RdfDatabase::from_graph(
        graph,
        EngineProfile::pg_like().with_max_union_terms(1_000_000).with_memory_budget(100_000_000),
    );
    db.set_cost_constants(Default::default());
    db
}

/// Per-fragment union sizes for q1, computed through FixedCover runs.
fn q1_terms(db: &mut RdfDatabase, fragments: Vec<Vec<usize>>) -> usize {
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    let cover = Cover::new(&q1, fragments).unwrap();
    db.answer(&q1, &Strategy::FixedCover(cover)).unwrap().union_terms
}

#[test]
fn table1_per_triple_reformulation_counts() {
    let mut db = db();
    // t2 alone: |(t2)_ref| = 4 (degreeFrom + 3 subproperties); t3: 3.
    let scq_terms = {
        let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
        db.answer(&q1, &Strategy::Scq).unwrap().union_terms
    };
    let ucq_terms = {
        let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
        db.answer(&q1, &Strategy::Ucq).unwrap().union_terms
    };
    // SCQ = t1 + 4 + 3; UCQ = t1 × 4 × 3 (paper: 195 and 2256 with
    // t1 = 188).
    let t1 = scq_terms - 7;
    assert!(t1 > 50, "class-variable atom reformulates widely (got {t1})");
    assert_eq!(ucq_terms, t1 * 12, "Table 1/2 product arithmetic");
}

#[test]
fn table2_cover_sizes_follow_sum_of_products() {
    let mut db = db();
    let t1 = q1_terms(&mut db, vec![vec![0], vec![1, 2]]) - 12; // t1 + 4×3
    let each = [
        (vec![vec![0, 1, 2]], t1 * 12),            // (t1,t2,t3)
        (vec![vec![0], vec![1], vec![2]], t1 + 7), // (t1)(t2)(t3)
        (vec![vec![0, 1], vec![2]], t1 * 4 + 3),   // (t1,t2)(t3)
        (vec![vec![0], vec![1, 2]], t1 + 12),      // (t1)(t2,t3)
        (vec![vec![0, 2], vec![1]], t1 * 3 + 4),   // (t1,t3)(t2)
        (vec![vec![0, 1], vec![0, 2]], t1 * 4 + t1 * 3),
        (vec![vec![0, 1], vec![1, 2]], t1 * 4 + 12),
        (vec![vec![0, 2], vec![1, 2]], t1 * 3 + 12),
    ];
    for (fragments, expected) in each {
        let got = q1_terms(&mut db, fragments.clone());
        assert_eq!(got, expected, "cover {fragments:?}");
    }
}

#[test]
fn table2_all_covers_return_identical_answers() {
    let mut db = db();
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    let reference = {
        let mut r = db.answer(&q1, &Strategy::Saturation).unwrap().rows;
        r.sort();
        r
    };
    for fragments in [
        vec![vec![0, 1, 2]],
        vec![vec![0], vec![1], vec![2]],
        vec![vec![0, 1], vec![2]],
        vec![vec![0], vec![1, 2]],
        vec![vec![0, 2], vec![1]],
        vec![vec![0, 1], vec![0, 2]],
        vec![vec![0, 1], vec![1, 2]],
        vec![vec![0, 2], vec![1, 2]],
    ] {
        let cover = Cover::new(&q1, fragments.clone()).unwrap();
        let mut rows = db.answer(&q1, &Strategy::FixedCover(cover)).unwrap().rows;
        rows.sort();
        assert_eq!(rows, reference, "cover {fragments:?} (Theorem 3.1)");
    }
}

#[test]
fn q2_ucq_fails_on_strict_engines_but_jucq_completes() {
    // The paper: q2's 318,096-member UCQ "could not be evaluated"
    // (stack-depth error), while the well-grouped JUCQ runs in 524 ms.
    let graph = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 });
    let mut db = RdfDatabase::from_graph(graph, EngineProfile::db2_like());
    db.set_cost_constants(Default::default());
    let q2 = db.parse_query(&lubm::motivating_queries()[1].sparql).unwrap();
    match db.answer(&q2, &Strategy::Ucq) {
        Err(AnswerError::Engine(EngineError::UnionTooLarge { terms, limit })) => {
            assert!(terms > limit);
        }
        other => panic!("expected UnionTooLarge, got {other:?}"),
    }
    let g = db.answer(&q2, &Strategy::gcov_default()).expect("GCov JUCQ runs");
    assert!(g.union_terms <= 2_000, "chosen JUCQ fits the engine");
}

#[test]
fn overlapping_cover_joins_on_shared_atom_variables() {
    // Regression for Definition 3.4: in q(w):- (x p y)(y q z)(z r w)
    // under the overlapping cover {{t1,t2},{t2,t3}}, the shared atom t2
    // belongs to BOTH fragments, so its variables y and z must be in
    // both heads. With complement-based heads the fragments join on
    // nothing and the JUCQ wrongly returns d2.
    let mut db = RdfDatabase::with_profile(EngineProfile::pg_like());
    db.set_cost_constants(Default::default());
    db.load_turtle(
        r#"
        <http://a1> <http://p> <http://b1> .
        <http://b1> <http://q> <http://c1> .
        <http://b2> <http://q> <http://c2> .
        <http://c1> <http://r> <http://d1> .
        <http://c2> <http://r> <http://d2> .
        "#,
    )
    .unwrap();
    let q = db
        .parse_query("SELECT ?w WHERE { ?x <http://p> ?y . ?y <http://q> ?z . ?z <http://r> ?w }")
        .unwrap();
    let sat = db.answer(&q, &Strategy::Saturation).unwrap();
    assert_eq!(sat.rows.len(), 1, "only d1 is reachable from a1");
    let cover = Cover::new(&q, vec![vec![0, 1], vec![1, 2]]).unwrap();
    let r = db.answer(&q, &Strategy::FixedCover(cover)).unwrap();
    let rows = db.decode_rows(&r.rows);
    assert_eq!(rows.len(), 1, "overlapping cover must not cross-multiply");
    assert_eq!(rows[0][0].to_string(), "<http://d1>");
}

#[test]
fn q1_reformulated_answers_exceed_direct_evaluation() {
    // Table 1: (t2) has 0 explicit answers but thousands after
    // reformulation — here: degreeFrom has no explicit triples (only
    // its subproperties are asserted).
    let mut db = db();
    let sparql = format!(
        "PREFIX ub: <{}>\nSELECT ?x WHERE {{ ?x ub:degreeFrom <http://www.univ0.jucq.org> }}",
        lubm::NS
    );
    let q = db.parse_query(&sparql).unwrap();
    let direct = db.plain_store().eval_cq(&q.to_store_cq()).unwrap().relation.len();
    let reformulated = db.answer(&q, &Strategy::Ucq).unwrap().rows.len();
    assert_eq!(direct, 0, "degreeFrom is never asserted directly");
    assert!(reformulated > 0, "answers only exist through the subproperties");
}
