//! Failure injection: engine limits must surface as typed errors (the
//! figures' missing bars), never as panics, and the cost-based
//! strategies must keep working where the fixed reformulations fail.

use std::time::Duration;

use jucq_core::{AnswerError, RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_store::{EngineError, EngineProfile};

fn graph() -> jucq_model::Graph {
    lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 })
}

#[test]
fn union_limit_failure_is_typed() {
    let mut db =
        RdfDatabase::from_graph(graph(), EngineProfile::pg_like().with_max_union_terms(10));
    db.set_cost_constants(Default::default());
    let q = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    match db.answer(&q, &Strategy::Ucq) {
        Err(AnswerError::Engine(EngineError::UnionTooLarge { limit: 10, .. })) => {}
        other => panic!("expected UnionTooLarge, got {other:?}"),
    }
}

#[test]
fn memory_budget_failure_is_typed() {
    let mut db = RdfDatabase::from_graph(graph(), EngineProfile::pg_like().with_memory_budget(50));
    db.set_cost_constants(Default::default());
    // Q03 (all people) produces thousands of rows.
    let nq = lubm::workload().into_iter().find(|q| q.name == "Q03").unwrap();
    let q = db.parse_query(&nq.sparql).unwrap();
    match db.answer(&q, &Strategy::Ucq) {
        Err(AnswerError::Engine(EngineError::MemoryBudgetExceeded { budget: 50, .. })) => {}
        other => panic!("expected MemoryBudgetExceeded, got {other:?}"),
    }
}

#[test]
fn timeout_failure_is_typed() {
    let mut db = RdfDatabase::from_graph(
        graph(),
        EngineProfile::mysql_like().with_timeout(Duration::from_millis(1)),
    );
    db.set_cost_constants(Default::default());
    // SCQ on q2 under block-nested-loop joins: guaranteed to exceed 1ms.
    let q = db.parse_query(&lubm::motivating_queries()[1].sparql).unwrap();
    match db.answer(&q, &Strategy::Scq) {
        Err(AnswerError::Engine(EngineError::Timeout { .. })) => {}
        Ok(r) => panic!("expected timeout, finished with {} rows", r.rows.len()),
        Err(other) => panic!("expected Timeout, got {other}"),
    }
}

#[test]
fn gcov_succeeds_where_ucq_fails() {
    // The paper's headline: "our technique enables reformulation-based
    // query answering where the state-of-the-art approaches are simply
    // unfeasible". db2-like rejects q1's ~2k-member UCQ at limit 800;
    // GCov picks a cover whose fragments fit.
    let mut db =
        RdfDatabase::from_graph(graph(), EngineProfile::db2_like().with_max_union_terms(800));
    db.set_cost_constants(Default::default());
    let q = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    assert!(matches!(
        db.answer(&q, &Strategy::Ucq),
        Err(AnswerError::Engine(EngineError::UnionTooLarge { .. }))
    ));
    let g = db
        .answer(
            &q,
            &Strategy::GCov {
                budget: Duration::from_secs(10),
                max_moves: 2_000,
                cost: jucq_core::CostSource::Paper,
            },
        )
        .expect("GCov finds a feasible cover");
    assert!(!g.rows.is_empty());

    // And the answers match a permissive engine's UCQ answers.
    let mut wide = RdfDatabase::from_graph(graph(), EngineProfile::pg_like());
    wide.set_cost_constants(Default::default());
    let qw = wide.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    let mut reference = wide.answer(&qw, &Strategy::Ucq).unwrap().rows;
    let mut got = g.rows;
    reference.sort();
    got.sort();
    assert_eq!(got, reference);
}

#[test]
fn failures_do_not_poison_the_database() {
    // After a failure the same database must answer other queries.
    let mut db = RdfDatabase::from_graph(graph(), EngineProfile::pg_like().with_max_union_terms(5));
    db.set_cost_constants(Default::default());
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    assert!(db.answer(&q1, &Strategy::Ucq).is_err());
    let nq = lubm::workload().into_iter().find(|q| q.name == "Q01").unwrap();
    let q = db.parse_query(&nq.sparql).unwrap();
    assert!(db.answer(&q, &Strategy::Ucq).is_ok(), "Q01 has a single-term union");
}
