//! Concurrency hammer for the serving layer: N reader threads answer a
//! LUBM workload against pinned snapshots while a writer thread applies
//! incremental insert batches. Every response must equal the
//! single-threaded answer **for the epoch it was served from** — the
//! snapshot a request pins is the whole consistency story, so a reader
//! racing the writer may see epoch `e` or `e+1`, but never a blend.
//!
//! The served database runs with materialized fragment views pinned for
//! the whole workload, so the race also covers the catalog: every
//! update invalidates/re-materializes views mid-flight while readers
//! resolve them epoch-exactly (or fall back to the embedded union). The
//! oracle databases never enable a catalog — view-served answers are
//! checked against view-free ground truth.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jucq_core::{RdfDatabase, ServingDb, Strategy};
use jucq_datagen::lubm;
use jucq_model::{Triple, TripleId};

const READERS: usize = 4;
const BATCHES: usize = 3;
const BATCH_SIZE: usize = 150;

/// Sorted, decoded rows — the dictionary-independent answer fingerprint.
fn fingerprint(rows: Vec<Vec<jucq_model::Term>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|row| row.iter().map(ToString::to_string).collect::<Vec<_>>().join("\t"))
        .collect();
    out.sort();
    out
}

fn decode_all(graph: &jucq_model::Graph, ids: &[TripleId]) -> Vec<Triple> {
    ids.iter()
        .map(|t| {
            Triple::new(
                graph.dict().decode(t.s),
                graph.dict().decode(t.p),
                graph.dict().decode(t.o),
            )
        })
        .collect()
}

#[test]
fn concurrent_readers_always_match_their_epochs_oracle() {
    let base = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 42 });
    // Insert batches drawn from a differently-seeded generation of the
    // same ontology: new individuals, known vocabulary — exactly the
    // shape the incremental maintenance path absorbs without a rebuild.
    let extra = lubm::generate(&lubm::LubmConfig { universities: 1, seed: 7 });
    let extra_triples = decode_all(&extra, extra.data());
    let batches: Vec<Vec<Triple>> = (0..BATCHES)
        .map(|b| extra_triples[b * BATCH_SIZE..(b + 1) * BATCH_SIZE].to_vec())
        .collect();

    let queries: Vec<String> = lubm::workload().into_iter().take(5).map(|nq| nq.sparql).collect();

    // Single-threaded oracle: the expected answer per (epoch, query).
    let oracle: Vec<Vec<Vec<String>>> = (0..=BATCHES)
        .map(|epoch| {
            let mut db = RdfDatabase::from_graph(base.clone(), Default::default());
            db.set_cost_constants(Default::default());
            for batch in &batches[..epoch] {
                db.extend(batch);
            }
            queries
                .iter()
                .map(|sparql| {
                    let q = db.parse_query(sparql).expect("workload query parses");
                    let r = db.answer(&q, &Strategy::Ucq).expect("oracle answers");
                    fingerprint(db.decode_rows(&r.rows))
                })
                .collect()
        })
        .collect();

    let mut db =
        RdfDatabase::from_graph(base, jucq_store::EngineProfile::default().with_view_scans(true));
    db.set_cost_constants(Default::default());
    db.enable_plan_cache(32);
    db.enable_views(500_000);
    let serving = Arc::new(ServingDb::new(db));
    // Pin every workload query's fragments under both view-consulting
    // strategies; the serving layer re-pins them after each update.
    for sparql in &queries {
        serving.pin_views(sparql, &Strategy::Ucq).expect("pin ucq");
        serving.pin_views(sparql, &Strategy::gcov_default()).expect("pin gcov");
    }
    assert!(
        serving.view_stats().expect("views enabled").entries > 0,
        "the workload pinned at least one fragment"
    );
    let stop = Arc::new(AtomicBool::new(false));

    let strategies = [Strategy::Ucq, Strategy::gcov_default(), Strategy::Saturation];
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|reader| {
                let serving = Arc::clone(&serving);
                let stop = Arc::clone(&stop);
                let queries = &queries;
                let oracle = &oracle;
                let strategies = &strategies;
                s.spawn(move || {
                    let mut checked = 0usize;
                    let mut iteration = reader; // desynchronize readers
                    while !stop.load(Ordering::Relaxed) {
                        // Pin one epoch for the whole request.
                        let snapshot = serving.snapshot();
                        let epoch = snapshot.epoch() as usize;
                        assert!(epoch <= BATCHES, "epoch {epoch} beyond the last batch");
                        let qi = iteration % queries.len();
                        let strategy = &strategies[iteration % strategies.len()];
                        let q = snapshot
                            .parse_query(&queries[qi])
                            .expect("frozen parse of a workload query");
                        let r = snapshot.answer(&q, strategy).expect("served answer");
                        let got = fingerprint(snapshot.decode_rows(&r.rows));
                        assert_eq!(
                            got,
                            oracle[epoch][qi],
                            "reader {reader} (query {qi}, {}) diverged from the \
                             single-threaded oracle for epoch {epoch}",
                            strategy.name()
                        );
                        checked += 1;
                        iteration += 1;
                    }
                    checked
                })
            })
            .collect();

        for batch in &batches {
            std::thread::sleep(Duration::from_millis(25));
            let report = serving.apply_data_updates(batch, &[]);
            assert!(
                report.incremental,
                "known-vocabulary data inserts must take the incremental path"
            );
        }
        // One more window of reads against the final epoch.
        std::thread::sleep(Duration::from_millis(25));
        stop.store(true, Ordering::Relaxed);

        let mut total = 0usize;
        for handle in readers {
            total += handle.join().expect("no reader panicked (and no lock poisoned)");
        }
        assert!(total >= READERS, "every reader completed at least one request");
    });

    assert_eq!(serving.epoch() as usize, BATCHES);
    let stats = serving.view_stats().expect("views enabled");
    assert!(stats.hits > 0, "pinned views actually served under the race: {stats:?}");
    assert_eq!(stats.epoch as usize, BATCHES, "catalog epoch tracks serving epoch");
    // The final published epoch answers exactly like the oracle's.
    let snapshot = serving.snapshot();
    for (qi, sparql) in queries.iter().enumerate() {
        let q = snapshot.parse_query(sparql).unwrap();
        let r = snapshot.answer(&q, &Strategy::Ucq).unwrap();
        assert_eq!(fingerprint(snapshot.decode_rows(&r.rows)), oracle[BATCHES][qi]);
    }
}
