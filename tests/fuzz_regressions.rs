//! Minimized reproducers for bugs the differential fuzzer surfaced (or
//! would have surfaced had the harness existed when they were written).
//! Each test is a shrunk case in the `jucq_qa` spec format; the oracle
//! re-runs the full strategy × parallelism × profile matrix on it.

/// Zero-atom queries used to diverge: `Cover::singletons` accepts an
/// empty fragment family while `Cover::single_fragment` rejects it, so
/// SCQ-style strategies answered while UCQ-style ones errored. The
/// engine now short-circuits uniformly: no atoms, no answers.
#[test]
fn zero_atom_query_is_uniformly_empty() {
    let case = jucq_qa::GenCase::from_spec(&["i0 p0 i1"], &[], &[]);
    jucq_qa::check_case(&case).unwrap();
}

/// Disconnected (cartesian) bodies have no valid cover; GCov and ECov
/// used to panic on `Cover::singletons(..).unwrap()` instead of
/// reporting the `CoverError` the fixed-cover path reported.
#[test]
fn disconnected_body_reports_cover_error_everywhere() {
    let case = jucq_qa::GenCase::from_spec(
        &["i0 p0 i1", "i2 p1 i3"],
        &["?v0 p0 ?v1", "?v2 p1 ?v3"],
        &["?v0", "?v2"],
    );
    jucq_qa::check_case(&case).unwrap();
}

/// Querying vocabulary absent from schema and data must reformulate to
/// an empty (or trivially unsatisfiable) union and answer cleanly.
#[test]
fn absent_vocabulary_answers_empty() {
    let case = jucq_qa::GenCase::from_spec(
        &["C1 sc C0", "i0 a C1"],
        &["?v0 a GhostClass", "?v0 ghostProp ?v1"],
        &["?v0"],
    );
    jucq_qa::check_case(&case).unwrap();
}

/// A completely empty database: every strategy answers every query
/// shape with zero rows (saturation of nothing is nothing).
#[test]
fn empty_database_answers_cleanly() {
    let case = jucq_qa::GenCase::from_spec(&[], &["?v0 a C0", "?v0 p0 ?v1"], &["?v0"]);
    jucq_qa::check_case(&case).unwrap();
}

/// An instance-only graph with no schema at all (no closure): the
/// reformulations are identity-like and must still agree with SAT.
#[test]
fn schemaless_graph_agrees() {
    let case = jucq_qa::GenCase::from_spec(
        &["i0 p0 i1", "i1 p0 i2", "i0 a C0"],
        &["?v0 p0 ?v1", "?v1 p0 ?v2"],
        &["?v0", "?v2"],
    );
    jucq_qa::check_case(&case).unwrap();
}

/// Deep subclass/subproperty chains with domain+range interaction —
/// the reformulation fan-out stress shape, including a literal object.
#[test]
fn deep_hierarchy_with_domain_range() {
    let case = jucq_qa::GenCase::from_spec(
        &[
            "C2 sc C1",
            "C1 sc C0",
            "p1 sp p0",
            "p0 dom C1",
            "p0 rng C2",
            "i0 p1 i1",
            "i1 p1 i2",
            "i2 p0 \"v0\"",
            "i3 a C2",
        ],
        &["?v0 a C0", "?v0 p0 ?v1"],
        &["?v0", "?v1"],
    );
    jucq_qa::check_case(&case).unwrap();
}

/// Found by `jucq fuzz` (seed 126, shrunk): `is_contained` silently
/// rebound a container variable already mapped to a variable of the
/// contained query instead of checking consistency, so UCQ
/// minimization judged a range-rule instantiation redundant and
/// dropped its answer row (UCQmin returned 6 rows where SAT returned
/// 7).
#[test]
fn fuzz_seed_126() {
    let case = jucq_qa::GenCase::from_spec(
        &["p2 dom C1", "p2 rng C0", "i2 p2 i5", "i5 a C1"],
        &["?v0 a C1", "?v0 ?v1 ?v2"],
        &["?v1", "?v2"],
    );
    jucq_qa::check_case(&case).unwrap();
}

/// A variable in predicate position joins the two atoms; reformulation
/// must instantiate it consistently across every cover.
#[test]
fn variable_predicate_join() {
    let case = jucq_qa::GenCase::from_spec(
        &["p0 dom C0", "i0 p0 i1", "i0 a C1", "C1 sc C0"],
        &["?v0 ?v1 ?v2", "?v0 a C0"],
        &["?v0", "?v1"],
    );
    jucq_qa::check_case(&case).unwrap();
}
