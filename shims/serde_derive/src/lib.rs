//! No-op `Serialize`/`Deserialize` derives. The shim `serde` crate
//! blanket-implements both traits for every type, so the derives have
//! nothing to emit — they exist only so `#[derive(Serialize)]` and
//! `#[serde(...)]` field/container attributes resolve.

use proc_macro::TokenStream;

/// Emits nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
