//! Offline shim for `serde`: marker traits plus no-op derives.
//!
//! Nothing in this workspace serializes through serde (the snapshot
//! format and the observability JSON exporter are hand-rolled), but
//! several types carry `#[derive(Serialize, Deserialize)]` so the real
//! crate can be dropped back in. The traits are blanket-implemented
//! so the derives can expand to nothing.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
