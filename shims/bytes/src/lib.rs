//! Offline shim for the `bytes` crate: the little-endian subset the
//! snapshot format uses, backed by plain `Vec<u8>`/`&[u8]`.

use std::ops::Deref;

/// An immutable byte buffer (a frozen [`BytesMut`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

/// Read-side accessors (little-endian subset). Panics on underflow,
/// matching the real crate; callers bounds-check first.
pub trait Buf {
    /// Read a little-endian `u16`, advancing the cursor.
    fn get_u16_le(&mut self) -> u16;
    /// Read a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn get_u16_le(&mut self) -> u16 {
        let (head, tail) = self.split_at(2);
        *self = tail;
        u16::from_le_bytes(head.try_into().expect("2 bytes"))
    }
    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }
    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"hi");
        b.put_u16_le(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        let (head, tail) = r.split_at(2);
        assert_eq!(head, b"hi");
        r = tail;
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert!(r.is_empty());
    }
}
