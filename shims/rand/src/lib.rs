//! Offline shim for `rand` 0.8: a deterministic xoshiro256++ generator
//! behind the `StdRng`/`SeedableRng`/`Rng` names, covering the subset
//! the data generators use (`seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`).

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — deterministic and fast;
    /// statistically far better than the generators it replaces needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3..=5i32);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
