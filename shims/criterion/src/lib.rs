//! Offline shim for `criterion`: a real (if minimal) wall-clock
//! benchmark harness behind the criterion API subset the benches use.
//!
//! Each benchmark runs a short calibration to pick an iteration batch,
//! then `sample_size` timed batches; the median per-iteration time is
//! reported on stdout as
//! `bench <group>/<name> ... median <t> (min <t>, mean <t>)`.
//! Passing `--bench` (as `cargo bench` does) is accepted and ignored;
//! a positional substring filters benchmark names like the real crate.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time per timed batch.
const TARGET_BATCH: Duration = Duration::from_millis(20);
/// Default number of timed batches.
const DEFAULT_SAMPLES: usize = 30;

/// Re-exported for convenience (the real crate has its own; the
/// benches here use `std::hint::black_box` directly).
pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to the closure of [`Criterion::bench_function`]; `iter` times
/// the supplied routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration nanoseconds of the last `iter` run.
    last_median_ns: f64,
    last_min_ns: f64,
    last_mean_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, last_median_ns: 0.0, last_min_ns: 0.0, last_mean_ns: 0.0 }
    }

    /// Time `routine`: calibrate a batch size reaching ~[`TARGET_BATCH`],
    /// then run `samples` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until it takes long enough to time.
        let mut batch: u64 = 1;
        let mut calib;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            calib = start.elapsed();
            if calib >= TARGET_BATCH / 4 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        self.last_median_ns = per_iter[per_iter.len() / 2];
        self.last_min_ns = per_iter[0];
        self.last_mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes with `--bench` plus optional filters;
        // keep the first non-flag argument as a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn runs(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, samples: usize, mut f: F) {
        if !self.runs(name) {
            return;
        }
        let mut b = Bencher::new(samples);
        f(&mut b);
        println!(
            "bench {name:<48} median {:>10}  (min {}, mean {})",
            fmt_ns(b.last_median_ns),
            fmt_ns(b.last_min_ns),
            fmt_ns(b.last_mean_ns),
        );
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.run_one(name, DEFAULT_SAMPLES, f);
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), samples: DEFAULT_SAMPLES }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        self.c.run_one(&full, self.samples, f);
        self
    }

    /// Run one benchmark with an input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        self.c.run_one(&full, self.samples, |b| f(b, input));
        self
    }

    /// Close the group (a no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declare the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(5);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(b.last_median_ns > 0.0);
        assert!(b.last_min_ns <= b.last_median_ns);
    }

    #[test]
    fn benchmark_id_renders() {
        let id = BenchmarkId::new("scan", 1000);
        assert_eq!(id.name, "scan/1000");
    }
}
