//! Offline shim for `proptest`: a deterministic property-testing runner
//! covering the API subset this workspace's tests use.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its seed; re-running is
//!   deterministic, so the case reproduces exactly.
//! - Strategies are simple generator objects (`generate(&mut TestRng)`);
//!   there is no value tree.
//! - The regex string strategy supports the subset actually used:
//!   literals, `.`, character classes (`[a-z0-9_-]`, ranges, leading or
//!   trailing `-`), and `{m}` / `{m,n}` repetition.
//!
//! Seeds are derived from the test name and case index, so runs are
//! reproducible without an environment variable protocol.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

// ---------------------------------------------------------------------------
// Test-case outcome
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole property fails.
    Fail(String),
    /// The case did not satisfy an assumption; retried with a new seed.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure with a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection with a rendered message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// One weighted arm of a [`Union`]: a weight plus a boxed generator.
pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted choice among strategies yielding one value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
    total: u32,
}

impl<V> Union<V> {
    /// Build from `(weight, generator)` arms; weights must not all be 0.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }

    /// Box one weighted arm (used by the [`prop_oneof!`] expansion).
    pub fn arm<S>(weight: u32, strategy: S) -> UnionArm<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        (weight, Box::new(move |rng| strategy.generate(rng)))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, gen) in &self.arms {
            if pick < *w {
                return gen(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covered above")
    }
}

/// Strategy for "any value" of a type (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait ArbitraryValue: Sized {
    /// Sample one value from the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// collection / option / string modules
// ---------------------------------------------------------------------------

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_incl: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max_incl: *r.end() }
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_inclusive(self.size.min, self.size.max_incl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for `Option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Regex-driven string strategies (supported subset: literals, `.`,
/// character classes with ranges, `{m}` / `{m,n}` repetition).
pub mod string {
    use super::{Strategy, TestRng};

    /// One compiled regex unit.
    #[derive(Debug, Clone)]
    enum Unit {
        Literal(char),
        /// `.`: any printable ASCII char, with occasional other chars so
        /// robustness tests still see newlines/unicode.
        AnyChar,
        Class(Vec<(char, char)>),
    }

    /// A compiled pattern: units with inclusive repetition bounds.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        parts: Vec<(Unit, usize, usize)>,
    }

    /// Error for unsupported or malformed patterns.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex pattern: {}", self.0)
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Unit, Error> {
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().ok_or_else(|| Error("unterminated class".into()))?;
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    return Ok(Unit::Class(ranges));
                }
                '-' => {
                    // A range if a char is pending and the next is not `]`.
                    match (pending.take(), chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            chars.next();
                            if lo > hi {
                                return Err(Error(format!("inverted range {lo}-{hi}")));
                            }
                            ranges.push((lo, hi));
                        }
                        (p, _) => {
                            if let Some(p) = p {
                                ranges.push((p, p));
                            }
                            ranges.push(('-', '-'));
                        }
                    }
                }
                '\\' => {
                    let esc = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    if let Some(p) = pending.replace(esc) {
                        ranges.push((p, p));
                    }
                }
                other => {
                    if let Some(p) = pending.replace(other) {
                        ranges.push((p, p));
                    }
                }
            }
        }
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<(usize, usize), Error> {
        // Called after consuming `{`.
        let mut digits = String::new();
        let mut min: Option<usize> = None;
        loop {
            let c = chars.next().ok_or_else(|| Error("unterminated repetition".into()))?;
            match c {
                '}' => {
                    let n: usize =
                        digits.parse().map_err(|_| Error("bad repetition bound".into()))?;
                    return match min {
                        Some(m) => Ok((m, n)),
                        None => Ok((n, n)),
                    };
                }
                ',' => {
                    min = Some(digits.parse().map_err(|_| Error("bad repetition bound".into()))?);
                    digits.clear();
                }
                d if d.is_ascii_digit() => digits.push(d),
                other => return Err(Error(format!("bad repetition char {other:?}"))),
            }
        }
    }

    /// Compile `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut parts: Vec<(Unit, usize, usize)> = Vec::new();
        while let Some(c) = chars.next() {
            let unit = match c {
                '[' => parse_class(&mut chars)?,
                '.' => Unit::AnyChar,
                '\\' => {
                    let esc = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    Unit::Literal(esc)
                }
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    return Err(Error(format!("unsupported metachar {c:?} in {pattern:?}")));
                }
                lit => Unit::Literal(lit),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                parse_repeat(&mut chars)?
            } else {
                (1, 1)
            };
            parts.push((unit, min, max));
        }
        Ok(RegexGeneratorStrategy { parts })
    }

    fn gen_any_char(rng: &mut TestRng) -> char {
        match rng.below(20) {
            // Mostly printable ASCII; sprinkle whitespace and unicode so
            // parser-robustness properties see hostile input too.
            0 => '\n',
            1 => '\t',
            2 => char::from_u32(0x80 + rng.below(0xFFF) as u32).unwrap_or('¿'),
            _ => (0x20 + rng.below(0x5F) as u8) as char,
        }
    }

    fn gen_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges.iter().map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1).sum();
        let mut pick = rng.below(total);
        for &(lo, hi) in ranges {
            let span = (hi as u64) - (lo as u64) + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick as u32)
                    .expect("class range in scalar space");
            }
            pick -= span;
        }
        unreachable!("pick bounded by total")
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (unit, min, max) in &self.parts {
                let n = rng.usize_inclusive(*min, *max);
                for _ in 0..n {
                    match unit {
                        Unit::Literal(c) => out.push(*c),
                        Unit::AnyChar => out.push(gen_any_char(rng)),
                        Unit::Class(ranges) => out.push(gen_class(ranges, rng)),
                    }
                }
            }
            out
        }
    }
}

/// Bare string literals act as regex strategies (panics on a pattern
/// outside the supported subset, like the real crate's `new_tree` would
/// fail the test).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self).expect("string literal strategy").generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-property configuration (struct-update syntax supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Total rejected cases tolerated before the property errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 4096 }
    }
}

/// Test-runner internals used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};

    fn name_hash(name: &str) -> u64 {
        // FNV-1a, stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: run `config.cases` passing cases, retrying
    /// rejected ones, panicking on the first failure with its seed.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = name_hash(name);
        let mut rejects: u32 = 0;
        let mut attempt: u64 = 0;
        let mut passed: u32 = 0;
        while passed < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(msg)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "property {name}: too many rejected cases \
                             ({rejects}); last: {msg}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property {name} failed at case {passed} (seed {seed:#018x}):\n{msg}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $(let $arg = $strat;)+
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$arg, __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq!({}, {}) at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq!({}, {}) at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne!({}, {}) at {}:{}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// Reject (and retry) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Union::arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Union::arm(1u32, $strat)),+
        ])
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, string};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn regex_subset_generates_in_language() {
        let s = crate::string::string_regex("[a-zA-Z0-9_/:.#-]{1,24}").unwrap();
        let mut rng = TestRng::from_seed(5);
        for _ in 0..500 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((1..=24).contains(&v.chars().count()), "bad len: {v:?}");
            assert!(
                v.chars().all(|c| c.is_ascii_alphanumeric() || "_/:.#-".contains(c)),
                "bad char in {v:?}"
            );
        }
    }

    #[test]
    fn dot_pattern_length_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&".{0,200}", &mut rng);
            assert!(v.chars().count() <= 200);
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![
            3 => Just(0u8),
            1 => Just(1u8),
        ];
        let mut rng = TestRng::from_seed(11);
        let n = 4000;
        let ones = (0..n).filter(|_| crate::Strategy::generate(&s, &mut rng) == 1).count();
        // Expect ~25%; accept a broad band.
        assert!((n / 8..n / 2).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn vec_sizes_within_range() {
        let s = crate::collection::vec(0u32..5, 2..6);
        let mut rng = TestRng::from_seed(13);
        for _ in 0..300 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        #[test]
        fn macro_end_to_end(a in 0u64..100, b in any::<bool>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
        }
    }
}
