//! `jucq-server` — a zero-dependency HTTP/1.1 SPARQL endpoint over
//! snapshot-isolated reads.
//!
//! The serving stack, bottom to top:
//!
//! * [`jucq_core::ServingDb`] publishes immutable epoch snapshots;
//!   every request pins one [`jucq_core::Snapshot`] for its whole
//!   lifetime (parse, answer, decode) and so observes exactly one
//!   consistent database state;
//! * a fixed worker pool (`--threads`) drains a **bounded** admission
//!   queue; when the queue is full new connections are turned away
//!   with `429 Too Many Requests` + `Retry-After` right on the accept
//!   thread — load sheds at the door instead of queueing unboundedly;
//! * per-request execution limits (deadline, memory budget) ride on
//!   [`jucq_core::Snapshot::request_profile`]: they tighten execution
//!   without touching plan identity, so the shared plan cache stays
//!   warm across requests with different limits;
//! * every served query lands in the jucq-obs query log (when a sink
//!   is installed) and the obs metrics registry, scraped via
//!   `GET /metrics`.
//!
//! Endpoints:
//!
//! | Method | Path       | Body / params                                    | Response |
//! |--------|------------|--------------------------------------------------|----------|
//! | POST   | `/query`   | SPARQL text; `?strategy=sat\|ucq\|scq\|range\|ecov\|gcov`, `?limit=N`; headers `X-Jucq-Deadline-Ms`, `X-Jucq-Memory-Tuples` | JSON: epoch, strategy, rows; `X-Jucq-Epoch` header (on errors too) |
//! | GET    | `/metrics` | —                                                | jucq-obs/1 JSON (spans drained, counters cumulative, `serving.epoch` / `views.*` gauges refreshed at scrape) |
//! | GET    | `/health`  | —                                                | `ok` + current epoch |
//!
//! Status codes: `400` unparseable query, `404` unknown path, `405`
//! wrong method, `413` oversized body, `422` cover/engine refusal
//! (union too large, memory budget), `429` queue full, `504` deadline
//! exceeded.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jucq_core::store::EngineProfile;
use jucq_core::{AnswerError, ServingDb, Snapshot, Strategy};
use jucq_obs::export::escape_json;

pub mod http;

use http::{read_request, respond, RecvError, Request};

/// Serving knobs. `Default` gives a loopback endpoint on an
/// OS-assigned port with one worker per core (min 2).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port 0 lets the OS pick (see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Worker threads draining the admission queue.
    pub threads: usize,
    /// Bounded admission-queue depth; beyond it connections get 429.
    pub queue_depth: usize,
    /// Default per-request deadline (individual requests may tighten
    /// it further via `X-Jucq-Deadline-Ms`; never loosen).
    pub deadline: Option<Duration>,
    /// Strategy when the request names none.
    pub strategy: Strategy,
    /// Request-body cap in bytes.
    pub max_body_bytes: usize,
    /// Socket read timeout (slowloris guard).
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).max(2);
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            threads,
            queue_depth: 64,
            deadline: None,
            strategy: Strategy::gcov_default(),
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
        }
    }
}

const MAX_HEAD_BYTES: usize = 16 << 10;

/// The bounded admission queue: accepted connections wait here for a
/// worker. `push` never blocks — a full queue is the backpressure
/// signal (429), not a place to park the accept thread.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner {
    conns: std::collections::VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                conns: std::collections::VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue if there is room; `Err` hands the stream back for a 429.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.lock();
        if inner.closed || inner.conns.len() >= self.capacity {
            return Err(stream);
        }
        inner.conns.push_back(stream);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a connection or shutdown; `None` means drain and exit.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.lock();
        loop {
            if let Some(stream) = inner.conns.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// A running endpoint. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop, drains the queue, and joins every worker.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and the worker pool, and return.
    /// The endpoint is ready as soon as this returns.
    pub fn start(serving: Arc<ServingDb>, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(config.queue_depth));

        let workers = (0..config.threads.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let serving = Arc::clone(&serving);
                let config = config.clone();
                std::thread::spawn(move || {
                    while let Some(stream) = queue.pop() {
                        handle_connection(&serving, &config, stream);
                    }
                })
            })
            .collect();

        let accept_handle = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Err(mut rejected) = queue.push(stream) {
                        jucq_obs::metrics::counter_add("server.rejected", 1);
                        let _ = respond(
                            &mut rejected,
                            429,
                            "Too Many Requests",
                            "text/plain",
                            &[("Retry-After", "1")],
                            b"queue full\n",
                        );
                    }
                }
            })
        };

        Ok(Server { local_addr, stop, queue, accept_handle: Some(accept_handle), workers })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(serving: &ServingDb, config: &ServeConfig, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let request = match read_request(&mut stream, MAX_HEAD_BYTES, config.max_body_bytes) {
        Ok(request) => request,
        Err(RecvError::TooLarge) => {
            let _ = respond(&mut stream, 413, "Content Too Large", "text/plain", &[], b"");
            return;
        }
        Err(RecvError::Malformed) => {
            let _ = respond(&mut stream, 400, "Bad Request", "text/plain", &[], b"");
            return;
        }
        Err(RecvError::Io(_)) => return,
    };
    jucq_obs::metrics::counter_add("server.requests", 1);
    let started = Instant::now();
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => handle_query(serving, config, &request, &mut stream),
        ("GET", "/metrics") => {
            // Point-in-time gauges are refreshed at scrape time, so the
            // exported value is current even if no query ran since the
            // last epoch change.
            jucq_obs::metrics::gauge_set("serving.epoch", serving.epoch() as f64);
            if let Some(stats) = serving.view_stats() {
                jucq_obs::metrics::gauge_set("views.entries", stats.entries as f64);
                jucq_obs::metrics::gauge_set("views.tuples", stats.total_tuples as f64);
            }
            let body = jucq_obs::export::to_json(&jucq_obs::take_session());
            let _ = respond(&mut stream, 200, "OK", "application/json", &[], body.as_bytes());
        }
        ("GET", "/health") => {
            let body = format!("ok epoch={}\n", serving.epoch());
            let _ = respond(&mut stream, 200, "OK", "text/plain", &[], body.as_bytes());
        }
        ("POST" | "GET", _) => {
            let _ = respond(&mut stream, 404, "Not Found", "text/plain", &[], b"");
        }
        _ => {
            let _ = respond(&mut stream, 405, "Method Not Allowed", "text/plain", &[], b"");
        }
    }
    jucq_obs::metrics::histogram_record("server.request_us", started.elapsed().as_micros() as u64);
}

fn handle_query(
    serving: &ServingDb,
    config: &ServeConfig,
    request: &Request,
    stream: &mut TcpStream,
) {
    // Pin one epoch for the request's whole lifetime. Every response
    // names it in `X-Jucq-Epoch`, success or failure: a client replaying
    // a mixed read/write workload can tell exactly which database state
    // answered each request.
    let snapshot: Arc<Snapshot> = serving.snapshot();
    let epoch = snapshot.epoch().to_string();
    let epoch_header = ("X-Jucq-Epoch", epoch.as_str());

    let strategy = match request.query_param("strategy") {
        Some(name) => match parse_strategy(name) {
            Some(s) => s,
            None => {
                jucq_obs::metrics::counter_add("server.errors", 1);
                let body = error_json(&format!("unknown strategy `{name}`"));
                let _ =
                    respond(stream, 400, "Bad Request", "application/json", &[epoch_header], &body);
                return;
            }
        },
        None => config.strategy.clone(),
    };

    let sparql = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            jucq_obs::metrics::counter_add("server.errors", 1);
            let body = error_json("request body is not UTF-8");
            let _ = respond(stream, 400, "Bad Request", "application/json", &[epoch_header], &body);
            return;
        }
    };
    let q = match snapshot.parse_query(sparql) {
        Ok(q) => q,
        Err(e) => {
            jucq_obs::metrics::counter_add("server.errors", 1);
            let body = error_json(&e.to_string());
            let _ = respond(stream, 400, "Bad Request", "application/json", &[epoch_header], &body);
            return;
        }
    };

    // Per-request limits: a request may tighten the server deadline,
    // never loosen it.
    let deadline = match request.header("x-jucq-deadline-ms").and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => {
            let requested = Duration::from_millis(ms);
            Some(config.deadline.map_or(requested, |server| requested.min(server)))
        }
        None => config.deadline,
    };
    let memory = request.header("x-jucq-memory-tuples").and_then(|v| v.parse::<usize>().ok());
    let limits: Option<EngineProfile> = (deadline.is_some() || memory.is_some())
        .then(|| snapshot.request_profile(deadline, memory));

    let (result, record) = snapshot.answer_recorded(&q, &strategy, limits.as_ref());
    if let Some(record) = record {
        jucq_obs::record::submit(record);
    }
    match result {
        Ok(report) => {
            let limit = request
                .query_param("limit")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(usize::MAX);
            let body = answer_json(&snapshot, &report, limit);
            let _ = respond(stream, 200, "OK", "application/json", &[epoch_header], &body);
        }
        Err(e) => {
            jucq_obs::metrics::counter_add("server.errors", 1);
            let (status, reason) = match &e {
                AnswerError::Engine(jucq_core::store::EngineError::Timeout { .. }) => {
                    (504, "Gateway Timeout")
                }
                _ => (422, "Unprocessable Content"),
            };
            let body = error_json(&e.to_string());
            let _ = respond(stream, status, reason, "application/json", &[epoch_header], &body);
        }
    }
}

/// Render an answer as JSON. Row cells use the same rendering as the
/// `jucq query` CLI (the dictionary's lexical form), so HTTP and CLI
/// results diff cleanly.
fn answer_json(snapshot: &Snapshot, report: &jucq_core::AnswerReport, limit: usize) -> Vec<u8> {
    let decoded = snapshot.decode_rows(&report.rows);
    let mut out = String::with_capacity(256 + decoded.len() * 32);
    out.push_str(&format!(
        "{{\"epoch\":{},\"strategy\":\"{}\",\"row_count\":{},\"union_terms\":{},\"planning_us\":{},\"eval_us\":{},\"rows\":[",
        snapshot.epoch(),
        escape_json(report.strategy),
        decoded.len(),
        report.union_terms,
        report.planning_time.as_micros(),
        report.eval_time.as_micros(),
    ));
    for (i, row) in decoded.iter().take(limit).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, term) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(&term.to_string()));
            out.push('"');
        }
        out.push(']');
    }
    out.push_str("]}");
    out.into_bytes()
}

fn error_json(message: &str) -> Vec<u8> {
    format!("{{\"error\":\"{}\"}}", escape_json(message)).into_bytes()
}

/// Strategy short names, matching the `jucq` CLI's `--strategy` values.
pub fn parse_strategy(name: &str) -> Option<Strategy> {
    match name {
        "sat" | "saturation" => Some(Strategy::Saturation),
        "ucq" => Some(Strategy::Ucq),
        "scq" => Some(Strategy::Scq),
        "range" => Some(Strategy::Range),
        "ecov" => Some(Strategy::ecov_default()),
        "gcov" => Some(Strategy::gcov_default()),
        _ => None,
    }
}
