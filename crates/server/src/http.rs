//! Minimal HTTP/1.1 wire handling over a blocking [`TcpStream`] — just
//! enough of RFC 9112 for a localhost query endpoint: one request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked transfer), bounded head and body sizes so a misbehaving
//! client cannot balloon a worker.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// A parsed request: method, split target, lowercased headers, body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// The path component of the target, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs from the target's query string.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First query-string value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// Head or body exceeded the configured bound.
    TooLarge,
    /// Not parseable as an HTTP/1.1 request.
    Malformed,
    /// The socket failed or closed mid-request.
    Io(io::Error),
}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// Read and parse one request. `max_head` bounds the request line +
/// headers; `max_body` bounds the declared `Content-Length`.
pub fn read_request(
    stream: &mut TcpStream,
    max_head: usize,
    max_body: usize,
) -> Result<Request, RecvError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > max_head {
            return Err(RecvError::TooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RecvError::Malformed);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| RecvError::Malformed)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(RecvError::Malformed)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(RecvError::Malformed)?.to_owned();
    let target = parts.next().ok_or(RecvError::Malformed)?;
    let version = parts.next().ok_or(RecvError::Malformed)?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed);
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(RecvError::Malformed)?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse().map_err(|_| RecvError::Malformed)?,
        None => 0,
    };
    if content_length > max_body {
        return Err(RecvError::TooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RecvError::Malformed);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query_string(q)),
        None => (target.to_owned(), Vec::new()),
    };

    Ok(Request { method, path, query, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_query_string(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Decode `%XX` escapes and `+` (form-style spaces). Invalid escapes
/// pass through literally — a query endpoint should answer, not nitpick.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = &s[i + 1..i + 3];
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Write a complete response and close the write side. Every response
/// is `Connection: close` — one request per connection keeps the
/// admission queue the single source of backpressure.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_string_decoding() {
        let q = parse_query_string("strategy=ucq&q=SELECT%20%3Fx+WHERE&flag");
        assert_eq!(
            q,
            vec![
                ("strategy".into(), "ucq".into()),
                ("q".into(), "SELECT ?x WHERE".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn invalid_escapes_pass_through() {
        assert_eq!(percent_decode("100%25"), "100%");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("a%zzb"), "a%zzb");
    }
}
