//! End-to-end tests over a real socket: the endpoint answers exactly
//! like the library, rejects what it must, and sheds load with 429
//! when the admission queue is full.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use jucq_core::model::{vocab, Term, Triple};
use jucq_core::store::EngineProfile;
use jucq_core::{RdfDatabase, ServingDb, Strategy};
use jucq_server::{ServeConfig, Server};

fn t(s: &str, p: &str, o: Term) -> Triple {
    Triple::new(Term::uri(s), Term::uri(p), o)
}

fn library_db() -> RdfDatabase {
    let mut db = RdfDatabase::new();
    let mut triples = vec![
        t("Novel", vocab::RDFS_SUBCLASS_OF, Term::uri("Book")),
        t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Work")),
        t("Article", vocab::RDFS_SUBCLASS_OF, Term::uri("Work")),
    ];
    for (i, class) in ["Novel", "Book", "Article"].into_iter().enumerate() {
        triples.push(t(&format!("doc{i}"), vocab::RDF_TYPE, Term::uri(class)));
    }
    db.extend(&triples);
    db
}

/// One-shot HTTP exchange: returns (status, headers, body).
fn exchange_full(addr: std::net::SocketAddr, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    (status, head.to_owned(), body.to_owned())
}

/// One-shot HTTP exchange: returns (status, body).
fn exchange(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let (status, _, body) = exchange_full(addr, request);
    (status, body)
}

fn post_query(addr: std::net::SocketAddr, target: &str, sparql: &str) -> (u16, String) {
    let request = format!(
        "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{sparql}",
        sparql.len()
    );
    exchange(addr, &request)
}

#[test]
fn endpoint_matches_the_library_and_validates_requests() {
    let serving = Arc::new(ServingDb::new(library_db()));
    let config = ServeConfig { threads: 2, ..ServeConfig::default() };
    let server = Server::start(Arc::clone(&serving), config).expect("bind");
    let addr = server.local_addr();

    let sparql = "SELECT ?x WHERE { ?x rdf:type <Work> . }";
    // The library's own answer, decoded the same way the server does.
    let snapshot = serving.snapshot();
    let q = snapshot.parse_query(sparql).unwrap();
    let mut expected: Vec<String> = Vec::new();
    let report = snapshot.answer(&q, &Strategy::Ucq).unwrap();
    for row in snapshot.decode_rows(&report.rows) {
        expected.push(format!("[\"{}\"]", row[0]));
    }
    expected.sort();
    assert_eq!(expected.len(), 3);

    let request = format!(
        "POST /query?strategy=ucq HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{sparql}",
        sparql.len()
    );
    let (status, head, body) = exchange_full(addr, &request);
    assert_eq!(status, 200, "{body}");
    assert!(
        head.contains("X-Jucq-Epoch: 0"),
        "every /query response names its pinned epoch: {head:?}"
    );
    let parsed = jucq_obs::json::parse(&body).expect("valid JSON");
    assert_eq!(parsed.get("epoch").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(parsed.get("strategy").and_then(|v| v.as_str()), Some("UCQ"));
    assert_eq!(parsed.get("row_count").and_then(|v| v.as_u64()), Some(3));
    let mut served: Vec<String> = parsed
        .get("rows")
        .and_then(|v| v.as_arr())
        .expect("rows array")
        .iter()
        .map(|row| {
            let cells: Vec<String> = row
                .as_arr()
                .expect("row array")
                .iter()
                .map(|c| format!("\"{}\"", c.as_str().expect("string cell")))
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    served.sort();
    assert_eq!(served, expected, "HTTP rows match the library's");

    // Every listed strategy serves the same complete answer.
    for strategy in ["sat", "scq", "range", "ecov", "gcov"] {
        let (status, body) = post_query(addr, &format!("/query?strategy={strategy}"), sparql);
        assert_eq!(status, 200, "{strategy}: {body}");
        let parsed = jucq_obs::json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("row_count").and_then(|v| v.as_u64()),
            Some(3),
            "strategy {strategy}"
        );
    }

    // limit truncates rows but reports the full count.
    let (_, body) = post_query(addr, "/query?strategy=ucq&limit=1", sparql);
    let parsed = jucq_obs::json::parse(&body).unwrap();
    assert_eq!(parsed.get("row_count").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(parsed.get("rows").and_then(|v| v.as_arr()).map(<[_]>::len), Some(1));

    // Malformed SPARQL → 400 with a JSON error (epoch header still set:
    // the request did pin a snapshot).
    let bad = "SELECT WHERE {";
    let request = format!(
        "POST /query HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{bad}",
        bad.len()
    );
    let (status, head, body) = exchange_full(addr, &request);
    assert_eq!(status, 400);
    assert!(head.contains("X-Jucq-Epoch: 0"), "{head:?}");
    assert!(jucq_obs::json::parse(&body).unwrap().get("error").is_some());

    // Unknown strategy → 400; unknown path → 404; bad method → 405.
    let (status, _) = post_query(addr, "/query?strategy=bogus", sparql);
    assert_eq!(status, 400);
    let (status, _) = post_query(addr, "/nope", sparql);
    assert_eq!(status, 404);
    let (status, _) =
        exchange(addr, "DELETE /query HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 405);

    // /health names the current epoch; /metrics is well-formed
    // jucq-obs JSON carrying the server counters.
    let (status, body) = exchange(addr, "GET /health HTTP/1.1\r\nHost: localhost\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.starts_with("ok epoch=0"), "{body}");
    jucq_obs::set_enabled(true);
    let (_, _) = post_query(addr, "/query?strategy=ucq", sparql);
    let (status, body) = exchange(addr, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
    assert_eq!(status, 200);
    let metrics = jucq_obs::json::parse(&body).expect("metrics are valid JSON");
    assert_eq!(metrics.get("schema").and_then(|v| v.as_str()), Some("jucq-obs/1"));
    let requests = metrics
        .get("counters")
        .and_then(|c| c.get("server.requests"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert!(requests >= 1, "server.requests counted while obs enabled");
    let epoch_gauge =
        metrics.get("gauges").and_then(|g| g.get("serving.epoch")).and_then(|v| v.as_f64());
    assert_eq!(epoch_gauge, Some(0.0), "scrape-time serving.epoch gauge");
    jucq_obs::set_enabled(false);

    // An update publishes a new epoch; subsequent requests see it in
    // the body, the header, and the scraped gauge.
    serving.apply_data_updates(&[t("doc9", vocab::RDF_TYPE, Term::uri("Novel"))], &[]);
    let request = format!(
        "POST /query?strategy=ucq HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{sparql}",
        sparql.len()
    );
    let (_, head, body) = exchange_full(addr, &request);
    assert!(head.contains("X-Jucq-Epoch: 1"), "{head:?}");
    let parsed = jucq_obs::json::parse(&body).unwrap();
    assert_eq!(parsed.get("epoch").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(parsed.get("row_count").and_then(|v| v.as_u64()), Some(4));
    jucq_obs::set_enabled(true);
    let (_, body) = exchange(addr, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
    let metrics = jucq_obs::json::parse(&body).unwrap();
    assert_eq!(
        metrics.get("gauges").and_then(|g| g.get("serving.epoch")).and_then(|v| v.as_f64()),
        Some(1.0)
    );
    jucq_obs::set_enabled(false);
}

#[test]
fn full_admission_queue_sheds_load_with_429() {
    let serving = Arc::new(ServingDb::new(library_db()));
    let config = ServeConfig {
        threads: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let server = Server::start(serving, config).expect("bind");
    let addr = server.local_addr();

    // Occupy the single worker with a connection that never sends its
    // request, then fill the depth-1 queue with a second one.
    let blocker = TcpStream::connect(addr).expect("connect blocker");
    std::thread::sleep(Duration::from_millis(150));
    let queued = TcpStream::connect(addr).expect("connect queued");
    std::thread::sleep(Duration::from_millis(150));

    // The next connection finds the queue full and is turned away at
    // the door, Retry-After attached.
    let mut rejected = TcpStream::connect(addr).expect("connect rejected");
    rejected.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut response = String::new();
    rejected.read_to_string(&mut response).expect("read 429");
    assert!(response.starts_with("HTTP/1.1 429 "), "{response:?}");
    assert!(response.contains("Retry-After: 1"), "{response:?}");

    // Releasing the blockers lets the server drain and shut down.
    drop(blocker);
    drop(queued);
}

#[test]
fn per_request_deadline_rides_the_profile() {
    let mut db = library_db();
    // A generous server-side default; the request tightens it to zero.
    db.set_profile(EngineProfile::pg_like().with_timeout(Duration::from_secs(30)));
    let serving = Arc::new(ServingDb::new(db));
    let server = Server::start(serving, ServeConfig::default()).expect("bind");
    let addr = server.local_addr();

    let sparql = "SELECT ?x WHERE { ?x rdf:type <Work> . }";
    let request = format!(
        "POST /query?strategy=ucq HTTP/1.1\r\nHost: localhost\r\nX-Jucq-Deadline-Ms: 0\r\nContent-Length: {}\r\n\r\n{sparql}",
        sparql.len()
    );
    let (status, body) = exchange(addr, &request);
    assert_eq!(status, 504, "a zero deadline must time out: {body}");
    let parsed = jucq_obs::json::parse(&body).unwrap();
    assert!(
        parsed.get("error").and_then(|v| v.as_str()).unwrap_or("").contains("timed out"),
        "{body}"
    );

    // Without the header the server default applies and the query runs.
    let (status, _) = post_query(addr, "/query?strategy=ucq", sparql);
    assert_eq!(status, 200);
}
