//! LiteMat-style hierarchy-aware dictionary encoding.
//!
//! Reformulation turns a query atom over class `C` into one union member
//! per subclass of `C` — an O(#subclasses) blow-up every strategy of the
//! paper pays. Following LiteMat (Curé et al.), this module renumbers
//! the URI dictionary so that each class (and property) hierarchy node
//! sits immediately before its descendants: "C and everything below it"
//! then occupies one contiguous [`IdRange`], and the whole union
//! collapses into a single clustered-index range scan.
//!
//! The layout is a DFS preorder walk over the *direct* subclass /
//! subproperty edges:
//!
//! * tree-shaped subhierarchies get **exact** intervals — the interval
//!   content is precisely the node plus its closed descendants;
//! * a multi-parent node is attached under one primary parent (its
//!   smallest direct parent, for determinism) — every other ancestor's
//!   interval misses it and is recorded as **inexact** with the missing
//!   descendants kept as explicit `residuals`;
//! * nodes on subclass cycles are unreachable from any root and get no
//!   interval at all (they are appended after the laid-out nodes).
//!
//! The encoding itself never decides query answers: the planner's union
//! collapse checks *id contiguity of the actual member constants* at
//! plan time, which is valid under any numbering. This module only makes
//! contiguity the common case and exposes the interval bookkeeping
//! ([`HierarchyEncoding::descendant_range`]) for explain output, cost
//! estimation and tests.

use crate::hash::{FxHashMap, FxHashSet};
use crate::schema::{Schema, SchemaClosure};
use crate::term::TermKind;
use crate::triple::TermId;

/// A half-open range `[lo, hi)` of raw [`TermId`] values (same-kind ids
/// with consecutive indexes have consecutive raw values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdRange {
    /// First raw id in the range (inclusive).
    pub lo: u32,
    /// One past the last raw id (exclusive).
    pub hi: u32,
}

impl IdRange {
    /// Number of ids covered.
    pub fn width(&self) -> u32 {
        self.hi - self.lo
    }

    /// True iff `id` falls inside the range.
    pub fn contains(&self, id: TermId) -> bool {
        (self.lo..self.hi).contains(&id.raw())
    }
}

/// The interval bookkeeping of one laid-out hierarchy node.
#[derive(Debug, Clone)]
pub struct NodeInterval {
    /// Ids of the node and its interval-resident descendants.
    pub range: IdRange,
    /// True iff the interval content is exactly the node plus all its
    /// closed descendants (tree-shaped below this node).
    pub exact: bool,
    /// Closed descendants *outside* the interval — the residual union
    /// members a multi-parent (or cycle-entangled) hierarchy leaves
    /// behind.
    pub residuals: Vec<TermId>,
}

/// The per-node interval tables of one hierarchy-aware encoding, keyed
/// by the **post-remap** ids.
#[derive(Debug, Clone, Default)]
pub struct HierarchyEncoding {
    classes: FxHashMap<TermId, NodeInterval>,
    properties: FxHashMap<TermId, NodeInterval>,
}

impl HierarchyEncoding {
    /// The exact descendant interval of `class` — `Some` only when the
    /// interval is provably `{class} ∪ subclasses⁺(class)`; multi-parent
    /// and cycle cases answer `None` (callers fall back to the union).
    pub fn descendant_range(&self, class: TermId) -> Option<IdRange> {
        self.classes.get(&class).filter(|n| n.exact).map(|n| n.range)
    }

    /// The exact descendant interval of property `p` (see
    /// [`HierarchyEncoding::descendant_range`]).
    pub fn property_descendant_range(&self, p: TermId) -> Option<IdRange> {
        self.properties.get(&p).filter(|n| n.exact).map(|n| n.range)
    }

    /// Full interval record of a laid-out class, exact or not.
    pub fn class_interval(&self, class: TermId) -> Option<&NodeInterval> {
        self.classes.get(&class)
    }

    /// Full interval record of a laid-out property.
    pub fn property_interval(&self, p: TermId) -> Option<&NodeInterval> {
        self.properties.get(&p)
    }

    /// `(laid-out, exact)` class counts, for stats output.
    pub fn class_counts(&self) -> (usize, usize) {
        (self.classes.len(), self.classes.values().filter(|n| n.exact).count())
    }

    /// `(laid-out, exact)` property counts, for stats output.
    pub fn property_counts(&self) -> (usize, usize) {
        (self.properties.len(), self.properties.values().filter(|n| n.exact).count())
    }
}

/// DFS preorder layout of one hierarchy: visit order plus the subtree
/// position span of every visited node.
struct Layout {
    /// Old ids in DFS preorder (cycle nodes excluded).
    order: Vec<TermId>,
    /// `old id → [start, end)` positions within `order`.
    span: FxHashMap<TermId, (usize, usize)>,
}

/// Lay out `universe` (URI ids only) over the direct `edges`
/// (`(child, parent)` pairs). Children are visited in ascending old-id
/// order; a multi-parent child belongs to its smallest parent.
fn dfs_layout(universe: &[TermId], edges: &[(TermId, TermId)]) -> Layout {
    let in_universe: FxHashSet<TermId> = universe.iter().copied().collect();
    let mut children: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    let mut primary_parent: FxHashMap<TermId, TermId> = FxHashMap::default();
    for &(child, parent) in edges {
        if child == parent
            || !child.is_uri()
            || !parent.is_uri()
            || !in_universe.contains(&child)
            || !in_universe.contains(&parent)
        {
            continue;
        }
        primary_parent
            .entry(child)
            .and_modify(|p| {
                if parent < *p {
                    *p = parent;
                }
            })
            .or_insert(parent);
        let list = children.entry(parent).or_default();
        if !list.contains(&child) {
            list.push(child);
        }
    }
    for list in children.values_mut() {
        list.sort();
    }

    let mut roots: Vec<TermId> = universe
        .iter()
        .copied()
        .filter(|c| c.is_uri() && !primary_parent.contains_key(c))
        .collect();
    roots.sort();

    let mut order = Vec::with_capacity(universe.len());
    let mut span: FxHashMap<TermId, (usize, usize)> = FxHashMap::default();
    let mut visited: FxHashSet<TermId> = FxHashSet::default();
    // Iterative DFS: Enter pushes the node and its children, Exit closes
    // the subtree span.
    enum Step {
        Enter(TermId, TermId),
        Exit(TermId),
    }
    for root in roots {
        let mut stack = vec![Step::Enter(root, root)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(node, parent) => {
                    // A multi-parent node descends only from its primary
                    // parent; every other edge skips it here and records
                    // it as a residual later.
                    if primary_parent.get(&node).is_some_and(|p| *p != parent) {
                        continue;
                    }
                    if !visited.insert(node) {
                        continue;
                    }
                    span.insert(node, (order.len(), usize::MAX));
                    order.push(node);
                    stack.push(Step::Exit(node));
                    if let Some(kids) = children.get(&node) {
                        // Reverse so ascending-id children pop first.
                        for &k in kids.iter().rev() {
                            stack.push(Step::Enter(k, node));
                        }
                    }
                }
                Step::Exit(node) => {
                    span.get_mut(&node).expect("entered").1 = order.len();
                }
            }
        }
    }
    Layout { order, span }
}

/// Build the hierarchy-aware encoding for a dictionary with `uri_count`
/// interned URIs. Returns the interval tables (keyed by post-remap ids)
/// and the URI permutation `new_of_old` to apply via
/// [`crate::Dictionary::apply_uri_permutation`] /
/// [`crate::Graph::apply_hierarchy_encoding`].
///
/// The new numbering is: classes in subclass-DFS preorder, then
/// properties in subproperty-DFS preorder (skipping URIs already placed
/// as classes), then every remaining URI in its old order.
pub fn build(
    schema: &Schema,
    closure: &SchemaClosure,
    uri_count: usize,
) -> (HierarchyEncoding, Vec<u32>) {
    let class_layout = dfs_layout(closure.classes(), &schema.subclass);
    let prop_layout = dfs_layout(closure.properties(), &schema.subproperty);

    // Assign new indexes: class block, property block, tail.
    let mut new_index: Vec<Option<u32>> = vec![None; uri_count];
    let mut next: u32 = 0;
    {
        let mut place = |old: TermId| {
            let slot = &mut new_index[old.index() as usize];
            if slot.is_none() {
                *slot = Some(next);
                next += 1;
            }
        };
        for &c in &class_layout.order {
            place(c);
        }
        for &p in &prop_layout.order {
            place(p);
        }
    }
    for slot in new_index.iter_mut() {
        if slot.is_none() {
            *slot = Some(next);
            next += 1;
        }
    }
    let new_of_old: Vec<u32> = new_index.into_iter().map(|s| s.expect("filled")).collect();
    let remap = |old: TermId| TermId::new(TermKind::Uri, new_of_old[old.index() as usize]);

    // Interval bookkeeping per laid-out node, in post-remap ids.
    let intervals = |layout: &Layout, descendants: &dyn Fn(TermId) -> Vec<TermId>| {
        let mut out: FxHashMap<TermId, NodeInterval> = FxHashMap::default();
        for &node in &layout.order {
            let (start, end) = layout.span[&node];
            let members: FxHashSet<TermId> =
                layout.order[start..end].iter().map(|&m| remap(m)).collect();
            let lo = members.iter().map(|m| m.raw()).min().expect("span non-empty");
            let hi = members.iter().map(|m| m.raw()).max().expect("span non-empty") + 1;
            let mut expected: FxHashSet<TermId> =
                descendants(node).into_iter().filter(|d| d.is_uri()).map(remap).collect();
            expected.insert(remap(node));
            let contiguous = hi - lo == members.len() as u32;
            let exact = contiguous && expected.len() == members.len() && expected == members;
            let mut residuals: Vec<TermId> = expected.difference(&members).copied().collect();
            residuals.sort();
            out.insert(remap(node), NodeInterval { range: IdRange { lo, hi }, exact, residuals });
        }
        out
    };
    let classes = intervals(&class_layout, &|c| closure.sub_classes(c).to_vec());
    let properties = intervals(&prop_layout, &|p| closure.sub_properties(p).to_vec());

    (HierarchyEncoding { classes, properties }, new_of_old)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn build_for(
        schema: &Schema,
        extra_classes: &[TermId],
        uris: usize,
    ) -> (HierarchyEncoding, Vec<u32>) {
        let closure = SchemaClosure::new(schema, extra_classes.iter().copied(), []);
        build(schema, &closure, uris)
    }

    #[test]
    fn chain_gets_exact_interval() {
        // C2 ⊑ C1 ⊑ C0, declared over uris 0..=3 (3 is unrelated).
        let schema =
            Schema { subclass: vec![(id(2), id(1)), (id(1), id(0))], ..Default::default() };
        let (enc, perm) = build_for(&schema, &[], 4);
        let remap = |i: u32| TermId::new(TermKind::Uri, perm[i as usize]);
        let r0 = enc.descendant_range(remap(0)).expect("root is exact");
        assert_eq!(r0.width(), 3);
        assert!(r0.contains(remap(0)) && r0.contains(remap(1)) && r0.contains(remap(2)));
        assert!(!r0.contains(remap(3)));
        let r1 = enc.descendant_range(remap(1)).expect("mid is exact");
        assert_eq!(r1.width(), 2);
        // Preorder: parent id < child id inside the subtree.
        assert!(remap(0).raw() < remap(1).raw());
    }

    #[test]
    fn diamond_marks_secondary_parent_inexact() {
        // D ⊑ B, D ⊑ C, B ⊑ A, C ⊑ A (ids: A=0 B=1 C=2 D=3).
        let schema = Schema {
            subclass: vec![(id(3), id(1)), (id(3), id(2)), (id(1), id(0)), (id(2), id(0))],
            ..Default::default()
        };
        let (enc, perm) = build_for(&schema, &[], 4);
        let remap = |i: u32| TermId::new(TermKind::Uri, perm[i as usize]);
        // The root still covers everything exactly.
        let ra = enc.descendant_range(remap(0)).expect("root exact");
        assert_eq!(ra.width(), 4);
        // D sits under its primary parent B; B is exact, C is not.
        assert!(enc.descendant_range(remap(1)).is_some(), "primary parent exact");
        assert_eq!(enc.descendant_range(remap(2)), None, "secondary parent inexact");
        let c = enc.class_interval(remap(2)).expect("laid out");
        assert!(!c.exact);
        assert_eq!(c.residuals, vec![remap(3)], "missing descendant recorded");
    }

    #[test]
    fn cycles_get_no_interval() {
        // A ⊑ B, B ⊑ A plus an honest chain X ⊑ R.
        let schema = Schema {
            subclass: vec![(id(0), id(1)), (id(1), id(0)), (id(3), id(2))],
            ..Default::default()
        };
        let (enc, perm) = build_for(&schema, &[], 4);
        let remap = |i: u32| TermId::new(TermKind::Uri, perm[i as usize]);
        assert!(enc.class_interval(remap(0)).is_none(), "cycle node not laid out");
        assert!(enc.class_interval(remap(1)).is_none());
        assert!(enc.descendant_range(remap(2)).is_some(), "acyclic part still encoded");
    }

    #[test]
    fn permutation_is_a_bijection_covering_every_uri() {
        let schema = Schema {
            subclass: vec![(id(2), id(0)), (id(4), id(0)), (id(6), id(4))],
            subproperty: vec![(id(3), id(1))],
            ..Default::default()
        };
        let (_, perm) = build_for(&schema, &[id(8)], 10);
        assert_eq!(perm.len(), 10);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn properties_are_encoded_after_classes() {
        let schema = Schema {
            subclass: vec![(id(1), id(0))],
            subproperty: vec![(id(3), id(2))],
            ..Default::default()
        };
        let (enc, perm) = build_for(&schema, &[], 4);
        let remap = |i: u32| TermId::new(TermKind::Uri, perm[i as usize]);
        let pr = enc.property_descendant_range(remap(2)).expect("property root exact");
        assert_eq!(pr.width(), 2);
        assert!(pr.contains(remap(3)));
        // The class block comes first.
        assert!(remap(0).raw() < remap(2).raw());
    }

    #[test]
    fn isolated_classes_are_width_one_exact() {
        let schema = Schema::default();
        let (enc, perm) = build_for(&schema, &[id(1)], 3);
        let remap = |i: u32| TermId::new(TermKind::Uri, perm[i as usize]);
        let r = enc.descendant_range(remap(1)).expect("isolated class laid out");
        assert_eq!(r.width(), 1);
    }
}
