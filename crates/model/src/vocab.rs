//! The `rdf:` / `rdfs:` built-in vocabulary used by the DB fragment.
//!
//! Only the five built-ins of the paper's Figure 2 matter here:
//! `rdf:type` for class assertions and the four RDFS constraint
//! properties. We use the full W3C URIs.

/// `rdf:type` — class membership assertions.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `rdfs:subClassOf` — subclass constraints.
pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";

/// `rdfs:subPropertyOf` — subproperty constraints.
pub const RDFS_SUBPROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";

/// `rdfs:domain` — domain typing constraints.
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";

/// `rdfs:range` — range typing constraints.
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";

/// The four RDFS constraint property URIs (Figure 2, bottom).
pub const SCHEMA_PROPERTIES: [&str; 4] =
    [RDFS_SUBCLASS_OF, RDFS_SUBPROPERTY_OF, RDFS_DOMAIN, RDFS_RANGE];

/// True iff `uri` is one of the four RDFS constraint properties.
pub fn is_schema_property(uri: &str) -> bool {
    SCHEMA_PROPERTIES.contains(&uri)
}

/// Abbreviate the well-known URIs back to their usual QNames for display.
pub fn abbreviate(uri: &str) -> &str {
    match uri {
        RDF_TYPE => "rdf:type",
        RDFS_SUBCLASS_OF => "rdfs:subClassOf",
        RDFS_SUBPROPERTY_OF => "rdfs:subPropertyOf",
        RDFS_DOMAIN => "rdfs:domain",
        RDFS_RANGE => "rdfs:range",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_property_detection() {
        assert!(is_schema_property(RDFS_SUBCLASS_OF));
        assert!(is_schema_property(RDFS_RANGE));
        assert!(!is_schema_property(RDF_TYPE));
        assert!(!is_schema_property("http://example.org/p"));
    }

    #[test]
    fn abbreviations() {
        assert_eq!(abbreviate(RDF_TYPE), "rdf:type");
        assert_eq!(abbreviate(RDFS_DOMAIN), "rdfs:domain");
        assert_eq!(abbreviate("http://x/p"), "http://x/p");
    }
}
