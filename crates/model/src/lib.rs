//! # jucq-model — RDF data model
//!
//! The foundation layer of the `jucq` workspace: RDF terms, dictionary
//! encoding, triples, graphs and RDFS schemas, as defined in Section 2.1
//! of *Optimizing Reformulation-based Query Answering in RDF* (Bursztyn,
//! Goasdoué, Manolescu; EDBT 2015 / INRIA RR-8646).
//!
//! The design follows the paper's *database (DB) fragment of RDF*:
//!
//! * data is a set of well-formed triples `s p o` over URIs, literals and
//!   blank nodes ([`Term`]);
//! * the only entailment considered is RDF **Schema** entailment over the
//!   four constraint kinds of the paper's Figure 2: `rdfs:subClassOf`,
//!   `rdfs:subPropertyOf`, `rdfs:domain` and `rdfs:range` ([`Schema`]);
//! * graphs are not restricted in any way.
//!
//! Everything past parsing is dictionary-encoded: terms become compact
//! [`TermId`]s (32-bit, kind-tagged) via the [`Dictionary`], and a triple
//! is three ids ([`TripleId`]). This mirrors the paper's experimental
//! setup, where the `Triples(s,p,o)` table is "dictionary-encoded, using a
//! unique integer for each distinct value".

#![warn(missing_docs)]

pub mod dict;
pub mod encoding;
pub mod graph;
pub mod hash;
pub mod schema;
pub mod term;
pub mod triple;
pub mod vocab;

pub use dict::Dictionary;
pub use encoding::{HierarchyEncoding, IdRange};
pub use graph::Graph;
pub use hash::{FxHashMap, FxHashSet};
pub use schema::{Schema, SchemaClosure};
pub use term::{Term, TermKind};
pub use triple::TermId;
pub use triple::{Triple, TripleId};
