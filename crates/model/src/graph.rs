//! RDF graphs: a dictionary, a set of data triples and an RDFS schema.
//!
//! Following the DB fragment of RDF (paper Section 2.3), a graph — the
//! paper calls it an *RDF database* — splits into:
//!
//! * **schema triples**: those whose property is one of the four RDFS
//!   constraint properties (kept small and in memory), and
//! * **data triples**: everything else, including `rdf:type` assertions,
//!   destined for the `Triples(s,p,o)` table of the storage layer.

use crate::dict::Dictionary;
use crate::encoding::{self, HierarchyEncoding, IdRange};
use crate::hash::FxHashSet;
use crate::schema::{Schema, SchemaClosure};
use crate::term::{Term, TermKind};
use crate::triple::{TermId, Triple, TripleId};
use crate::vocab;

/// An in-memory RDF graph (the paper's "RDF database `db`").
#[derive(Debug, Default, Clone)]
pub struct Graph {
    dict: Dictionary,
    schema: Schema,
    data: Vec<TripleId>,
    data_set: FxHashSet<TripleId>,
    rdf_type: Option<TermId>,
    encoding: Option<HierarchyEncoding>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassemble a graph from its parts (used by snapshot loaders).
    /// `data` is deduplicated; ids must come from `dict`.
    pub fn assemble(dict: Dictionary, schema: Schema, data: Vec<TripleId>) -> Self {
        let mut g = Graph { dict, schema, ..Default::default() };
        for t in data {
            g.insert_data_encoded(t);
        }
        g.rdf_type = g.dict.lookup_uri(vocab::RDF_TYPE);
        g
    }

    /// Insert a decoded triple, routing it to the schema or the data
    /// part. Returns `true` if the triple was new.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        if let Term::Uri(p) = &triple.p {
            if vocab::is_schema_property(p) {
                let su = self.dict.encode(&triple.s);
                let ob = self.dict.encode(&triple.o);
                return self.insert_schema_constraint(p.clone().as_str(), su, ob);
            }
        }
        let s = self.dict.encode(&triple.s);
        let p = self.dict.encode(&triple.p);
        let o = self.dict.encode(&triple.o);
        self.insert_data_encoded(TripleId::new(s, p, o))
    }

    fn insert_schema_constraint(&mut self, p: &str, s: TermId, o: TermId) -> bool {
        let list = match p {
            vocab::RDFS_SUBCLASS_OF => &mut self.schema.subclass,
            vocab::RDFS_SUBPROPERTY_OF => &mut self.schema.subproperty,
            vocab::RDFS_DOMAIN => &mut self.schema.domain,
            vocab::RDFS_RANGE => &mut self.schema.range,
            other => unreachable!("not a schema property: {other}"),
        };
        if list.contains(&(s, o)) {
            false
        } else {
            list.push((s, o));
            true
        }
    }

    /// Insert an already-encoded data triple. Returns `true` if new.
    pub fn insert_data_encoded(&mut self, t: TripleId) -> bool {
        if self.data_set.insert(t) {
            self.data.push(t);
            true
        } else {
            false
        }
    }

    /// Remove a batch of data triples; returns how many were present.
    /// One retain pass over the data, so batch deletion is O(n + d).
    pub fn remove_data_batch(&mut self, deletes: &FxHashSet<TripleId>) -> usize {
        let mut removed = 0usize;
        for t in deletes {
            if self.data_set.remove(t) {
                removed += 1;
            }
        }
        if removed > 0 {
            self.data.retain(|t| !deletes.contains(t));
        }
        removed
    }

    /// Remove one data triple; returns `true` if it was present.
    pub fn remove_data_encoded(&mut self, t: &TripleId) -> bool {
        let mut set = FxHashSet::default();
        set.insert(*t);
        self.remove_data_batch(&set) == 1
    }

    /// Bulk-load decoded triples.
    pub fn extend<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        for t in triples {
            self.insert(t);
        }
    }

    /// The dictionary (read access).
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The dictionary (write access; used by loaders and saturation).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// The declared RDFS constraints.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The data triples, in insertion order.
    pub fn data(&self) -> &[TripleId] {
        &self.data
    }

    /// Number of data triples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the graph holds no data triples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True iff the graph contains the encoded data triple.
    pub fn contains_data(&self, t: &TripleId) -> bool {
        self.data_set.contains(t)
    }

    /// The id of `rdf:type`, interning it on first use.
    pub fn rdf_type(&mut self) -> TermId {
        match self.rdf_type {
            Some(id) => id,
            None => {
                let id = self.dict.encode_uri(vocab::RDF_TYPE);
                self.rdf_type = Some(id);
                id
            }
        }
    }

    /// The id of `rdf:type` if it is already interned.
    pub fn rdf_type_id(&self) -> Option<TermId> {
        self.rdf_type.or_else(|| self.dict.lookup_uri(vocab::RDF_TYPE))
    }

    /// Compute the schema closure, extending the class universe with the
    /// objects of `rdf:type` assertions and the property universe with
    /// the data predicates (needed by the variable-instantiation
    /// reformulation rules; paper Example 4).
    pub fn schema_closure(&self) -> SchemaClosure {
        let rdf_type = self.rdf_type_id();
        let mut classes: FxHashSet<TermId> = FxHashSet::default();
        let mut properties: FxHashSet<TermId> = FxHashSet::default();
        for t in &self.data {
            if Some(t.p) == rdf_type {
                if t.o.is_uri() {
                    classes.insert(t.o);
                }
            } else {
                properties.insert(t.p);
            }
        }
        SchemaClosure::new(&self.schema, classes, properties)
    }

    /// Decode an encoded data triple for display/debugging.
    pub fn decode(&self, t: &TripleId) -> Triple {
        Triple::new(self.dict.decode(t.s), self.dict.decode(t.p), self.dict.decode(t.o))
    }

    /// Switch the graph to the hierarchy-aware (LiteMat-style) URI
    /// numbering: renumber every URI so class/property subhierarchies
    /// occupy contiguous id intervals, remapping the dictionary, the
    /// schema constraints and every data triple in place.
    ///
    /// Every [`TermId`] handed out *before* this call is invalidated, so
    /// it must run before any id escapes the graph — i.e. right after
    /// load/saturation and before the storage layer builds its
    /// permutation indexes. URIs interned *after* this call get plain
    /// append ids past the laid-out blocks; they are correct but take no
    /// part in any interval until a re-encode.
    pub fn apply_hierarchy_encoding(&mut self) -> &HierarchyEncoding {
        let closure = self.schema_closure();
        let (enc, new_of_old) =
            encoding::build(&self.schema, &closure, self.dict.kind_len(TermKind::Uri));
        let map = |id: TermId| {
            if id.is_uri() {
                TermId::new(TermKind::Uri, new_of_old[id.index() as usize])
            } else {
                id
            }
        };
        self.dict.apply_uri_permutation(&new_of_old);
        for list in [
            &mut self.schema.subclass,
            &mut self.schema.subproperty,
            &mut self.schema.domain,
            &mut self.schema.range,
        ] {
            for pair in list.iter_mut() {
                *pair = (map(pair.0), map(pair.1));
            }
        }
        for t in &mut self.data {
            *t = TripleId::new(map(t.s), map(t.p), map(t.o));
        }
        self.data_set = self.data.iter().copied().collect();
        self.rdf_type = self.rdf_type.map(map);
        self.encoding.insert(enc)
    }

    /// The hierarchy encoding, if [`Graph::apply_hierarchy_encoding`]
    /// has run.
    pub fn encoding(&self) -> Option<&HierarchyEncoding> {
        self.encoding.as_ref()
    }

    /// The exact descendant id interval of `class` under the hierarchy
    /// encoding (`None` without the encoding, for unknown classes, and
    /// for multi-parent/cycle cases whose interval is inexact).
    pub fn descendant_range(&self, class: TermId) -> Option<IdRange> {
        self.encoding.as_ref()?.descendant_range(class)
    }

    /// The exact descendant id interval of property `p` (see
    /// [`Graph::descendant_range`]).
    pub fn property_descendant_range(&self, p: TermId) -> Option<IdRange> {
        self.encoding.as_ref()?.property_descendant_range(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(Term::uri(s), Term::uri(p), o)
    }

    /// The paper's Example 1 + Example 2 graph.
    fn paper_graph() -> Graph {
        let mut g = Graph::new();
        g.extend(&[
            t("doi1", vocab::RDF_TYPE, Term::uri("Book")),
            t("doi1", "writtenBy", Term::blank("b1")),
            t("doi1", "hasTitle", Term::literal("Game of Thrones")),
            Triple::new(
                Term::blank("b1"),
                Term::uri("hasName"),
                Term::literal("George R. R. Martin"),
            ),
            t("doi1", "publishedIn", Term::literal("1996")),
            t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("writtenBy", vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
            t("writtenBy", vocab::RDFS_DOMAIN, Term::uri("Book")),
            t("writtenBy", vocab::RDFS_RANGE, Term::uri("Person")),
        ]);
        g
    }

    #[test]
    fn schema_and_data_are_separated() {
        let g = paper_graph();
        assert_eq!(g.len(), 5, "five data triples");
        assert_eq!(g.schema().len(), 4, "four constraints");
    }

    #[test]
    fn duplicate_inserts_are_ignored() {
        let mut g = paper_graph();
        assert!(!g.insert(&t("doi1", "publishedIn", Term::literal("1996"))));
        assert!(!g.insert(&t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication"))));
        assert_eq!(g.len(), 5);
        assert_eq!(g.schema().len(), 4);
    }

    #[test]
    fn closure_includes_data_observed_universe() {
        let g = paper_graph();
        let cl = g.schema_closure();
        let book = g.dict().lookup_uri("Book").unwrap();
        let publication = g.dict().lookup_uri("Publication").unwrap();
        let person = g.dict().lookup_uri("Person").unwrap();
        for c in [book, publication, person] {
            assert!(cl.classes().contains(&c));
        }
        let published_in = g.dict().lookup_uri("publishedIn").unwrap();
        assert!(cl.properties().contains(&published_in), "data-only property in universe");
    }

    #[test]
    fn rdf_type_id_is_stable() {
        let mut g = Graph::new();
        let a = g.rdf_type();
        let b = g.rdf_type();
        assert_eq!(a, b);
        assert_eq!(g.rdf_type_id(), Some(a));
    }

    #[test]
    fn contains_and_decode_round_trip() {
        let g = paper_graph();
        let first = g.data()[0];
        assert!(g.contains_data(&first));
        let decoded = g.decode(&first);
        assert_eq!(decoded.s, Term::uri("doi1"));
    }

    #[test]
    fn removal_batch_and_single() {
        let mut g = paper_graph();
        let first = g.data()[0];
        assert!(g.remove_data_encoded(&first));
        assert!(!g.contains_data(&first));
        assert!(!g.remove_data_encoded(&first), "second removal is a no-op");
        assert_eq!(g.len(), 4);
        let mut all: FxHashSet<TripleId> = g.data().iter().copied().collect();
        all.insert(first); // absent entries are ignored
        assert_eq!(g.remove_data_batch(&all), 4);
        assert!(g.is_empty());
    }

    #[test]
    fn hierarchy_encoding_remaps_graph_consistently() {
        let mut g = paper_graph();
        // Decoded view of the data before the remap.
        let before: Vec<Triple> = g.data().iter().map(|t| g.decode(t)).collect();
        let schema_before = g.schema().len();
        g.apply_hierarchy_encoding();
        // Same triples, same order, new numbers.
        let after: Vec<Triple> = g.data().iter().map(|t| g.decode(t)).collect();
        assert_eq!(before, after, "decoded data survives the remap");
        assert_eq!(g.schema().len(), schema_before);
        assert_eq!(g.rdf_type_id(), g.dict().lookup_uri(vocab::RDF_TYPE));
        assert!(g.contains_data(&g.data()[0]), "data_set rebuilt in new ids");
        // Book ⊑ Publication: Publication gets a width-2 exact interval
        // containing Book.
        let publication = g.dict().lookup_uri("Publication").unwrap();
        let book = g.dict().lookup_uri("Book").unwrap();
        let r = g.descendant_range(publication).expect("tree hierarchy is exact");
        assert_eq!(r.width(), 2);
        assert!(r.contains(book) && r.contains(publication));
        // writtenBy ⊑ hasAuthor on the property side.
        let has_author = g.dict().lookup_uri("hasAuthor").unwrap();
        let written_by = g.dict().lookup_uri("writtenBy").unwrap();
        let pr = g.property_descendant_range(has_author).expect("property interval");
        assert_eq!(pr.width(), 2);
        assert!(pr.contains(written_by));
        // Later interns get plain append ids, outside every interval.
        let late = g.dict_mut().encode_uri("late-comer");
        assert!(!r.contains(late) && !pr.contains(late));
    }

    #[test]
    fn literal_class_objects_are_not_classes() {
        let mut g = Graph::new();
        // A malformed-ish type assertion with a literal object must not
        // enter the class universe.
        g.insert(&t("x", vocab::RDF_TYPE, Term::literal("notAClass")));
        let cl = g.schema_closure();
        assert!(cl.classes().is_empty());
    }
}
