//! RDFS schemas and their closure.
//!
//! A [`Schema`] holds the four constraint kinds of the paper's Figure 2
//! (bottom): subclass, subproperty, domain and range statements. The
//! [`SchemaClosure`] saturates the constraints *among themselves* — the
//! "RDFS constraints are kept in memory" part of the paper's setting —
//! so that both saturation and reformulation can use single-step rule
//! application over closed relations:
//!
//! 1. `C₁ ⊑꜀ C₂ ∧ C₂ ⊑꜀ C₃ ⟹ C₁ ⊑꜀ C₃`  (subclass transitivity)
//! 2. `p₁ ⊑ₚ p₂ ∧ p₂ ⊑ₚ p₃ ⟹ p₁ ⊑ₚ p₃`  (subproperty transitivity)
//! 3. `p ⊑ₚ p′ ∧ dom(p′)=C ⟹ dom(p)=C`  (domain inheritance)
//! 4. `p ⊑ₚ p′ ∧ rng(p′)=C ⟹ rng(p)=C`  (range inheritance)
//! 5. `dom(p)=C ∧ C ⊑꜀ C′ ⟹ dom(p)=C′`  (domain widening)
//! 6. `rng(p)=C ∧ C ⊑꜀ C′ ⟹ rng(p)=C′`  (range widening)

use serde::{Deserialize, Serialize};

use crate::hash::{FxHashMap, FxHashSet};
use crate::triple::TermId;

/// The declared (direct) RDFS constraints of an RDF database.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// `(C, C')` for each declared `C rdfs:subClassOf C'`.
    pub subclass: Vec<(TermId, TermId)>,
    /// `(p, p')` for each declared `p rdfs:subPropertyOf p'`.
    pub subproperty: Vec<(TermId, TermId)>,
    /// `(p, C)` for each declared `p rdfs:domain C`.
    pub domain: Vec<(TermId, TermId)>,
    /// `(p, C)` for each declared `p rdfs:range C`.
    pub range: Vec<(TermId, TermId)>,
}

impl Schema {
    /// An empty schema (no constraints: reformulation degenerates to the
    /// identity and saturation to a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of declared constraints.
    pub fn len(&self) -> usize {
        self.subclass.len() + self.subproperty.len() + self.domain.len() + self.range.len()
    }

    /// True iff the schema declares no constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All classes mentioned by the constraints (subclass endpoints,
    /// domains, ranges).
    pub fn declared_classes(&self) -> FxHashSet<TermId> {
        let mut out = FxHashSet::default();
        for &(a, b) in &self.subclass {
            out.insert(a);
            out.insert(b);
        }
        for &(_, c) in self.domain.iter().chain(&self.range) {
            out.insert(c);
        }
        out
    }

    /// All properties mentioned by the constraints (subproperty
    /// endpoints, domain/range subjects).
    pub fn declared_properties(&self) -> FxHashSet<TermId> {
        let mut out = FxHashSet::default();
        for &(a, b) in &self.subproperty {
            out.insert(a);
            out.insert(b);
        }
        for &(p, _) in self.domain.iter().chain(&self.range) {
            out.insert(p);
        }
        out
    }
}

/// A binary relation over term ids with forward and backward adjacency.
#[derive(Debug, Default, Clone)]
struct Relation {
    fwd: FxHashMap<TermId, Vec<TermId>>,
    bwd: FxHashMap<TermId, Vec<TermId>>,
}

impl Relation {
    fn insert(&mut self, a: TermId, b: TermId) {
        self.fwd.entry(a).or_default().push(b);
        self.bwd.entry(b).or_default().push(a);
    }

    fn forward(&self, a: TermId) -> &[TermId] {
        self.fwd.get(&a).map_or(&[], Vec::as_slice)
    }

    fn backward(&self, b: TermId) -> &[TermId] {
        self.bwd.get(&b).map_or(&[], Vec::as_slice)
    }

    fn contains(&self, a: TermId, b: TermId) -> bool {
        self.forward(a).contains(&b)
    }

    fn from_closed_pairs(pairs: FxHashSet<(TermId, TermId)>) -> Self {
        let mut rel = Relation::default();
        let mut sorted: Vec<_> = pairs.into_iter().collect();
        sorted.sort();
        for (a, b) in sorted {
            rel.insert(a, b);
        }
        rel
    }
}

/// Strict transitive closure of a list of direct edges (the reflexive
/// pairs are *not* added; a node related to itself only appears if it
/// lies on a cycle).
fn transitive_closure(direct: &[(TermId, TermId)]) -> FxHashSet<(TermId, TermId)> {
    let mut succ: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    for &(a, b) in direct {
        succ.entry(a).or_default().push(b);
    }
    let mut closed = FxHashSet::default();
    for &start in succ.keys() {
        // BFS from each source; schemas are small (tens to hundreds of
        // constraints), so quadratic closure is fine.
        let mut stack: Vec<TermId> = succ[&start].clone();
        let mut seen: FxHashSet<TermId> = FxHashSet::default();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            closed.insert((start, n));
            if let Some(next) = succ.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
    }
    closed
}

/// The saturated form of a [`Schema`]: all six constraint-level
/// entailment rules applied to fixpoint, exposed as indexed relations.
#[derive(Debug, Clone)]
pub struct SchemaClosure {
    subclass: Relation,
    subproperty: Relation,
    domain: Relation,
    range: Relation,
    classes: Vec<TermId>,
    properties: Vec<TermId>,
}

impl SchemaClosure {
    /// Saturate `schema`. `extra_classes` / `extra_properties` extend the
    /// universe of known classes/properties with ones only observed in
    /// the data (objects of `rdf:type` triples, data predicates): the
    /// reformulation rules instantiating class/property variables range
    /// over this universe ("instantiating the variable y with classes
    /// from db" — paper Example 4).
    pub fn new(
        schema: &Schema,
        extra_classes: impl IntoIterator<Item = TermId>,
        extra_properties: impl IntoIterator<Item = TermId>,
    ) -> Self {
        let subclass_pairs = transitive_closure(&schema.subclass);
        let subprop_pairs = transitive_closure(&schema.subproperty);

        // dom⁺(p): declared domains of p and of all its (closed) super
        // properties, widened upward through the (closed) subclass order.
        let mut domain_pairs: FxHashSet<(TermId, TermId)> = FxHashSet::default();
        let mut range_pairs: FxHashSet<(TermId, TermId)> = FxHashSet::default();
        let mut super_props: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for &(a, b) in &subprop_pairs {
            super_props.entry(a).or_default().push(b);
        }
        let mut super_classes: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for &(a, b) in &subclass_pairs {
            super_classes.entry(a).or_default().push(b);
        }
        let widen = |pairs: &mut FxHashSet<(TermId, TermId)>,
                     declared: &[(TermId, TermId)],
                     super_props: &FxHashMap<TermId, Vec<TermId>>,
                     super_classes: &FxHashMap<TermId, Vec<TermId>>| {
            // Collect all properties (declared + those inheriting).
            let mut decl_by_prop: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
            for &(p, c) in declared {
                decl_by_prop.entry(p).or_default().push(c);
            }
            let mut all_props: FxHashSet<TermId> = decl_by_prop.keys().copied().collect();
            all_props.extend(super_props.keys().copied());
            for &p in &all_props {
                let mut classes: FxHashSet<TermId> = FxHashSet::default();
                if let Some(own) = decl_by_prop.get(&p) {
                    classes.extend(own.iter().copied());
                }
                if let Some(sups) = super_props.get(&p) {
                    for sp in sups {
                        if let Some(inherited) = decl_by_prop.get(sp) {
                            classes.extend(inherited.iter().copied());
                        }
                    }
                }
                let base: Vec<TermId> = classes.iter().copied().collect();
                for c in base {
                    if let Some(ups) = super_classes.get(&c) {
                        classes.extend(ups.iter().copied());
                    }
                }
                for c in classes {
                    pairs.insert((p, c));
                }
            }
        };
        widen(&mut domain_pairs, &schema.domain, &super_props, &super_classes);
        widen(&mut range_pairs, &schema.range, &super_props, &super_classes);

        let mut classes: FxHashSet<TermId> = schema.declared_classes();
        classes.extend(extra_classes);
        let mut properties: FxHashSet<TermId> = schema.declared_properties();
        properties.extend(extra_properties);

        let mut classes: Vec<TermId> = classes.into_iter().collect();
        classes.sort();
        let mut properties: Vec<TermId> = properties.into_iter().collect();
        properties.sort();

        SchemaClosure {
            subclass: Relation::from_closed_pairs(subclass_pairs),
            subproperty: Relation::from_closed_pairs(subprop_pairs),
            domain: Relation::from_closed_pairs(domain_pairs),
            range: Relation::from_closed_pairs(range_pairs),
            classes,
            properties,
        }
    }

    /// Strict subclasses of `c` in the closure (`C' ⊑꜀⁺ c`, `C' ≠ c`
    /// unless `c` lies on a cycle).
    pub fn sub_classes(&self, c: TermId) -> &[TermId] {
        self.subclass.backward(c)
    }

    /// Strict superclasses of `c` in the closure.
    pub fn super_classes(&self, c: TermId) -> &[TermId] {
        self.subclass.forward(c)
    }

    /// Strict subproperties of `p` in the closure.
    pub fn sub_properties(&self, p: TermId) -> &[TermId] {
        self.subproperty.backward(p)
    }

    /// Strict superproperties of `p` in the closure.
    pub fn super_properties(&self, p: TermId) -> &[TermId] {
        self.subproperty.forward(p)
    }

    /// All classes `C` with `dom⁺(p) ∋ C` (closed domains of `p`).
    pub fn domains(&self, p: TermId) -> &[TermId] {
        self.domain.forward(p)
    }

    /// All classes `C` with `rng⁺(p) ∋ C` (closed ranges of `p`).
    pub fn ranges(&self, p: TermId) -> &[TermId] {
        self.range.forward(p)
    }

    /// All properties whose closed domain contains class `c`.
    pub fn properties_with_domain(&self, c: TermId) -> &[TermId] {
        self.domain.backward(c)
    }

    /// All properties whose closed range contains class `c`.
    pub fn properties_with_range(&self, c: TermId) -> &[TermId] {
        self.range.backward(c)
    }

    /// True iff `sub ⊑꜀⁺ sup` in the closure.
    pub fn is_subclass(&self, sub: TermId, sup: TermId) -> bool {
        self.subclass.contains(sub, sup)
    }

    /// True iff `sub ⊑ₚ⁺ sup` in the closure.
    pub fn is_subproperty(&self, sub: TermId, sup: TermId) -> bool {
        self.subproperty.contains(sub, sup)
    }

    /// The known class universe (declared ∪ observed-in-data).
    pub fn classes(&self) -> &[TermId] {
        &self.classes
    }

    /// The known property universe (declared ∪ observed-in-data).
    pub fn properties(&self) -> &[TermId] {
        &self.properties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermKind;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    /// The running example of the paper (Example 2 / Figure 3):
    /// Book ⊑ Publication; writtenBy ⊑ hasAuthor;
    /// dom(writtenBy)=Book; rng(writtenBy)=Person.
    fn paper_schema() -> (Schema, [TermId; 6]) {
        let [book, publication, person, written_by, has_author, _] =
            [id(0), id(1), id(2), id(3), id(4), id(5)];
        let schema = Schema {
            subclass: vec![(book, publication)],
            subproperty: vec![(written_by, has_author)],
            domain: vec![(written_by, book)],
            range: vec![(written_by, person)],
        };
        (schema, [book, publication, person, written_by, has_author, id(5)])
    }

    #[test]
    fn subclass_transitivity() {
        let (a, b, c) = (id(0), id(1), id(2));
        let schema = Schema { subclass: vec![(a, b), (b, c)], ..Default::default() };
        let cl = SchemaClosure::new(&schema, [], []);
        assert!(cl.is_subclass(a, b));
        assert!(cl.is_subclass(a, c));
        assert!(!cl.is_subclass(c, a));
        assert_eq!(cl.sub_classes(c).len(), 2);
    }

    #[test]
    fn subproperty_transitivity() {
        let (p, q, r) = (id(0), id(1), id(2));
        let schema = Schema { subproperty: vec![(p, q), (q, r)], ..Default::default() };
        let cl = SchemaClosure::new(&schema, [], []);
        assert!(cl.is_subproperty(p, r));
        assert_eq!(cl.super_properties(p), &[q, r] as &[_]);
    }

    #[test]
    fn domain_inherited_through_subproperty() {
        let (schema, [book, publication, _, written_by, has_author, _]) = paper_schema();
        let cl = SchemaClosure::new(&schema, [], []);
        // writtenBy has declared domain Book, widened to Publication.
        assert!(cl.domains(written_by).contains(&book));
        assert!(cl.domains(written_by).contains(&publication));
        // hasAuthor declares no domain and inherits none downward.
        assert!(cl.domains(has_author).is_empty());
        // Backward index: Book's domain-properties include writtenBy.
        assert!(cl.properties_with_domain(book).contains(&written_by));
        assert!(cl.properties_with_domain(publication).contains(&written_by));
    }

    #[test]
    fn subproperty_inherits_superproperty_domain() {
        let (p, sup, c) = (id(0), id(1), id(2));
        let schema =
            Schema { subproperty: vec![(p, sup)], domain: vec![(sup, c)], ..Default::default() };
        let cl = SchemaClosure::new(&schema, [], []);
        assert!(cl.domains(p).contains(&c), "dom inherited from superproperty");
        assert!(cl.domains(sup).contains(&c));
    }

    #[test]
    fn range_widening() {
        let (schema, [_, _, person, written_by, _, _]) = paper_schema();
        let agent = id(7);
        let mut schema = schema;
        schema.subclass.push((person, agent));
        let cl = SchemaClosure::new(&schema, [], []);
        assert!(cl.ranges(written_by).contains(&person));
        assert!(cl.ranges(written_by).contains(&agent));
        assert!(cl.properties_with_range(agent).contains(&written_by));
    }

    #[test]
    fn diamond_hierarchies_close_once() {
        // B ⊑ A, C ⊑ A, D ⊑ B, D ⊑ C: D's ancestors are {B, C, A},
        // each exactly once.
        let (a, b, c, d) = (id(0), id(1), id(2), id(3));
        let schema =
            Schema { subclass: vec![(b, a), (c, a), (d, b), (d, c)], ..Default::default() };
        let cl = SchemaClosure::new(&schema, [], []);
        let mut sups: Vec<TermId> = cl.super_classes(d).to_vec();
        sups.sort();
        sups.dedup();
        assert_eq!(sups.len(), cl.super_classes(d).len(), "no duplicate edges");
        assert_eq!(sups, vec![a, b, c]);
        assert_eq!(cl.sub_classes(a).len(), 3);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let (a, b) = (id(0), id(1));
        let schema = Schema { subclass: vec![(a, b), (b, a)], ..Default::default() };
        let cl = SchemaClosure::new(&schema, [], []);
        assert!(cl.is_subclass(a, b));
        assert!(cl.is_subclass(b, a));
        assert!(cl.is_subclass(a, a), "cycle makes a ⊑⁺ a");
    }

    #[test]
    fn universe_includes_extras() {
        let (schema, [book, publication, person, written_by, has_author, extra]) = paper_schema();
        let cl = SchemaClosure::new(&schema, [extra], [extra]);
        for c in [book, publication, person, extra] {
            assert!(cl.classes().contains(&c), "{c:?} in class universe");
        }
        for p in [written_by, has_author, extra] {
            assert!(cl.properties().contains(&p), "{p:?} in property universe");
        }
    }

    #[test]
    fn empty_schema_closure_is_empty() {
        let cl = SchemaClosure::new(&Schema::new(), [], []);
        assert!(cl.classes().is_empty());
        assert!(cl.sub_classes(id(0)).is_empty());
        assert!(cl.domains(id(0)).is_empty());
    }

    #[test]
    fn schema_len_and_declared_sets() {
        let (schema, [book, publication, person, written_by, has_author, _]) = paper_schema();
        assert_eq!(schema.len(), 4);
        assert!(!schema.is_empty());
        let classes = schema.declared_classes();
        assert_eq!(classes.len(), 3);
        assert!(
            classes.contains(&book) && classes.contains(&publication) && classes.contains(&person)
        );
        let props = schema.declared_properties();
        assert_eq!(props.len(), 2);
        assert!(props.contains(&written_by) && props.contains(&has_author));
    }
}
