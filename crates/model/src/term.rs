//! RDF terms: URIs, literals and blank nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The three syntactic categories of RDF values (Section 2.1 of the
/// paper: "uniform resource identifiers (URIs), typed or un-typed
/// literals (constants) and blank nodes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TermKind {
    /// A resource identifier, e.g. `http://example.org/Book`.
    Uri,
    /// A constant, e.g. `"Game of Thrones"` or `"1996"`.
    Literal,
    /// An unknown URI/literal token, e.g. `_:b1`. Blank nodes behave
    /// like the variables of incomplete relational V-tables.
    Blank,
}

/// An RDF term (value). Owned, human-readable representation; the engine
/// works on dictionary-encoded [`crate::TermId`]s instead.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A URI reference.
    Uri(String),
    /// A literal constant (the lexical form; we do not distinguish
    /// datatypes, which play no role in the DB fragment).
    Literal(String),
    /// A blank node with a graph-local label.
    Blank(String),
}

impl Term {
    /// Convenience constructor for URIs.
    pub fn uri(s: impl Into<String>) -> Self {
        Term::Uri(s.into())
    }

    /// Convenience constructor for literals.
    pub fn literal(s: impl Into<String>) -> Self {
        Term::Literal(s.into())
    }

    /// Convenience constructor for blank nodes.
    pub fn blank(s: impl Into<String>) -> Self {
        Term::Blank(s.into())
    }

    /// The syntactic category of this term.
    pub fn kind(&self) -> TermKind {
        match self {
            Term::Uri(_) => TermKind::Uri,
            Term::Literal(_) => TermKind::Literal,
            Term::Blank(_) => TermKind::Blank,
        }
    }

    /// The lexical form, without any kind decoration.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Uri(s) | Term::Literal(s) | Term::Blank(s) => s,
        }
    }

    /// True iff the term is a URI.
    pub fn is_uri(&self) -> bool {
        matches!(self, Term::Uri(_))
    }

    /// True iff the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True iff the term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }
}

impl fmt::Display for Term {
    /// Turtle-ish rendering: URIs in angle brackets, literals quoted,
    /// blank nodes with the `_: `prefix.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Uri(s) => write!(f, "<{s}>"),
            Term::Literal(s) => write!(f, "{s:?}"),
            Term::Blank(s) => write!(f, "_:{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(Term::uri("u").kind(), TermKind::Uri);
        assert_eq!(Term::literal("l").kind(), TermKind::Literal);
        assert_eq!(Term::blank("b").kind(), TermKind::Blank);
    }

    #[test]
    fn predicates() {
        assert!(Term::uri("u").is_uri());
        assert!(Term::literal("l").is_literal());
        assert!(Term::blank("b").is_blank());
        assert!(!Term::uri("u").is_literal());
    }

    #[test]
    fn lexical_strips_kind() {
        assert_eq!(Term::uri("http://x/y").lexical(), "http://x/y");
        assert_eq!(Term::blank("b1").lexical(), "b1");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::uri("http://x").to_string(), "<http://x>");
        assert_eq!(Term::literal("1996").to_string(), "\"1996\"");
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
    }

    #[test]
    fn same_lexical_different_kind_are_distinct() {
        assert_ne!(Term::uri("x"), Term::literal("x"));
        assert_ne!(Term::literal("x"), Term::blank("x"));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Term::blank("b"), Term::uri("a"), Term::literal("c")];
        v.sort();
        // Uri < Literal < Blank by enum declaration order.
        assert!(v[0].is_uri() && v[1].is_literal() && v[2].is_blank());
    }
}
