//! A small FxHash-style hasher for hot integer and string keys.
//!
//! The default `std` hasher (SipHash 1-3) is collision-resistant but slow
//! for the short integer keys that dominate this workspace (term ids,
//! triple components). We implement the well-known Fx multiply-rotate mix
//! in-crate instead of pulling an extra dependency; HashDoS is not a
//! concern for an in-process analytical engine over trusted data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher (Fx algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = 0u64;
            for (i, b) in rest.iter().enumerate() {
                word |= u64::from(*b) << (8 * i);
            }
            // Mix in the length so "a" and "a\0" differ.
            self.add_to_hash(word ^ (rest.len() as u64).rotate_left(32));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let h1 = hash_one(&1u64);
        let h2 = hash_one(&2u64);
        assert_ne!(h1, h2);
    }

    #[test]
    fn distinguishes_prefix_strings() {
        assert_ne!(hash_one(&"abc"), hash_one(&"abcd"));
        assert_ne!(hash_one(&"abcdefgh"), hash_one(&"abcdefghi"));
    }

    #[test]
    fn empty_input_hashes() {
        // Must not panic; state is just the initial value.
        let mut h = FxHasher::default();
        h.write(&[]);
        let _ = h.finish();
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }

    #[test]
    fn spread_over_buckets() {
        // Sequential keys should not all collide in low bits.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0u64..64 {
            low_bits.insert(hash_one(&i) >> 57);
        }
        assert!(low_bits.len() > 16, "hash distributes across high bits");
    }
}
