//! The value dictionary: bidirectional `Term` ↔ [`TermId`] encoding.
//!
//! Mirrors the paper's experimental setup: "the `Triples(s,p,o)` table's
//! data are dictionary-encoded, using a unique integer for each distinct
//! value (URIs and literals). The dictionary is stored as a separate
//! table, indexed both by the code and by the encoded value."

use crate::hash::FxHashMap;
use crate::term::{Term, TermKind};
use crate::triple::TermId;

/// Interns terms and hands out dense per-kind [`TermId`]s.
///
/// Encoding is append-only; ids are stable for the lifetime of the
/// dictionary. Lookup by value uses a hash index; lookup by id is a
/// direct vector access (the "indexed both by the code and by the
/// encoded value" of the paper).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_value: FxHashMap<Term, TermId>,
    uris: Vec<String>,
    literals: Vec<String>,
    blanks: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// A dictionary pre-sized for roughly `terms` distinct terms (the
    /// bulk-load path: one hash-table resize instead of log₂ n of them).
    pub fn with_capacity(terms: usize) -> Self {
        let mut d = Dictionary::default();
        d.reserve(terms);
        d
    }

    /// Reserve room for `additional` further distinct terms. The value
    /// index reserves in full; the per-kind lexeme stores split the hint
    /// evenly, which is close enough for amortization.
    pub fn reserve(&mut self, additional: usize) {
        self.by_value.reserve(additional);
        let per_kind = additional / 3 + 1;
        self.uris.reserve(per_kind);
        self.literals.reserve(per_kind);
        self.blanks.reserve(per_kind);
    }

    /// Intern `term`, returning its (possibly pre-existing) id.
    ///
    /// Single hash lookup per call: the entry API probes once and fills
    /// the vacancy in place on a miss (the old `get`-then-`insert` pair
    /// hashed every missed term twice — measurable on bulk loads).
    pub fn encode(&mut self, term: &Term) -> TermId {
        use std::collections::hash_map::Entry;
        match self.by_value.entry(term.clone()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let store = match term.kind() {
                    TermKind::Uri => &mut self.uris,
                    TermKind::Literal => &mut self.literals,
                    TermKind::Blank => &mut self.blanks,
                };
                let id = TermId::new(term.kind(), store.len() as u32);
                store.push(term.lexical().to_owned());
                *e.insert(id)
            }
        }
    }

    /// Shorthand: intern a URI by its string form.
    pub fn encode_uri(&mut self, uri: &str) -> TermId {
        self.encode(&Term::uri(uri))
    }

    /// Shorthand: intern a literal by its lexical form.
    pub fn encode_literal(&mut self, lex: &str) -> TermId {
        self.encode(&Term::literal(lex))
    }

    /// Shorthand: intern a blank node by its label.
    pub fn encode_blank(&mut self, label: &str) -> TermId {
        self.encode(&Term::blank(label))
    }

    /// Look up an already-interned term without interning it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.by_value.get(term).copied()
    }

    /// Look up an already-interned URI by its string form.
    pub fn lookup_uri(&self, uri: &str) -> Option<TermId> {
        // Avoid the owned-Term allocation on the happy path is not
        // possible with a HashMap<Term, _> key; this is a cold path
        // (query translation), so the allocation is acceptable.
        self.by_value.get(&Term::Uri(uri.to_owned())).copied()
    }

    /// Decode an id back to its term.
    ///
    /// # Panics
    /// Panics if the id was not produced by this dictionary.
    pub fn decode(&self, id: TermId) -> Term {
        let idx = id.index() as usize;
        match id.kind() {
            TermKind::Uri => Term::Uri(self.uris[idx].clone()),
            TermKind::Literal => Term::Literal(self.literals[idx].clone()),
            TermKind::Blank => Term::Blank(self.blanks[idx].clone()),
        }
    }

    /// Decode an id to its lexical form without cloning the kind wrapper.
    ///
    /// # Panics
    /// Panics if the id was not produced by this dictionary.
    pub fn lexical(&self, id: TermId) -> &str {
        let idx = id.index() as usize;
        match id.kind() {
            TermKind::Uri => &self.uris[idx],
            TermKind::Literal => &self.literals[idx],
            TermKind::Blank => &self.blanks[idx],
        }
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.uris.len() + self.literals.len() + self.blanks.len()
    }

    /// Number of interned terms of one kind (ids of that kind are the
    /// dense range `0..kind_len`).
    pub fn kind_len(&self, kind: TermKind) -> usize {
        match kind {
            TermKind::Uri => self.uris.len(),
            TermKind::Literal => self.literals.len(),
            TermKind::Blank => self.blanks.len(),
        }
    }

    /// True iff `id` was produced by this dictionary.
    pub fn contains_id(&self, id: TermId) -> bool {
        (id.index() as usize) < self.kind_len(id.kind())
    }

    /// True iff no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renumber the URI ids in place: `new_of_old[i]` is the new index
    /// of the URI currently at index `i`. Literal and blank ids are
    /// untouched. This is the remap step of the hierarchy-aware
    /// encoding — every id handed out *before* this call is invalidated,
    /// so callers run it once, before any id escapes.
    ///
    /// # Panics
    /// Panics if `new_of_old` is not a permutation of `0..uri_count`.
    pub fn apply_uri_permutation(&mut self, new_of_old: &[u32]) {
        assert_eq!(new_of_old.len(), self.uris.len(), "permutation must cover every URI");
        let mut new_uris: Vec<Option<String>> = vec![None; self.uris.len()];
        for (old, s) in std::mem::take(&mut self.uris).into_iter().enumerate() {
            let slot = &mut new_uris[new_of_old[old] as usize];
            assert!(slot.is_none(), "duplicate target index {}", new_of_old[old]);
            *slot = Some(s);
        }
        self.uris = new_uris.into_iter().map(|s| s.expect("bijection")).collect();
        for (term, id) in self.by_value.iter_mut() {
            if term.kind() == TermKind::Uri {
                *id = TermId::new(TermKind::Uri, new_of_old[id.index() as usize]);
            }
        }
    }

    /// Mint a fresh blank node that is guaranteed not to collide with
    /// any parsed label (used by saturation for existential values).
    pub fn fresh_blank(&mut self) -> TermId {
        let mut n = self.blanks.len();
        loop {
            let label = format!("jucq-fresh-{n}");
            let term = Term::Blank(label);
            if self.by_value.contains_key(&term) {
                n += 1;
                continue;
            }
            return self.encode(&term);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode_uri("http://x/a");
        let b = d.encode_uri("http://x/a");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn kinds_do_not_collide() {
        let mut d = Dictionary::new();
        let u = d.encode_uri("x");
        let l = d.encode_literal("x");
        let b = d.encode_blank("x");
        assert_ne!(u, l);
        assert_ne!(l, b);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn decode_round_trip() {
        let mut d = Dictionary::new();
        for t in [Term::uri("u1"), Term::literal("l1"), Term::blank("b1")] {
            let id = d.encode(&t);
            assert_eq!(d.decode(id), t);
            assert_eq!(d.lexical(id), t.lexical());
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.lookup(&Term::uri("nope")), None);
        assert_eq!(d.lookup_uri("nope"), None);
        assert!(d.is_empty());
        let id = d.encode_uri("yes");
        assert_eq!(d.lookup_uri("yes"), Some(id));
    }

    #[test]
    fn ids_are_dense_per_kind() {
        let mut d = Dictionary::new();
        let a = d.encode_uri("a");
        let b = d.encode_uri("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        let l = d.encode_literal("a");
        assert_eq!(l.index(), 0);
    }

    #[test]
    fn kind_len_and_contains_id() {
        let mut d = Dictionary::new();
        let u = d.encode_uri("u");
        d.encode_literal("l");
        assert_eq!(d.kind_len(TermKind::Uri), 1);
        assert_eq!(d.kind_len(TermKind::Literal), 1);
        assert_eq!(d.kind_len(TermKind::Blank), 0);
        assert!(d.contains_id(u));
        assert!(!d.contains_id(TermId::new(TermKind::Uri, 1)));
        assert!(!d.contains_id(TermId::new(TermKind::Blank, 0)));
    }

    #[test]
    fn with_capacity_and_reserve_do_not_change_semantics() {
        let mut d = Dictionary::with_capacity(100);
        assert!(d.is_empty());
        let a = d.encode_uri("a");
        d.reserve(1000);
        assert_eq!(d.lookup_uri("a"), Some(a));
        assert_eq!(d.encode_uri("a"), a, "reserve keeps interned ids");
    }

    #[test]
    fn uri_permutation_renumbers_only_uris() {
        let mut d = Dictionary::new();
        let a = d.encode_uri("a");
        let b = d.encode_uri("b");
        let c = d.encode_uri("c");
        let l = d.encode_literal("lit");
        // Rotate: a→2, b→0, c→1.
        d.apply_uri_permutation(&[2, 0, 1]);
        assert_eq!(d.lookup_uri("a"), Some(TermId::new(TermKind::Uri, 2)));
        assert_eq!(d.lookup_uri("b"), Some(TermId::new(TermKind::Uri, 0)));
        assert_eq!(d.lookup_uri("c"), Some(TermId::new(TermKind::Uri, 1)));
        assert_eq!(d.lookup(&Term::literal("lit")), Some(l), "literal ids survive");
        // Decode follows the new numbering.
        assert_eq!(d.decode(TermId::new(TermKind::Uri, 2)), Term::uri("a"));
        assert_eq!(d.lexical(TermId::new(TermKind::Uri, 0)), "b");
        let _ = (a, b, c);
    }

    #[test]
    #[should_panic(expected = "permutation must cover every URI")]
    fn uri_permutation_rejects_wrong_length() {
        let mut d = Dictionary::new();
        d.encode_uri("a");
        d.encode_uri("b");
        d.apply_uri_permutation(&[0]);
    }

    #[test]
    fn fresh_blank_avoids_collisions() {
        let mut d = Dictionary::new();
        d.encode_blank("jucq-fresh-0");
        let f = d.fresh_blank();
        assert!(f.is_blank());
        assert_ne!(d.lexical(f), "jucq-fresh-0");
    }
}
