//! Dictionary-encoded term ids and triples.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::term::TermKind;

/// A compact, kind-tagged identifier for a dictionary-encoded [`crate::Term`].
///
/// The two high bits carry the [`TermKind`] so kind checks never touch
/// the dictionary; the low 30 bits are a per-kind sequence number. This
/// allows ~1 billion distinct values per kind, far beyond the scales the
/// paper's experiments (≤ 100M triples) require, in half the footprint
/// of a `u64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(u32);

const KIND_SHIFT: u32 = 30;
const INDEX_MASK: u32 = (1 << KIND_SHIFT) - 1;
const KIND_URI: u32 = 0;
const KIND_LITERAL: u32 = 1;
const KIND_BLANK: u32 = 2;

impl TermId {
    /// Build an id from a kind and a per-kind index.
    ///
    /// # Panics
    /// Panics if `index` exceeds the 30-bit per-kind capacity.
    pub fn new(kind: TermKind, index: u32) -> Self {
        assert!(index <= INDEX_MASK, "dictionary overflow for kind {kind:?}");
        let tag = match kind {
            TermKind::Uri => KIND_URI,
            TermKind::Literal => KIND_LITERAL,
            TermKind::Blank => KIND_BLANK,
        };
        TermId((tag << KIND_SHIFT) | index)
    }

    /// The syntactic category encoded in the tag bits.
    pub fn kind(self) -> TermKind {
        match self.0 >> KIND_SHIFT {
            KIND_URI => TermKind::Uri,
            KIND_LITERAL => TermKind::Literal,
            KIND_BLANK => TermKind::Blank,
            other => unreachable!("invalid term id tag {other}"),
        }
    }

    /// The per-kind sequence number.
    pub fn index(self) -> u32 {
        self.0 & INDEX_MASK
    }

    /// The raw tagged representation (stable ordering key).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild from a raw tagged representation.
    ///
    /// # Panics
    /// Panics if the tag bits are not a valid kind.
    pub fn from_raw(raw: u32) -> Self {
        assert!(raw >> KIND_SHIFT <= KIND_BLANK, "invalid term id tag");
        TermId(raw)
    }

    /// True iff the id denotes a URI.
    pub fn is_uri(self) -> bool {
        self.0 >> KIND_SHIFT == KIND_URI
    }

    /// True iff the id denotes a literal.
    pub fn is_literal(self) -> bool {
        self.0 >> KIND_SHIFT == KIND_LITERAL
    }

    /// True iff the id denotes a blank node.
    pub fn is_blank(self) -> bool {
        self.0 >> KIND_SHIFT == KIND_BLANK
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind() {
            TermKind::Uri => "u",
            TermKind::Literal => "l",
            TermKind::Blank => "b",
        };
        write!(f, "#{k}{}", self.index())
    }
}

/// A dictionary-encoded triple `(s, p, o)` — one row of the
/// `Triples(s,p,o)` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TripleId {
    /// Subject.
    pub s: TermId,
    /// Property (predicate).
    pub p: TermId,
    /// Object.
    pub o: TermId,
}

impl TripleId {
    /// Build a triple from its three components.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        TripleId { s, p, o }
    }

    /// Components in `(s, p, o)` order.
    pub fn as_array(self) -> [TermId; 3] {
        [self.s, self.p, self.o]
    }
}

/// A decoded triple of owned [`crate::Term`]s; the human-readable twin of
/// [`TripleId`], used at the parsing/printing edges.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject.
    pub s: crate::Term,
    /// Property (predicate).
    pub p: crate::Term,
    /// Object.
    pub o: crate::Term,
}

impl Triple {
    /// Build a triple from its three components.
    pub fn new(s: crate::Term, p: crate::Term, o: crate::Term) -> Self {
        Triple { s, p, o }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn id_round_trips_kind_and_index() {
        for kind in [TermKind::Uri, TermKind::Literal, TermKind::Blank] {
            for idx in [0u32, 1, 17, INDEX_MASK] {
                let id = TermId::new(kind, idx);
                assert_eq!(id.kind(), kind);
                assert_eq!(id.index(), idx);
                assert_eq!(TermId::from_raw(id.raw()), id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dictionary overflow")]
    fn id_overflow_panics() {
        let _ = TermId::new(TermKind::Uri, INDEX_MASK + 1);
    }

    #[test]
    fn kind_predicates() {
        assert!(TermId::new(TermKind::Uri, 0).is_uri());
        assert!(TermId::new(TermKind::Literal, 0).is_literal());
        assert!(TermId::new(TermKind::Blank, 0).is_blank());
    }

    #[test]
    fn ids_of_different_kinds_differ() {
        assert_ne!(TermId::new(TermKind::Uri, 5), TermId::new(TermKind::Literal, 5));
    }

    #[test]
    fn triple_array_order() {
        let s = TermId::new(TermKind::Uri, 1);
        let p = TermId::new(TermKind::Uri, 2);
        let o = TermId::new(TermKind::Literal, 3);
        assert_eq!(TripleId::new(s, p, o).as_array(), [s, p, o]);
    }

    #[test]
    fn decoded_triple_display() {
        let t = Triple::new(Term::uri("s"), Term::uri("p"), Term::literal("o"));
        assert_eq!(t.to_string(), "<s> <p> \"o\" .");
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", TermId::new(TermKind::Uri, 3)), "#u3");
        assert_eq!(format!("{:?}", TermId::new(TermKind::Blank, 9)), "#b9");
    }
}
