//! Materialized cover-fragment views: the cross-query answer cache.
//!
//! The cover-based strategies (ECov/GCov/fixed covers) join the results
//! of a few fragment UCQs. A serving workload repeats the same hot
//! fragments across thousands of queries, and the store already
//! materializes each fragment's union transiently during execution —
//! the [`ViewCatalog`] makes that materialization durable and shared:
//!
//! * a fragment's reformulated UCQ is keyed by a canonical
//!   [`ViewSignature`] (variable numbering and member order are
//!   normalized, so isomorphic fragments share one entry);
//! * entries live under a configurable **tuple budget** and are stamped
//!   with the **epoch** they were computed at. Execution resolves a
//!   [`ViewScan`](crate::plan::PlanNode::ViewScan) through the catalog
//!   with the *request's* epoch and falls back to the embedded union
//!   subtree on any mismatch — a stale row can never be served, no
//!   matter how plans, snapshots and invalidations interleave;
//! * each entry carries a [`ViewFootprint`] — the predicates and
//!   classes its reformulated members read. An incremental update
//!   computes the delta's [`DeltaFootprint`] and
//!   [`ViewCatalog::advance_epoch`] drops exactly the intersecting
//!   entries, restamping the untouched rest (their extents provably did
//!   not change).

use std::sync::{Arc, Mutex, MutexGuard};

use jucq_model::{FxHashMap, FxHashSet, TermId, TripleId};

use crate::ir::{PatternTerm, StoreUcq, VarId};
use crate::relation::Relation;

/// A canonical fragment identity: a 128-bit hash of the reformulated
/// fragment UCQ with variables renumbered (head variables first, in
/// head order; existential variables per member by first occurrence)
/// and member encodings sorted, so the same logical fragment hashes
/// identically regardless of source variable ids or member order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewSignature {
    hi: u64,
    lo: u64,
}

impl std::fmt::Display for ViewSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const SPLITMIX_SEED: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, token: u64) -> u64 {
    for byte in token.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer — the second lane's mixing function. Its
/// structure (shift-xor-multiply) shares nothing with FNV-1a's
/// byte-wise xor-multiply, so the two lanes evolve as independent
/// 64-bit streams and the combined signature keeps its intended
/// ~128-bit collision bound (a signature collision would silently
/// serve another fragment's rows).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Encode one term against a variable-renumbering map, assigning the
/// next fresh number to unseen variables.
fn encode_term(t: &PatternTerm, map: &mut FxHashMap<VarId, u64>, next: &mut u64) -> [u64; 2] {
    match t {
        PatternTerm::Const(id) => [1, id.raw() as u64],
        PatternTerm::Var(v) => {
            let n = *map.entry(*v).or_insert_with(|| {
                let n = *next;
                *next += 1;
                n
            });
            [0, n]
        }
    }
}

/// Canonical token stream of one UCQ: head arity, then the sorted
/// member encodings. `with_head` numbers head variables first (the full
/// signature); without, each member numbers its variables independently
/// by first occurrence (the head-agnostic *body* signature the cost
/// model matches on).
fn canonical_tokens(ucq: &StoreUcq, with_head: bool) -> Vec<u64> {
    let mut members: Vec<Vec<u64>> = ucq
        .cqs
        .iter()
        .map(|cq| {
            let mut map: FxHashMap<VarId, u64> = FxHashMap::default();
            let mut next = 0u64;
            if with_head {
                for &v in &ucq.head {
                    let n = next;
                    map.entry(v).or_insert(n);
                    next += 1;
                }
                next = ucq.head.len() as u64;
            }
            let mut tokens = Vec::with_capacity(cq.patterns.len() * 6);
            for p in &cq.patterns {
                for term in [&p.s, &p.p, &p.o] {
                    tokens.extend(encode_term(term, &mut map, &mut next));
                }
            }
            tokens
        })
        .collect();
    members.sort_unstable();
    let mut out = Vec::with_capacity(2 + members.iter().map(Vec::len).sum::<usize>());
    out.push(if with_head { ucq.head.len() as u64 } else { u64::MAX });
    out.push(members.len() as u64);
    for m in members {
        out.push(0xF1A6); // member separator
        out.extend(m);
    }
    out
}

impl ViewSignature {
    /// The full (head-aware) signature of a reformulated fragment UCQ —
    /// the catalog key the planner matches [`ViewScan`]s against.
    ///
    /// [`ViewScan`]: crate::plan::PlanNode::ViewScan
    pub fn of(ucq: &StoreUcq) -> ViewSignature {
        Self::hash_tokens(&canonical_tokens(ucq, true))
    }

    /// The head-agnostic *body* signature: the approximate key the cost
    /// model uses to price a fragment as view-backed during cover
    /// search, where candidate fragment heads are not yet final.
    pub fn body_of(ucq: &StoreUcq) -> ViewSignature {
        Self::hash_tokens(&canonical_tokens(ucq, false))
    }

    fn hash_tokens(tokens: &[u64]) -> ViewSignature {
        let mut hi = FNV_OFFSET_A;
        let mut lo = SPLITMIX_SEED;
        for &t in tokens {
            hi = fnv(hi, t);
            lo = splitmix(lo ^ t);
        }
        ViewSignature { hi, lo }
    }
}

/// The data a materialized fragment *reads*: the predicates of its
/// non-`rdf:type` atoms and the classes of its constant-class type
/// atoms, over every reformulated member (reformulation enumerates all
/// sub-properties and sub-classes, so the footprint is closed downward).
/// Variable predicates or classes widen to wildcards.
#[derive(Debug, Clone, Default)]
pub struct ViewFootprint {
    /// Constant predicates read by non-type atoms.
    pub preds: FxHashSet<TermId>,
    /// Constant classes read by `rdf:type` atoms.
    pub classes: FxHashSet<TermId>,
    /// Some atom has a variable predicate: any triple can match.
    pub any_pred: bool,
    /// Some `rdf:type` atom has a variable class: any type triple
    /// can match.
    pub any_class: bool,
}

impl ViewFootprint {
    /// The footprint of a reformulated fragment UCQ. `rdf_type` is the
    /// dictionary id of `rdf:type` (the store itself is
    /// vocabulary-agnostic).
    pub fn of(ucq: &StoreUcq, rdf_type: TermId) -> ViewFootprint {
        let mut fp = ViewFootprint::default();
        for cq in &ucq.cqs {
            for p in &cq.patterns {
                match p.p {
                    PatternTerm::Const(pred) if pred == rdf_type => match p.o {
                        PatternTerm::Const(class) => {
                            fp.classes.insert(class);
                        }
                        PatternTerm::Var(_) => fp.any_class = true,
                    },
                    PatternTerm::Const(pred) => {
                        fp.preds.insert(pred);
                    }
                    PatternTerm::Var(_) => {
                        fp.any_pred = true;
                        fp.any_class = true;
                    }
                }
            }
        }
        fp
    }

    /// True iff a delta with this footprint can change the view's
    /// extent — the invalidation test of
    /// [`ViewCatalog::advance_epoch`].
    pub fn intersects(&self, delta: &DeltaFootprint) -> bool {
        if self.any_pred && !(delta.preds.is_empty() && delta.classes.is_empty()) {
            return true;
        }
        if self.any_class && !delta.classes.is_empty() {
            return true;
        }
        delta.preds.iter().any(|p| self.preds.contains(p))
            || delta.classes.iter().any(|c| self.classes.contains(c))
    }
}

/// What one update batch *writes*: the predicates of its non-type
/// triples and the classes of its type triples.
#[derive(Debug, Clone, Default)]
pub struct DeltaFootprint {
    /// Predicates of inserted/deleted non-type triples.
    pub preds: FxHashSet<TermId>,
    /// Classes of inserted/deleted `rdf:type` triples.
    pub classes: FxHashSet<TermId>,
}

impl DeltaFootprint {
    /// The footprint of a batch of (encoded) inserted and deleted
    /// triples.
    pub fn from_triples<'a>(
        triples: impl IntoIterator<Item = &'a TripleId>,
        rdf_type: TermId,
    ) -> DeltaFootprint {
        let mut fp = DeltaFootprint::default();
        for t in triples {
            if t.p == rdf_type {
                fp.classes.insert(t.o);
            } else {
                fp.preds.insert(t.p);
            }
        }
        fp
    }

    /// True iff the batch touched nothing.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty() && self.classes.is_empty()
    }
}

struct ViewEntry {
    rows: Arc<Relation>,
    footprint: ViewFootprint,
    body: ViewSignature,
    epoch: u64,
    tuples: usize,
}

#[derive(Default)]
struct Inner {
    entries: FxHashMap<ViewSignature, ViewEntry>,
    /// Secondary index: body signature → full signatures of resident
    /// entries with that body (several heads can share one body), so
    /// [`ViewCatalog::body_tuples`] — called once per candidate
    /// fragment during cover search — is O(1) instead of a linear scan
    /// of the catalog under the mutex.
    bodies: FxHashMap<ViewSignature, Vec<ViewSignature>>,
    total_tuples: usize,
    epoch: u64,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl Inner {
    fn index_body(&mut self, body: ViewSignature, sig: ViewSignature) {
        let sigs = self.bodies.entry(body).or_default();
        if !sigs.contains(&sig) {
            sigs.push(sig);
        }
    }

    fn unindex_body(&mut self, body: &ViewSignature, sig: &ViewSignature) {
        if let Some(sigs) = self.bodies.get_mut(body) {
            sigs.retain(|s| s != sig);
            if sigs.is_empty() {
                self.bodies.remove(body);
            }
        }
    }
}

/// Aggregate catalog statistics (for `/metrics`, the query log and the
/// bench's exact-invalidation check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewCatalogStats {
    /// Materialized entries currently resident.
    pub entries: usize,
    /// Tuples held across all entries.
    pub total_tuples: usize,
    /// The configured tuple budget.
    pub budget_tuples: usize,
    /// The catalog's current epoch.
    pub epoch: u64,
    /// Epoch-exact resolution successes since creation.
    pub hits: u64,
    /// Resolution attempts that missed (absent or wrong epoch).
    pub misses: u64,
    /// Entries dropped by footprint invalidation since creation.
    pub invalidated: u64,
}

/// The materialized-view catalog: fragment results keyed by canonical
/// signature, stamped with the epoch they were computed at, bounded by
/// a tuple budget. Interior-mutable (`Mutex`) so one catalog is shared
/// by concurrent readers and the single writer; every operation is a
/// short critical section over the map (row payloads are `Arc`-shared,
/// never copied under the lock).
pub struct ViewCatalog {
    budget_tuples: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ViewCatalog {
    /// Summarized (entry payloads can be millions of rows; dumping them
    /// into a debug log would be worse than useless).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ViewCatalog")
            .field("entries", &s.entries)
            .field("total_tuples", &s.total_tuples)
            .field("budget_tuples", &s.budget_tuples)
            .field("epoch", &s.epoch)
            .finish_non_exhaustive()
    }
}

impl ViewCatalog {
    /// An empty catalog holding at most `budget_tuples` tuples.
    pub fn new(budget_tuples: usize) -> ViewCatalog {
        ViewCatalog { budget_tuples, inner: Mutex::new(Inner::default()) }
    }

    /// The configured tuple budget.
    pub fn budget_tuples(&self) -> usize {
        self.budget_tuples
    }

    /// The catalog's current epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Force the epoch (the serving layer aligns the catalog with its
    /// own published epoch counter). Entries keep their stamps: an
    /// entry stamped with a different epoch simply stops resolving
    /// until re-materialized.
    pub fn set_epoch(&self, epoch: u64) {
        self.lock().epoch = epoch;
    }

    /// Insert (or refresh) a materialized fragment, stamped with the
    /// catalog's current epoch. Returns `false` without inserting when
    /// the rows would exceed the tuple budget (replacing an existing
    /// entry only charges the difference).
    pub fn insert(
        &self,
        sig: ViewSignature,
        body: ViewSignature,
        rows: Relation,
        footprint: ViewFootprint,
    ) -> bool {
        let tuples = rows.len();
        let mut inner = self.lock();
        let replaced = inner.entries.get(&sig).map(|e| e.tuples).unwrap_or(0);
        if inner.total_tuples - replaced + tuples > self.budget_tuples {
            return false;
        }
        let epoch = inner.epoch;
        inner.total_tuples = inner.total_tuples - replaced + tuples;
        if let Some(old) = inner
            .entries
            .insert(sig, ViewEntry { rows: Arc::new(rows), footprint, body, epoch, tuples })
        {
            if old.body != body {
                inner.unindex_body(&old.body, &sig);
            }
        }
        inner.index_body(body, sig);
        true
    }

    /// The tuple count of a current-epoch entry, if present — the
    /// planner's matching probe (execution re-checks the epoch).
    pub fn contains_current(&self, sig: &ViewSignature) -> Option<usize> {
        let inner = self.lock();
        inner.entries.get(sig).filter(|e| e.epoch == inner.epoch).map(|e| e.tuples)
    }

    /// The tuple count of a current-epoch entry by *body* signature —
    /// the cost model's approximate probe (a false positive only skews
    /// an estimate, never an answer).
    pub fn body_tuples(&self, body: &ViewSignature) -> Option<usize> {
        let inner = self.lock();
        inner.bodies.get(body)?.iter().find_map(|sig| {
            inner.entries.get(sig).filter(|e| e.epoch == inner.epoch).map(|e| e.tuples)
        })
    }

    /// Resolve a view for a request pinned to `epoch`: the rows are
    /// returned only when the entry's stamp matches exactly. Any
    /// mismatch — entry absent, computed at another epoch — is a miss
    /// and the caller evaluates the fallback union.
    pub fn resolve(&self, sig: &ViewSignature, epoch: u64) -> Option<Arc<Relation>> {
        let mut inner = self.lock();
        match inner.entries.get(sig) {
            Some(e) if e.epoch == epoch => {
                let rows = Arc::clone(&e.rows);
                inner.hits += 1;
                Some(rows)
            }
            _ => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Advance to `new_epoch` after an incremental update: entries whose
    /// footprint intersects `delta` are dropped (their extents may have
    /// changed); the rest are restamped to `new_epoch` (their inputs
    /// provably did not change, so their rows are exact at the new
    /// epoch too). Returns the signatures dropped, for re-pinning.
    pub fn advance_epoch(&self, new_epoch: u64, delta: &DeltaFootprint) -> Vec<ViewSignature> {
        let mut inner = self.lock();
        let stale_epoch = inner.epoch;
        let mut dropped = Vec::new();
        let mut dropped_bodies = Vec::new();
        inner.entries.retain(|sig, e| {
            // An entry already off-epoch can't be revalidated by
            // restamping — it was computed against some other state.
            if e.epoch != stale_epoch || e.footprint.intersects(delta) {
                dropped.push(*sig);
                dropped_bodies.push(e.body);
                false
            } else {
                e.epoch = new_epoch;
                true
            }
        });
        for (sig, body) in dropped.iter().zip(&dropped_bodies) {
            inner.unindex_body(body, sig);
        }
        let freed: usize = dropped.len();
        inner.total_tuples = inner.entries.values().map(|e| e.tuples).sum();
        inner.invalidated += freed as u64;
        inner.epoch = new_epoch;
        dropped
    }

    /// Drop every entry (non-incremental rebuilds: term ids may have
    /// been remapped, so nothing survives). The epoch is unchanged —
    /// the owner re-aligns it when republishing.
    pub fn clear(&self) {
        let mut inner = self.lock();
        let n = inner.entries.len() as u64;
        inner.entries.clear();
        inner.bodies.clear();
        inner.total_tuples = 0;
        inner.invalidated += n;
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ViewCatalogStats {
        let inner = self.lock();
        ViewCatalogStats {
            entries: inner.entries.len(),
            total_tuples: inner.total_tuples,
            budget_tuples: self.budget_tuples,
            epoch: inner.epoch,
            hits: inner.hits,
            misses: inner.misses,
            invalidated: inner.invalidated,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The execution-time view of the catalog: the catalog plus the
/// *request's* pinned epoch. Resolution through a `ViewSource` is
/// epoch-exact, which is the whole correctness story — a plan (cached
/// or fresh) names a view only by signature, and the rows come from
/// here or not at all.
#[derive(Clone, Copy)]
pub struct ViewSource<'a> {
    /// The shared catalog.
    pub catalog: &'a ViewCatalog,
    /// The epoch the request is pinned to.
    pub epoch: u64,
}

impl<'a> ViewSource<'a> {
    /// Epoch-exact resolution (see [`ViewCatalog::resolve`]).
    pub fn resolve(&self, sig: &ViewSignature) -> Option<Arc<Relation>> {
        self.catalog.resolve(sig, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{StoreCq, StorePattern};
    use jucq_model::TermKind;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(n: VarId) -> PatternTerm {
        PatternTerm::Var(n)
    }

    fn ucq(members: Vec<Vec<StorePattern>>, head: Vec<VarId>) -> StoreUcq {
        let cqs = members
            .into_iter()
            .map(|patterns| {
                let head_terms: Vec<PatternTerm> =
                    head.iter().map(|&h| PatternTerm::Var(h)).collect();
                StoreCq::new(patterns, head_terms)
            })
            .collect();
        StoreUcq::new(cqs, head)
    }

    #[test]
    fn signature_is_invariant_under_renaming_and_member_order() {
        let a = ucq(
            vec![
                vec![StorePattern::new(v(0), c(10), v(1))],
                vec![StorePattern::new(v(0), c(11), v(1))],
            ],
            vec![0, 1],
        );
        // Same shape, different variable ids and member order.
        let b = ucq(
            vec![
                vec![StorePattern::new(v(7), c(11), v(3))],
                vec![StorePattern::new(v(7), c(10), v(3))],
            ],
            vec![7, 3],
        );
        assert_eq!(ViewSignature::of(&a), ViewSignature::of(&b));
        assert_eq!(ViewSignature::body_of(&a), ViewSignature::body_of(&b));
    }

    #[test]
    fn signature_distinguishes_heads_and_constants() {
        let a = ucq(vec![vec![StorePattern::new(v(0), c(10), v(1))]], vec![0, 1]);
        let different_const = ucq(vec![vec![StorePattern::new(v(0), c(12), v(1))]], vec![0, 1]);
        let different_head = ucq(vec![vec![StorePattern::new(v(0), c(10), v(1))]], vec![1, 0]);
        assert_ne!(ViewSignature::of(&a), ViewSignature::of(&different_const));
        assert_ne!(ViewSignature::of(&a), ViewSignature::of(&different_head));
        // The body signature deliberately ignores the head.
        assert_eq!(ViewSignature::body_of(&a), ViewSignature::body_of(&different_head));
    }

    #[test]
    fn footprint_intersection_is_exact_per_predicate_and_class() {
        let rdf_type = id(1);
        let frag = ucq(
            vec![
                vec![StorePattern::new(v(0), c(10), v(1))],
                vec![StorePattern::new(v(0), PatternTerm::Const(rdf_type), c(20))],
            ],
            vec![0],
        );
        let fp = ViewFootprint::of(&frag, rdf_type);
        assert!(fp.preds.contains(&id(10)));
        assert!(fp.classes.contains(&id(20)));
        assert!(!fp.any_pred && !fp.any_class);

        let hit_pred = DeltaFootprint::from_triples(
            &[jucq_model::TripleId::new(id(5), id(10), id(6))],
            rdf_type,
        );
        let hit_class = DeltaFootprint::from_triples(
            &[jucq_model::TripleId::new(id(5), rdf_type, id(20))],
            rdf_type,
        );
        let miss = DeltaFootprint::from_triples(
            &[jucq_model::TripleId::new(id(5), id(99), id(6))],
            rdf_type,
        );
        let miss_class = DeltaFootprint::from_triples(
            &[jucq_model::TripleId::new(id(5), rdf_type, id(99))],
            rdf_type,
        );
        assert!(fp.intersects(&hit_pred));
        assert!(fp.intersects(&hit_class));
        assert!(!fp.intersects(&miss));
        assert!(!fp.intersects(&miss_class));
    }

    #[test]
    fn catalog_budget_epoch_and_invalidation() {
        let rdf_type = id(1);
        let frag_a = ucq(vec![vec![StorePattern::new(v(0), c(10), v(1))]], vec![0, 1]);
        let frag_b = ucq(vec![vec![StorePattern::new(v(0), c(11), v(1))]], vec![0, 1]);
        let sig_a = ViewSignature::of(&frag_a);
        let sig_b = ViewSignature::of(&frag_b);

        let mut rows = Relation::empty(vec![0, 1]);
        rows.push_row(&[id(2), id(3)]);
        rows.push_row(&[id(4), id(5)]);

        let catalog = ViewCatalog::new(3);
        assert!(catalog.insert(
            sig_a,
            ViewSignature::body_of(&frag_a),
            rows.clone(),
            ViewFootprint::of(&frag_a, rdf_type),
        ));
        // Over budget: 2 held + 2 > 3.
        assert!(!catalog.insert(
            sig_b,
            ViewSignature::body_of(&frag_b),
            rows.clone(),
            ViewFootprint::of(&frag_b, rdf_type),
        ));
        // Replacing the same signature charges only the difference.
        assert!(catalog.insert(
            sig_a,
            ViewSignature::body_of(&frag_a),
            rows.clone(),
            ViewFootprint::of(&frag_a, rdf_type),
        ));
        assert_eq!(catalog.contains_current(&sig_a), Some(2));
        assert!(catalog.resolve(&sig_a, 0).is_some());
        assert!(catalog.resolve(&sig_a, 1).is_none(), "wrong epoch never resolves");
        assert_eq!(catalog.body_tuples(&ViewSignature::body_of(&frag_a)), Some(2));
        assert_eq!(catalog.body_tuples(&ViewSignature::body_of(&frag_b)), None);

        // A delta on predicate 10 invalidates exactly frag_a.
        let delta = DeltaFootprint::from_triples(
            &[jucq_model::TripleId::new(id(7), id(10), id(8))],
            rdf_type,
        );
        let dropped = catalog.advance_epoch(1, &delta);
        assert_eq!(dropped, vec![sig_a]);
        assert!(catalog.resolve(&sig_a, 1).is_none());
        assert_eq!(catalog.stats().entries, 0);
        assert_eq!(catalog.stats().invalidated, 1);
        assert_eq!(
            catalog.body_tuples(&ViewSignature::body_of(&frag_a)),
            None,
            "the body index drops with the entry"
        );

        // A surviving entry is restamped and resolves at the new epoch.
        assert!(catalog.insert(
            sig_b,
            ViewSignature::body_of(&frag_b),
            rows,
            ViewFootprint::of(&frag_b, rdf_type),
        ));
        let dropped = catalog.advance_epoch(2, &delta);
        assert!(dropped.is_empty(), "predicate 11 does not intersect a predicate-10 delta");
        assert!(catalog.resolve(&sig_b, 2).is_some());
        assert!(catalog.resolve(&sig_b, 1).is_none());
        assert_eq!(
            catalog.body_tuples(&ViewSignature::body_of(&frag_b)),
            Some(2),
            "a restamped survivor still probes by body"
        );
        catalog.clear();
        assert_eq!(catalog.body_tuples(&ViewSignature::body_of(&frag_b)), None);
    }
}
