//! Batched (vectorized) operator kernels and the sideways-information-
//! passing (SIP) Bloom filter.
//!
//! The row-at-a-time kernels in [`cq`](crate::exec::cq),
//! [`join`](crate::exec::join) and [`union`](crate::exec::union) pay a
//! per-tuple price three times over: a liveness tick per produced
//! tuple, a variable-position search per gathered column, and a key
//! allocation per hashed or compared row. The kernels here process
//! `EngineProfile::batch_rows` tuples per step instead: column
//! positions and probe-key templates are resolved once per operator,
//! rows are gathered into a flat batch buffer flushed in one bulk
//! append, hash-join keys are u64 hashes (verified on probe) instead of
//! per-row `Vec` keys, sort-merge keys are materialized once per side,
//! and the liveness poll ([`ExecContext::tick_n`]) and memory check run
//! once per batch.
//!
//! **Contract**: for the same plan, every batched kernel produces the
//! exact row sequence *and* the exact [`Counters`](crate::exec::Counters)
//! of its row-at-a-time twin — only the poll cadence (still at least
//! once per 16384 tuples) and constant factors differ. The differential
//! matrix test in `tests/vectorized_differential.rs` locks this.
//!
//! [`SipFilter`] rides on top of batches: when the staged plan driver
//! (see `plan/exec.rs`) finishes the accumulated left side of a
//! fragment join step, it publishes a Bloom filter over the join-key
//! columns; the next fragment's union members probe it batch-at-a-time
//! ([`apply_sip_filter`]) and drop tuples that cannot join before they
//! are merged or joined. False positives only let a non-joining tuple
//! through to the join (which discards it), so answers are unchanged;
//! drops are counted per filter for `explain_analyze`.

use jucq_model::{FxHashMap, TermId};

use crate::error::EngineError;
use crate::exec::cq::repeated_vars_consistent;
use crate::exec::union::DedupAccumulator;
use crate::exec::{join, ExecContext};
use crate::ir::{PatternTerm, StorePattern, VarId};
use crate::relation::Relation;
use crate::table::{Perm, RangePos, TripleTable};

const HASH_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Order-independent-free (position-sensitive) hash of selected row
/// columns — the same mixing the union dedup accumulator uses.
#[inline]
fn hash_cols(row: &[TermId], cols: &[usize]) -> u64 {
    let mut h: u64 = cols.len() as u64;
    for &c in cols {
        h = (h.rotate_left(5) ^ u64::from(row[c].raw())).wrapping_mul(HASH_SEED);
    }
    h
}

#[inline]
fn keys_equal(a: &[TermId], a_cols: &[usize], b: &[TermId], b_cols: &[usize]) -> bool {
    a_cols.iter().zip(b_cols).all(|(&ac, &bc)| a[ac] == b[bc])
}

/// A Bloom filter over join-key tuples, published by a completed
/// fragment-join build side and probed by downstream fragments' union
/// members. Sized at ~10 bits per key (two probe positions), so the
/// false-positive rate stays in the low percent range; false positives
/// are harmless (the join discards them), false negatives impossible.
pub(crate) struct SipFilter {
    /// The join-key variables the filter covers.
    pub(crate) keys: Vec<VarId>,
    /// The filter's node label (`fragment[target].sip_filter`).
    pub(crate) label: String,
    bits: Vec<u64>,
    mask: u64,
}

impl SipFilter {
    /// Build the filter from the key columns of `source` (the join's
    /// accumulated left side).
    pub(crate) fn build(source: &Relation, keys: &[VarId], label: String) -> Self {
        let cols: Vec<usize> = keys
            .iter()
            .map(|&v| source.column_of(v).expect("SIP key bound by the build side"))
            .collect();
        let nbits = source.len().saturating_mul(10).next_power_of_two().max(1024);
        let mut bits = vec![0u64; nbits / 64];
        let mask = (nbits - 1) as u64;
        for row in source.rows() {
            let h = hash_cols(row, &cols);
            for b in Self::probe_bits(h, mask) {
                bits[(b / 64) as usize] |= 1 << (b % 64);
            }
        }
        SipFilter { keys: keys.to_vec(), label, bits, mask }
    }

    #[inline]
    fn probe_bits(h: u64, mask: u64) -> [u64; 2] {
        // Double hashing: derive the second position from the high bits
        // so the two probes are decorrelated.
        let g = (h >> 32) | 1;
        [h & mask, h.wrapping_add(g.wrapping_mul(HASH_SEED)) & mask]
    }

    /// Whether a row whose key columns hash to `h` may join (no = never).
    #[inline]
    fn may_contain(&self, h: u64) -> bool {
        Self::probe_bits(h, self.mask)
            .iter()
            .all(|&b| self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0)
    }

    /// The number of distinct keys this filter was sized for — the
    /// build-side row count rounded into bits (diagnostic only).
    #[cfg(test)]
    pub(crate) fn bit_len(&self) -> usize {
        self.bits.len() * 64
    }
}

/// Probe every row of `rel` against `filter`, dropping rows whose join
/// key cannot be present on the build side. Counts probes/drops into
/// the context's counters and per-filter stats and records the
/// `sip_filter` operator node (under the caller's `fragment[i].` scope).
pub(crate) fn apply_sip_filter(
    rel: &mut Relation,
    filter: &SipFilter,
    ctx: &mut ExecContext<'_>,
) -> Result<(), EngineError> {
    if rel.width() == 0 {
        // Boolean member results carry no key columns to probe.
        return Ok(());
    }
    let cols: Vec<usize> = filter
        .keys
        .iter()
        .map(|&v| rel.column_of(v).expect("SIP key bound by the member head"))
        .collect();
    let probes = rel.len() as u64;
    let op = ctx.op_start();
    ctx.tick_n(probes)?;
    let kept = rel.retain_rows(|row| filter.may_contain(hash_cols(row, &cols))) as u64;
    ctx.counters.sip_probes += probes;
    ctx.counters.sip_drops += probes - kept;
    ctx.record_sip(&filter.label, probes, probes - kept);
    ctx.op_finish(op, "sip_filter", kept);
    Ok(())
}

/// Batched scan: same rows and `tuples_scanned` as
/// [`cq::scan_pattern`](crate::exec::cq::scan_pattern), with the
/// variable-position map resolved once, rows gathered into a flat batch
/// buffer, and ticks/memory checks amortized per batch.
pub(crate) fn scan_pattern_batched(
    table: &TripleTable,
    p: &StorePattern,
    perm: Option<Perm>,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let vars = p.variables();
    let positions = p.positions();
    let var_pos: Vec<usize> = vars
        .iter()
        .map(|&v| {
            positions.iter().position(|pt| pt.as_var() == Some(v)).expect("var occurs in pattern")
        })
        .collect();
    let check_repeats = p.has_repeated_var();
    let bound = p.bound();
    let extent = table.scan_with(perm.unwrap_or_else(|| Perm::for_bound(&bound)), &bound);
    let batch = ctx.profile().effective_batch_rows();
    ctx.counters.rows_reserved += extent.len() as u64;
    let mut out = Relation::with_capacity(vars.to_vec(), extent.len());
    let zero_width = vars.is_empty();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * vars.len());
    for chunk in extent.chunks(batch) {
        ctx.counters.tuples_scanned += chunk.len() as u64;
        ctx.tick_n(chunk.len() as u64)?;
        for t in chunk {
            if check_repeats && !repeated_vars_consistent(p, t) {
                continue;
            }
            if zero_width {
                out.push_row(&[]);
            } else {
                let val = [t.s, t.p, t.o];
                flat.extend(var_pos.iter().map(|&i| val[i]));
            }
        }
        if !flat.is_empty() {
            out.append_flat(&flat);
            flat.clear();
        }
        ctx.check_memory(out.len())?;
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Batched interval scan: same rows and counters as
/// [`cq::scan_range`](crate::exec::cq::scan_range)'s row path (the
/// caller charges `range_scans` before delegating here), with the
/// variable-position map resolved once and ticks amortized per batch.
pub(crate) fn scan_range_batched(
    table: &TripleTable,
    p: &StorePattern,
    ranged: RangePos,
    lo: u32,
    hi: u32,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let vars = p.variables();
    let positions = p.positions();
    let var_pos: Vec<usize> = vars
        .iter()
        .map(|&v| {
            positions.iter().position(|pt| pt.as_var() == Some(v)).expect("var occurs in pattern")
        })
        .collect();
    let check_repeats = p.has_repeated_var();
    let mut bound = p.bound();
    match ranged {
        RangePos::Predicate => bound[1] = None,
        RangePos::Object => bound[2] = None,
    }
    let extent = table.scan_value_range(&bound, ranged, lo, hi);
    let batch = ctx.profile().effective_batch_rows();
    ctx.counters.rows_reserved += extent.len() as u64;
    let mut out = Relation::with_capacity(vars.to_vec(), extent.len());
    let zero_width = vars.is_empty();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * vars.len());
    for chunk in extent.chunks(batch) {
        ctx.counters.tuples_scanned += chunk.len() as u64;
        ctx.tick_n(chunk.len() as u64)?;
        for t in chunk {
            if check_repeats && !repeated_vars_consistent(p, t) {
                continue;
            }
            if zero_width {
                out.push_row(&[]);
            } else {
                let val = [t.s, t.p, t.o];
                flat.extend(var_pos.iter().map(|&i| val[i]));
            }
        }
        if !flat.is_empty() {
            out.append_flat(&flat);
            flat.clear();
        }
        ctx.check_memory(out.len())?;
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// What fills each probe-key position of an index-nested-loop step:
/// resolved once per operator instead of searched per row.
enum ProbeSlot {
    /// A pattern constant.
    Const(TermId),
    /// A column of the accumulated binding relation.
    Col(usize),
    /// A free variable (scan wildcard).
    Free,
}

/// Batched index-nested-loop step: same rows and counters as the
/// row-at-a-time `probe_extend`, with the probe-key template and
/// new-variable positions resolved once and ticks amortized.
pub(crate) fn probe_extend_batched(
    table: &TripleTable,
    acc: &Relation,
    p: &StorePattern,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let p_vars = p.variables();
    let positions = p.positions();
    let slots: Vec<ProbeSlot> = positions
        .iter()
        .map(|pt| match pt {
            PatternTerm::Const(c) => ProbeSlot::Const(*c),
            PatternTerm::Var(v) => match acc.column_of(*v) {
                Some(col) => ProbeSlot::Col(col),
                None => ProbeSlot::Free,
            },
        })
        .collect();
    let new_vars: Vec<VarId> =
        p_vars.iter().copied().filter(|&v| acc.column_of(v).is_none()).collect();
    let new_pos: Vec<usize> = new_vars
        .iter()
        .map(|&v| {
            positions
                .iter()
                .position(|pt| pt.as_var() == Some(v))
                .expect("new var occurs in pattern")
        })
        .collect();
    let mut out_vars = acc.vars().to_vec();
    out_vars.extend(new_vars.iter().copied());
    let width = out_vars.len();
    let zero_width = width == 0;
    let check_repeats = p.has_repeated_var();
    let mut out = Relation::empty(out_vars);
    let batch = ctx.profile().effective_batch_rows();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * width);
    let mut pending: u64 = 0;

    for arow in acc.rows() {
        pending += 1;
        let mut bound: [Option<TermId>; 3] = [None, None, None];
        for (i, slot) in slots.iter().enumerate() {
            bound[i] = match slot {
                ProbeSlot::Const(c) => Some(*c),
                ProbeSlot::Col(col) => Some(arow[*col]),
                ProbeSlot::Free => None,
            };
        }
        let matches = table.scan(&bound);
        ctx.counters.tuples_scanned += matches.len() as u64;
        pending += matches.len() as u64;
        for t in matches {
            if check_repeats && !repeated_vars_consistent(p, t) {
                continue;
            }
            ctx.counters.tuples_joined += 1;
            if zero_width {
                out.push_row(&[]);
            } else {
                let val = [t.s, t.p, t.o];
                flat.extend_from_slice(arow);
                flat.extend(new_pos.iter().map(|&i| val[i]));
            }
        }
        if pending >= batch as u64 {
            ctx.tick_n(pending)?;
            pending = 0;
            if !flat.is_empty() {
                out.append_flat(&flat);
                flat.clear();
            }
            ctx.check_memory(out.len())?;
        }
    }
    ctx.tick_n(pending)?;
    if !flat.is_empty() {
        out.append_flat(&flat);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Batched interval-probe step: same rows and counters as the
/// row-at-a-time `probe_extend_range` (the caller charges `range_scans`
/// before delegating here) — one contiguous `scan_value_range` probe per
/// input row, with the probe-key template resolved once and ticks
/// amortized.
pub(crate) fn probe_extend_range_batched(
    table: &TripleTable,
    acc: &Relation,
    p: &StorePattern,
    ranged: RangePos,
    lo: u32,
    hi: u32,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let p_vars = p.variables();
    let positions = p.positions();
    let mut slots: Vec<ProbeSlot> = positions
        .iter()
        .map(|pt| match pt {
            PatternTerm::Const(c) => ProbeSlot::Const(*c),
            PatternTerm::Var(v) => match acc.column_of(*v) {
                Some(col) => ProbeSlot::Col(col),
                None => ProbeSlot::Free,
            },
        })
        .collect();
    // The ranged position's template constant stands for the whole
    // interval: unbind it so the probe covers the contiguous index run.
    slots[match ranged {
        RangePos::Predicate => 1,
        RangePos::Object => 2,
    }] = ProbeSlot::Free;
    let new_vars: Vec<VarId> =
        p_vars.iter().copied().filter(|&v| acc.column_of(v).is_none()).collect();
    let new_pos: Vec<usize> = new_vars
        .iter()
        .map(|&v| {
            positions
                .iter()
                .position(|pt| pt.as_var() == Some(v))
                .expect("new var occurs in pattern")
        })
        .collect();
    let mut out_vars = acc.vars().to_vec();
    out_vars.extend(new_vars.iter().copied());
    let width = out_vars.len();
    let zero_width = width == 0;
    let check_repeats = p.has_repeated_var();
    let mut out = Relation::empty(out_vars);
    let batch = ctx.profile().effective_batch_rows();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * width);
    let mut pending: u64 = 0;

    for arow in acc.rows() {
        pending += 1;
        let mut bound: [Option<TermId>; 3] = [None, None, None];
        for (i, slot) in slots.iter().enumerate() {
            bound[i] = match slot {
                ProbeSlot::Const(c) => Some(*c),
                ProbeSlot::Col(col) => Some(arow[*col]),
                ProbeSlot::Free => None,
            };
        }
        let matches = table.scan_value_range(&bound, ranged, lo, hi);
        ctx.counters.tuples_scanned += matches.len() as u64;
        pending += matches.len() as u64;
        for t in matches {
            if check_repeats && !repeated_vars_consistent(p, t) {
                continue;
            }
            ctx.counters.tuples_joined += 1;
            if zero_width {
                out.push_row(&[]);
            } else {
                let val = [t.s, t.p, t.o];
                flat.extend_from_slice(arow);
                flat.extend(new_pos.iter().map(|&i| val[i]));
            }
        }
        if pending >= batch as u64 {
            ctx.tick_n(pending)?;
            pending = 0;
            if !flat.is_empty() {
                out.append_flat(&flat);
                flat.clear();
            }
            ctx.check_memory(out.len())?;
        }
    }
    ctx.tick_n(pending)?;
    if !flat.is_empty() {
        out.append_flat(&flat);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Batched head projection: sources resolved once (as in the row path),
/// rows gathered through a flat batch buffer with an amortized liveness
/// poll.
pub(crate) fn project_head_batched(
    body: &Relation,
    head: &[PatternTerm],
    out_vars: &[VarId],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    enum Source {
        Column(usize),
        Constant(TermId),
    }
    let sources: Vec<Source> = head
        .iter()
        .map(|t| match t {
            PatternTerm::Var(v) => {
                Source::Column(body.column_of(*v).expect("head variable bound by the body"))
            }
            PatternTerm::Const(c) => Source::Constant(*c),
        })
        .collect();
    let mut out = Relation::with_capacity(out_vars.to_vec(), body.len());
    if out_vars.is_empty() {
        let n = body.len();
        ctx.tick_n(n as u64)?;
        for _ in 0..n {
            out.push_row(&[]);
        }
        return Ok(out);
    }
    let batch = ctx.profile().effective_batch_rows();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * out_vars.len());
    let mut in_batch = 0usize;
    for row in body.rows() {
        for s in &sources {
            flat.push(match s {
                Source::Column(c) => row[*c],
                Source::Constant(c) => *c,
            });
        }
        in_batch += 1;
        if in_batch == batch {
            ctx.tick_n(in_batch as u64)?;
            out.append_flat(&flat);
            flat.clear();
            in_batch = 0;
        }
    }
    ctx.tick_n(in_batch as u64)?;
    if !flat.is_empty() {
        out.append_flat(&flat);
    }
    Ok(out)
}

/// Batched hash join: the build table is keyed by u64 key hashes
/// (bucket entries verified against the actual key columns on probe)
/// instead of one allocated `Vec` key per row; emission goes through a
/// flat batch buffer with amortized ticks. Row order, `tuples_joined`
/// and `tuples_materialized` are identical to the row path: bucket
/// candidates are stored in build order, and filtering them by exact
/// key equality yields exactly the equal-key rows in that order.
pub(crate) fn hash_join_batched(
    left: &Relation,
    right: &Relation,
    opts: join::JoinOpts,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.check_deadline()?;
    let p = join::plan(left, right);
    let mut out = join::sized_output(p.out_vars.clone(), opts.est, ctx);
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left { (left, right) } else { (right, left) };
    let (build_key, probe_key) =
        if build_left { (&p.left_key, &p.right_key) } else { (&p.right_key, &p.left_key) };
    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    table.reserve(build.len());
    for (i, row) in build.rows().enumerate() {
        table.entry(hash_cols(row, build_key)).or_default().push(i as u32);
    }
    ctx.tick_n(build.len() as u64)?;
    ctx.counters.tuples_materialized += build.len() as u64;
    ctx.check_memory(build.len())?;

    let width = out.width();
    let zero_width = width == 0;
    let batch = ctx.profile().effective_batch_rows();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * width);
    let mut pending: u64 = 0;
    for prow in probe.rows() {
        pending += 1;
        if let Some(cands) = table.get(&hash_cols(prow, probe_key)) {
            for &bi in cands {
                let brow = build.row(bi as usize);
                if !keys_equal(brow, build_key, prow, probe_key) {
                    continue;
                }
                pending += 1;
                ctx.counters.tuples_joined += 1;
                let (lrow, rrow) = if build_left { (brow, prow) } else { (prow, brow) };
                if zero_width {
                    out.push_row(&[]);
                } else {
                    flat.extend_from_slice(lrow);
                    flat.extend(p.right_carry.iter().map(|&i| rrow[i]));
                }
            }
        }
        if pending >= batch as u64 {
            ctx.tick_n(pending)?;
            pending = 0;
            if !flat.is_empty() {
                out.append_flat(&flat);
                flat.clear();
            }
            ctx.check_memory(out.len())?;
        }
    }
    ctx.tick_n(pending)?;
    if !flat.is_empty() {
        out.append_flat(&flat);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Gather the key columns of every row into one flat buffer (`k` values
/// per row) so sort comparisons read contiguous slices instead of
/// allocating a key `Vec` per comparison.
fn gather_keys(rel: &Relation, cols: &[usize]) -> Vec<TermId> {
    let mut keys = Vec::with_capacity(rel.len() * cols.len());
    for row in rel.rows() {
        keys.extend(cols.iter().map(|&c| row[c]));
    }
    keys
}

/// Batched sort-merge join: both sides' keys are materialized once into
/// flat buffers (the row path allocates a key `Vec` per comparison),
/// then sorted and merged with batched emission. The sort comparator
/// orders exactly like the row path's, so the output row sequence is
/// identical — as are the order-aware effects: sort elision verifies the
/// same claim on the same key sequence, and galloping fires under the
/// same size-skew test, so `sorts_elided` / `gallop_seeks` match the
/// row kernel exactly.
pub(crate) fn sort_merge_join_batched(
    left: &Relation,
    right: &Relation,
    opts: join::JoinOpts,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.check_deadline()?;
    let p = join::plan(left, right);
    let mut out = join::sized_output(p.out_vars.clone(), opts.est, ctx);
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }
    let k = p.left_key.len();
    let lkeys = gather_keys(left, &p.left_key);
    let rkeys = gather_keys(right, &p.right_key);
    fn slice_key(keys: &[TermId], i: usize, k: usize) -> &[TermId] {
        &keys[i * k..i * k + k]
    }
    // Mirror of the row kernel's prefix detection: the longest key
    // prefix the input already arrives sorted on, in one linear pass.
    let sorted_prefix = |keys: &[TermId], n: usize| -> usize {
        let mut j = k;
        for x in 1..n {
            let (a, b) = (slice_key(keys, x - 1, k), slice_key(keys, x, k));
            for c in 0..j {
                match a[c].cmp(&b[c]) {
                    std::cmp::Ordering::Less => break,
                    std::cmp::Ordering::Equal => continue,
                    std::cmp::Ordering::Greater => {
                        j = c;
                        break;
                    }
                }
            }
            if j == 0 {
                break;
            }
        }
        j
    };
    let aware = ctx.profile().order_aware;
    let order_side = |keys: &[TermId], n: usize, elide: bool| -> (Vec<u32>, bool) {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let cmp_full =
            |&a: &u32, &b: &u32| slice_key(keys, a as usize, k).cmp(slice_key(keys, b as usize, k));
        if aware {
            if n <= 1 {
                return (ids, elide);
            }
            let j = sorted_prefix(keys, n);
            if j == k {
                // Fully sorted: merge in input order (only a claimed
                // elision is counted — see the row kernel).
                return (ids, elide);
            }
            if j > 0 {
                // Sorted on a strict key prefix: sort only within the
                // runs of equal prefix — O(n log run) not O(n log n).
                let mut s = 0;
                while s < n {
                    let mut e = s + 1;
                    while e < n && slice_key(keys, s, k)[..j] == slice_key(keys, e, k)[..j] {
                        e += 1;
                    }
                    ids[s..e].sort_unstable_by(cmp_full);
                    s = e;
                }
                return (ids, false);
            }
        } else if elide && (1..n).all(|x| slice_key(keys, x - 1, k) <= slice_key(keys, x, k)) {
            return (ids, true);
        }
        ids.sort_unstable_by(cmp_full);
        (ids, false)
    };
    let (lids, l_elided) = order_side(&lkeys, left.len(), opts.elide.0);
    let (rids, r_elided) = order_side(&rkeys, right.len(), opts.elide.1);
    // Mirror of the row kernel: an elided side is merged in input order
    // and skips the materialization charge.
    let mut charged = 0usize;
    for (elided, n) in [(l_elided, left.len()), (r_elided, right.len())] {
        if elided {
            ctx.counters.sorts_elided += 1;
        } else {
            charged += n;
        }
    }
    ctx.tick_n((left.len() + right.len()) as u64)?;
    ctx.counters.tuples_materialized += charged as u64;
    ctx.check_memory(left.len() + right.len())?;
    // Mirror of the row kernel: galloping is gated on the order-aware
    // knob so `JUCQ_ORDER=0` falls back to row-at-a-time stepping.
    let gallop = ctx.profile().order_aware;
    let gallop_l = gallop && left.len() >= join::GALLOP_SKEW * right.len();
    let gallop_r = gallop && right.len() >= join::GALLOP_SKEW * left.len();

    let width = out.width();
    let zero_width = width == 0;
    let batch = ctx.profile().effective_batch_rows();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * width);
    let mut pending: u64 = 0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < lids.len() && j < rids.len() {
        let lk = slice_key(&lkeys, lids[i] as usize, k);
        let rk = slice_key(&rkeys, rids[j] as usize, k);
        match lk.cmp(rk) {
            std::cmp::Ordering::Less => {
                if gallop_l {
                    i = join::gallop_to(i, lids.len(), |x| {
                        slice_key(&lkeys, lids[x] as usize, k) >= rk
                    });
                    ctx.counters.gallop_seeks += 1;
                } else {
                    i += 1;
                }
            }
            std::cmp::Ordering::Greater => {
                if gallop_r {
                    j = join::gallop_to(j, rids.len(), |x| {
                        slice_key(&rkeys, rids[x] as usize, k) >= lk
                    });
                    ctx.counters.gallop_seeks += 1;
                } else {
                    j += 1;
                }
            }
            std::cmp::Ordering::Equal => {
                let i_end = (i..lids.len())
                    .find(|&x| slice_key(&lkeys, lids[x] as usize, k) != lk)
                    .unwrap_or(lids.len());
                let j_end = (j..rids.len())
                    .find(|&x| slice_key(&rkeys, rids[x] as usize, k) != rk)
                    .unwrap_or(rids.len());
                for &li in &lids[i..i_end] {
                    for &rj in &rids[j..j_end] {
                        pending += 1;
                        ctx.counters.tuples_joined += 1;
                        if zero_width {
                            out.push_row(&[]);
                        } else {
                            flat.extend_from_slice(left.row(li as usize));
                            let rrow = right.row(rj as usize);
                            flat.extend(p.right_carry.iter().map(|&c| rrow[c]));
                        }
                        if pending >= batch as u64 {
                            ctx.tick_n(pending)?;
                            pending = 0;
                            if !flat.is_empty() {
                                out.append_flat(&flat);
                                flat.clear();
                            }
                        }
                    }
                }
                ctx.check_memory(out.len() + flat.len() / width.max(1))?;
                i = i_end;
                j = j_end;
            }
        }
    }
    ctx.tick_n(pending)?;
    if !flat.is_empty() {
        out.append_flat(&flat);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Batched block-nested-loop join: same quadratic comparison pattern as
/// the row path (the MySQL-like profile's deliberate weak spot keeps
/// its cost shape), but with amortized ticks and batched emission.
pub(crate) fn block_nested_loop_join_batched(
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.check_deadline()?;
    let p = join::plan(left, right);
    let mut out = Relation::empty(p.out_vars.clone());
    let width = out.width();
    let zero_width = width == 0;
    let batch = ctx.profile().effective_batch_rows();
    let mut flat: Vec<TermId> = Vec::with_capacity(batch * width);
    let mut pending: u64 = 0;
    for lrow in left.rows() {
        for rrow in right.rows() {
            pending += 1;
            if keys_equal(lrow, &p.left_key, rrow, &p.right_key) {
                ctx.counters.tuples_joined += 1;
                if zero_width {
                    out.push_row(&[]);
                } else {
                    flat.extend_from_slice(lrow);
                    flat.extend(p.right_carry.iter().map(|&i| rrow[i]));
                }
            }
            if pending >= batch as u64 {
                ctx.tick_n(pending)?;
                pending = 0;
                if !flat.is_empty() {
                    out.append_flat(&flat);
                    flat.clear();
                }
            }
        }
        // The row path enforces the budget once per outer row; keep the
        // same granularity so breach timing stays in the same class.
        ctx.check_memory(out.len() + flat.len() / width.max(1))?;
    }
    ctx.tick_n(pending)?;
    if !flat.is_empty() {
        out.append_flat(&flat);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Batched union merge: identical `tuples_deduped` and accumulator
/// contents to the row path, with the liveness poll amortized per
/// batch.
pub(crate) fn merge_member_batched(
    acc: &mut DedupAccumulator,
    r: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<(), EngineError> {
    ctx.counters.tuples_deduped += r.len() as u64;
    let batch = ctx.profile().effective_batch_rows();
    let mut in_batch = 0u64;
    for row in r.rows() {
        acc.insert(row);
        in_batch += 1;
        if in_batch == batch as u64 {
            ctx.tick_n(in_batch)?;
            in_batch = 0;
        }
    }
    ctx.tick_n(in_batch)?;
    ctx.check_memory(acc.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn rel(vars: Vec<VarId>, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::empty(vars);
        for row in rows {
            let ids: Vec<TermId> = row.iter().map(|&x| id(x)).collect();
            r.push_row(&ids);
        }
        r
    }

    #[test]
    fn bloom_filter_has_no_false_negatives() {
        let mut source = Relation::empty(vec![0, 1]);
        for i in 0..1000u32 {
            source.push_row(&[id(i), id(i % 13)]);
        }
        let f = SipFilter::build(&source, &[0], "fragment[1].sip_filter".to_string());
        assert!(f.bit_len() >= 1024);
        let cols = [0usize];
        for i in 0..1000u32 {
            let row = [id(i), id(0)];
            assert!(f.may_contain(hash_cols(&row, &cols)), "present key {i} must pass");
        }
        // Far-away keys are mostly rejected (probabilistic, but with
        // 10 bits/key the miss rate on 1000 foreign keys is tiny — well
        // under half even with margin for unlucky seeds).
        let rejected =
            (100_000..101_000u32).filter(|&i| !f.may_contain(hash_cols(&[id(i)], &[0]))).count();
        assert!(rejected > 500, "only {rejected}/1000 foreign keys rejected");
    }

    #[test]
    fn apply_sip_filter_drops_only_non_joining_rows() {
        let build = rel(vec![0], &[&[1], &[2], &[3]]);
        let f = SipFilter::build(&build, &[0], "fragment[1].sip_filter".to_string());
        let mut member = rel(vec![0, 1], &[&[1, 10], &[50, 20], &[3, 30], &[60, 40]]);
        let profile = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&profile);
        apply_sip_filter(&mut member, &f, &mut ctx).unwrap();
        // Keys 1 and 3 must survive (no false negatives); 50 and 60 are
        // *allowed* to survive as false positives but the counters must
        // reconcile either way.
        assert!(member.to_rows().contains(&vec![id(1), id(10)]));
        assert!(member.to_rows().contains(&vec![id(3), id(30)]));
        assert_eq!(ctx.counters.sip_probes, 4);
        assert_eq!(ctx.counters.sip_drops, 4 - member.len() as u64);
        let stats = ctx.take_sip_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].probes, 4);
    }

    #[test]
    fn zero_width_member_is_never_filtered() {
        let build = rel(vec![0], &[&[1]]);
        let f = SipFilter::build(&build, &[0], "fragment[1].sip_filter".to_string());
        let mut boolean = Relation::empty(vec![]);
        boolean.push_row(&[]);
        let profile = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&profile);
        apply_sip_filter(&mut boolean, &f, &mut ctx).unwrap();
        assert_eq!(boolean.len(), 1);
        assert_eq!(ctx.counters.sip_probes, 0);
    }

    #[test]
    fn batched_joins_match_row_joins_exactly() {
        let l = rel(vec![0, 1], &[&[1, 10], &[2, 20], &[3, 30], &[1, 11]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300], &[40, 400]]);
        let row_profile = EngineProfile::pg_like().with_batch_size(0);
        let batch_profile = EngineProfile::pg_like().with_batch_size(2);
        type JoinFn = Box<
            dyn Fn(&Relation, &Relation, &mut ExecContext<'_>) -> Result<Relation, EngineError>,
        >;
        let opts = join::JoinOpts::default();
        let pairs: [(JoinFn, JoinFn); 3] = [
            (
                Box::new(join::hash_join),
                Box::new(move |l, r, ctx| hash_join_batched(l, r, opts, ctx)),
            ),
            (
                Box::new(join::sort_merge_join),
                Box::new(move |l, r, ctx| sort_merge_join_batched(l, r, opts, ctx)),
            ),
            (Box::new(join::block_nested_loop_join), Box::new(block_nested_loop_join_batched)),
        ];
        for (row_f, batch_f) in pairs {
            let mut rctx = ExecContext::new(&row_profile);
            let rows = row_f(&l, &r, &mut rctx).unwrap();
            let mut bctx = ExecContext::new(&batch_profile);
            let batched = batch_f(&l, &r, &mut bctx).unwrap();
            assert_eq!(rows, batched, "identical rows in identical order");
            assert_eq!(rctx.counters, bctx.counters, "identical counters");
        }
    }

    #[test]
    fn batched_merge_join_mirrors_order_aware_counters() {
        let l = rel(vec![0, 1], &[&[1, 10], &[2, 20], &[3, 30], &[9, 30]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300], &[40, 400]]);
        let row_profile = EngineProfile::pg_like().with_batch_size(0);
        let batch_profile = EngineProfile::pg_like().with_batch_size(2);
        for elide in [(false, false), (true, false), (false, true), (true, true)] {
            let opts = join::JoinOpts { elide, est: Some(4.0) };
            let mut rctx = ExecContext::new(&row_profile);
            let rows = join::sort_merge_join_opts(&l, &r, opts, &mut rctx).unwrap();
            let mut bctx = ExecContext::new(&batch_profile);
            let batched = sort_merge_join_batched(&l, &r, opts, &mut bctx).unwrap();
            assert_eq!(rows, batched, "elide={elide:?}");
            assert_eq!(rctx.counters, bctx.counters, "elide={elide:?}");
        }
    }

    #[test]
    fn batched_gallop_counts_match_row_kernel() {
        let lrows: Vec<Vec<u32>> = (0..512).map(|i| vec![i, i * 2]).collect();
        let lslices: Vec<&[u32]> = lrows.iter().map(Vec::as_slice).collect();
        let l = rel(vec![0, 1], &lslices);
        let r = rel(vec![0, 2], &[&[100, 7], &[400, 8]]);
        let opts = join::JoinOpts::default();
        let row_profile = EngineProfile::pg_like().with_batch_size(0);
        let mut rctx = ExecContext::new(&row_profile);
        let rows = join::sort_merge_join_opts(&l, &r, opts, &mut rctx).unwrap();
        let batch_profile = EngineProfile::pg_like().with_batch_size(64);
        let mut bctx = ExecContext::new(&batch_profile);
        let batched = sort_merge_join_batched(&l, &r, opts, &mut bctx).unwrap();
        assert_eq!(rows, batched);
        assert!(rctx.counters.gallop_seeks > 0);
        assert_eq!(rctx.counters, bctx.counters);
    }
}
