//! Parallel union/member evaluation over the immutable triple table.
//!
//! Reformulated queries fan out into unions of hundreds–thousands of
//! member CQs per fragment; each lowered member is an independent
//! read-only plan subtree over the [`TripleTable`] (plus the plan's
//! already-materialized shared scans), so the whole (union, member)
//! matrix is flattened into one task list and pulled by a pool of
//! `std::thread::scope` workers. Determinism is preserved by keeping
//! the *merge* sequential: worker results are stored per task slot and
//! folded into each union's streaming dedup accumulator in member
//! order, so rows, counters and node profiles are identical to a
//! sequential run regardless of scheduling.
//!
//! The engine profile's limits stay global across threads: every worker
//! context shares the originating context's start instant (deadline)
//! and an atomic held-tuples budget, and the first failure flips a
//! shared cancel flag that all siblings poll from their amortized tick.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::EngineError;
use crate::exec::union::DedupAccumulator;
use crate::exec::{batch, cq, pool, union, ExecContext};
use crate::ir::VarId;
use crate::plan::PlanNode;
use crate::relation::Relation;
use crate::table::TripleTable;

/// One fragment union of a physical plan, ready to evaluate: the
/// fragment's index (for node labels), output schema and lowered
/// members.
pub(crate) struct UnionTask<'p> {
    /// Fragment index, used in `fragment[{idx}].` node scopes.
    pub idx: usize,
    /// The union's output schema (the fragment head).
    pub head: &'p [VarId],
    /// Lowered member plans.
    pub members: &'p [PlanNode],
    /// The planner's union-output estimate, used to pre-size the dedup
    /// accumulator's row buffer.
    pub est: Option<f64>,
    /// Sideways-information-passing filter published by an upstream
    /// fragment join: each member result is probed against it (and
    /// non-joining rows dropped) before merging into the union.
    pub filter: Option<&'p batch::SipFilter>,
}

/// Evaluate every fragment union of a plan, using up to `threads`
/// worker threads across the flattened (union, member) task list. With
/// one worker (or at most one task) this is exactly the sequential
/// path. `shared` is the plan's materialized shared-scan table.
///
/// The profile's `threads` is a *request*, not a reservation: the
/// calling thread always works for free, and every extra worker needs
/// a permit from the process-wide [`pool::PermitPool`]. Under
/// concurrent queries the pool arbitrates, so inter-query and
/// intra-query parallelism share one machine-sized budget instead of
/// multiplying — a busy server degrades each query toward sequential
/// evaluation rather than oversubscribing every core at once.
pub(crate) fn eval_unions(
    table: &TripleTable,
    unions: &[UnionTask<'_>],
    shared: &[Relation],
    ctx: &mut ExecContext<'_>,
    threads: usize,
) -> Result<Vec<Relation>, EngineError> {
    let tasks: Vec<(usize, usize)> = unions
        .iter()
        .enumerate()
        .flat_map(|(ui, u)| (0..u.members.len()).map(move |mi| (ui, mi)))
        .collect();
    // On single-core hardware extra workers are pure overhead (the
    // process-wide permit pool's floor would still grant them), so the
    // sequential path is taken outright regardless of the profile's
    // thread request.
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let desired = if hw <= 1 { 1 } else { threads.min(tasks.len()).max(1) };
    // Non-blocking admission: a zero grant just means "run sequential".
    let permits =
        if desired > 1 { Some(pool::PermitPool::global().try_acquire(desired - 1)) } else { None };
    let workers = 1 + permits.as_ref().map_or(0, pool::Permits::count);
    if workers <= 1 {
        let mut out = Vec::with_capacity(unions.len());
        for u in unions {
            ctx.set_scope(format!("fragment[{}].", u.idx));
            let op = ctx.op_start();
            if union::borrowable(u.members, ctx) {
                ctx.check_deadline()?;
                let mut r = cq::eval_member(table, &u.members[0], shared, ctx)?;
                if let Some(f) = u.filter {
                    batch::apply_sip_filter(&mut r, f, ctx)?;
                }
                out.push(union::borrow_member(r, op, ctx)?);
                continue;
            }
            let mut acc = DedupAccumulator::with_est(u.head.to_vec(), u.est, ctx);
            for m in u.members {
                ctx.check_deadline()?;
                let mut r = cq::eval_member(table, m, shared, ctx)?;
                if let Some(f) = u.filter {
                    batch::apply_sip_filter(&mut r, f, ctx)?;
                }
                union::merge_member(&mut acc, &r, ctx)?;
            }
            out.push(union::finish_union(acc, op, ctx)?);
        }
        ctx.set_scope(String::new());
        return Ok(out);
    }

    // Work-stealing claim counter: assignment is nondeterministic, but
    // results land in per-task slots, so the merge below is not.
    let spawner = ctx.spawner();
    let next = AtomicUsize::new(0);
    type Slot<'s> = Option<(Result<Relation, EngineError>, ExecContext<'s>)>;
    let mut slots: Vec<Slot<'_>> = (0..tasks.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks.len() || spawner.shared().cancelled() {
                            break;
                        }
                        let (ui, mi) = tasks[t];
                        let u = &unions[ui];
                        let mut wctx = spawner.context();
                        wctx.set_scope(format!("fragment[{}].", u.idx));
                        let r = wctx
                            .check_live()
                            .and_then(|()| {
                                cq::eval_member(table, &u.members[mi], shared, &mut wctx)
                            })
                            .and_then(|mut rel| {
                                if let Some(f) = u.filter {
                                    batch::apply_sip_filter(&mut rel, f, &mut wctx)?;
                                }
                                // Charge the held member result against
                                // the *global* budget until it is merged.
                                wctx.reserve_memory(rel.len())?;
                                Ok(rel)
                            });
                        if r.is_err() {
                            spawner.shared().cancel();
                        }
                        produced.push((t, r, wctx));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (t, r, wctx) in h.join().expect("worker thread panicked") {
                slots[t] = Some((r, wctx));
            }
        }
    });

    // Surface the originating failure (in task order), never the
    // secondary `Cancelled`s it provoked on sibling workers.
    if slots.iter().any(|s| matches!(s, Some((Err(_), _))) || s.is_none()) {
        for slot in &slots {
            if let Some((Err(e), _)) = slot {
                if !matches!(e, EngineError::Cancelled) {
                    return Err(e.clone());
                }
            }
        }
        return Err(EngineError::Cancelled);
    }

    // Deterministic order-stable merge: fold member results into each
    // union's dedup accumulator in member order, absorbing worker
    // counters/profiles in the same order the sequential path would
    // produce them.
    let mut out = Vec::with_capacity(unions.len());
    let mut iter = slots.into_iter();
    for u in unions {
        ctx.set_scope(format!("fragment[{}].", u.idx));
        let op = ctx.op_start();
        if union::borrowable(u.members, ctx) {
            let (r, wctx) = iter.next().expect("one slot per member").expect("task claimed");
            let rel = r.expect("errors surfaced above");
            ctx.absorb(wctx);
            ctx.release_memory(rel.len());
            out.push(union::borrow_member(rel, op, ctx)?);
            continue;
        }
        let mut acc = DedupAccumulator::with_est(u.head.to_vec(), u.est, ctx);
        for _ in 0..u.members.len() {
            let (r, wctx) = iter.next().expect("one slot per member").expect("task claimed");
            let rel = r.expect("errors surfaced above");
            ctx.absorb(wctx);
            union::merge_member(&mut acc, &rel, ctx)?;
            ctx.release_memory(rel.len());
        }
        out.push(union::finish_union(acc, op, ctx)?);
    }
    ctx.set_scope(String::new());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Counters;
    use crate::ir::{PatternTerm, StoreCq, StoreJucq, StorePattern, StoreUcq};
    use crate::plan::Planner;
    use crate::profile::EngineProfile;
    use crate::stats::Statistics;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};
    use std::time::Duration;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    /// 40 predicates × 50 subjects, with heavy overlap across members.
    fn table() -> TripleTable {
        let mut triples = Vec::new();
        for p in 0..40u32 {
            for s in 0..50u32 {
                triples.push(t(s, 100 + p, s % 7));
            }
        }
        TripleTable::build(&triples)
    }

    /// A UCQ of one member per predicate (overlapping object columns).
    fn wide_ucq() -> StoreUcq {
        let cqs = (0..40u32)
            .map(|p| {
                StoreCq::with_var_head(vec![StorePattern::new(v(0), c(100 + p), v(1))], vec![0, 1])
            })
            .collect();
        StoreUcq::new(cqs, vec![0, 1])
    }

    fn eval(
        q: &StoreJucq,
        profile: &EngineProfile,
        threads: usize,
    ) -> Result<(Relation, Counters), EngineError> {
        let table = table();
        let stats = Statistics::build(&table);
        let plan = Planner::new(&table, &stats, profile).plan(q);
        let mut ctx = ExecContext::new(profile);
        let rel = crate::plan::exec::execute(&table, &plan, &mut ctx, threads, None)?;
        Ok((rel, ctx.counters))
    }

    #[test]
    fn parallel_union_matches_sequential_exactly() {
        let q = StoreJucq::from_ucq(wide_ucq());
        let profile = EngineProfile::pg_like();
        let (seq, seq_counters) = eval(&q, &profile, 1).unwrap();
        for threads in [2, 4, 8] {
            let (par, par_counters) = eval(&q, &profile, threads).unwrap();
            // Bit-identical, not just set-equal: the order-stable merge
            // reproduces the sequential accumulator row order.
            assert_eq!(seq, par, "rows differ at {threads} threads");
            assert_eq!(seq_counters, par_counters, "counters differ at {threads} threads");
        }
    }

    #[test]
    fn multi_fragment_parallel_matches_sequential() {
        let fa = wide_ucq();
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(101), v(2))], vec![0, 2])],
            vec![0, 2],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1, 2]);
        let profile = EngineProfile::mysql_like();
        let (seq, seq_counters) = eval(&q, &profile, 1).unwrap();
        let (par, par_counters) = eval(&q, &profile, 8).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq_counters, par_counters);
    }

    #[test]
    fn exhausted_permit_pool_degrades_to_sequential_correctness() {
        // Hog the process-wide pool, then run a parallel-profile query:
        // admission grants zero extra workers, the caller thread does
        // all the work, and the answer is still bit-identical.
        let q = StoreJucq::from_ucq(wide_ucq());
        let profile = EngineProfile::pg_like();
        let (seq, seq_counters) = eval(&q, &profile, 1).unwrap();
        let pool = crate::exec::pool::PermitPool::global();
        let hog = pool.try_acquire(pool.capacity());
        let (par, par_counters) = eval(&q, &profile, 8).unwrap();
        drop(hog);
        assert_eq!(seq, par);
        assert_eq!(seq_counters, par_counters);
    }

    #[test]
    fn budget_breach_on_one_worker_aborts_the_query() {
        // Each member yields 50 rows; the shared budget admits a couple
        // of held member results but not the fleet, so some worker's
        // reservation must push the cross-thread sum over the top and
        // the whole query aborts with the *originating* error.
        let q = StoreJucq::from_ucq(wide_ucq());
        let profile = EngineProfile::pg_like().with_memory_budget(120);
        let err = eval(&q, &profile, 4).unwrap_err();
        assert!(
            matches!(err, EngineError::MemoryBudgetExceeded { .. }),
            "expected a budget breach, got {err:?}"
        );
    }

    #[test]
    fn expired_deadline_aborts_all_workers() {
        let q = StoreJucq::from_ucq(wide_ucq());
        let profile = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let table = table();
        let stats = Statistics::build(&table);
        let plan = Planner::new(&table, &stats, &profile).plan(&q);
        let mut ctx = ExecContext::new(&profile);
        ctx.backdate(Duration::from_millis(2));
        let err = crate::plan::exec::execute(&table, &plan, &mut ctx, 4, None).unwrap_err();
        assert!(matches!(err, EngineError::Timeout { .. }), "got {err:?}");
    }

    #[test]
    fn profiled_parallel_run_reports_sequential_node_shape() {
        let q = StoreJucq::from_ucq(wide_ucq());
        let profile = EngineProfile::pg_like();
        let table = table();
        let stats = Statistics::build(&table);
        let plan = Planner::new(&table, &stats, &profile).plan(&q);
        let run = |threads: usize| {
            let mut ctx = ExecContext::with_profiling(&profile);
            crate::plan::exec::execute(&table, &plan, &mut ctx, threads, None).unwrap();
            ctx.take_nodes()
        };
        let seq = run(1);
        let par = run(8);
        let shape = |nodes: &[crate::exec::NodeProfile]| {
            nodes.iter().map(|n| (n.label.clone(), n.invocations, n.rows)).collect::<Vec<_>>()
        };
        assert_eq!(shape(&seq), shape(&par), "labels, invocations and rows match");
    }
}
