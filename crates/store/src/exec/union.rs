//! Union evaluation support: a UCQ fragment's result under set
//! semantics.
//!
//! Member results are deduplicated **streamingly** (hash-aggregation
//! style, like the engines the paper targets): peak memory is the
//! number of *distinct* rows, not the sum of member result sizes —
//! which for reformulated unions differ by orders of magnitude, since
//! members overlap heavily. The union driver itself lives in
//! [`crate::exec::parallel`], which folds lowered member plans into the
//! accumulator defined here, sequentially or across a worker pool.

use jucq_model::TermId;

use crate::error::EngineError;
use crate::exec::ExecContext;
use crate::relation::Relation;

/// Open-addressing set of row indices into an accumulating relation,
/// with Fx hashing over the row's ids. Avoids one allocation per row
/// (the rows live in the relation's flat buffer).
pub(crate) struct DedupAccumulator {
    rel: Relation,
    /// 0 = empty slot, otherwise row index + 1.
    slots: Vec<u32>,
    mask: usize,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn hash_row(row: &[TermId]) -> u64 {
    let mut h: u64 = row.len() as u64;
    for t in row {
        h = (h.rotate_left(5) ^ u64::from(t.raw())).wrapping_mul(SEED);
    }
    h
}

impl DedupAccumulator {
    /// An accumulator whose row buffer is pre-sized from the planner's
    /// union estimate (clamped by [`crate::exec::join::reserve_rows`]),
    /// recording the reservation in `rows_reserved`. The slot table
    /// still starts small and grows on demand — only the flat row
    /// storage is reserved, since that is where regrowth copies rows.
    pub(crate) fn with_est(
        vars: Vec<crate::ir::VarId>,
        est: Option<f64>,
        ctx: &mut ExecContext<'_>,
    ) -> Self {
        let reserve = crate::exec::join::reserve_rows(est);
        ctx.counters.rows_reserved += reserve as u64;
        DedupAccumulator {
            rel: Relation::with_capacity(vars, reserve),
            slots: vec![0; 64],
            mask: 63,
        }
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        self.mask = new_len - 1;
        self.slots = vec![0; new_len];
        for i in 0..self.rel.len() {
            let h = hash_row(self.rel.row(i)) as usize;
            let mut slot = h & self.mask;
            while self.slots[slot] != 0 {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = (i + 1) as u32;
        }
    }

    /// Insert `row` if unseen; returns `true` when it was new.
    pub(crate) fn insert(&mut self, row: &[TermId]) -> bool {
        // Zero-width (boolean) rows: keep at most one presence marker.
        if row.is_empty() && self.rel.vars().is_empty() {
            if self.rel.is_empty() {
                self.rel.push_row(row);
                return true;
            }
            return false;
        }
        if (self.rel.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let h = hash_row(row) as usize;
        let mut slot = h & self.mask;
        loop {
            match self.slots[slot] {
                0 => {
                    self.rel.push_row(row);
                    self.slots[slot] = self.rel.len() as u32;
                    return true;
                }
                idx => {
                    if self.rel.row(idx as usize - 1) == row {
                        return false;
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    fn into_relation(self) -> Relation {
        self.rel
    }

    pub(crate) fn len(&self) -> usize {
        self.rel.len()
    }
}

/// Merge one member's result into the accumulating union: count the
/// examined rows as deduplicated work, insert each (ticking the
/// liveness poll) and enforce the memory budget on the distinct rows
/// held so far. Shared by the sequential and parallel union paths so
/// both charge identical work.
pub(crate) fn merge_member(
    acc: &mut DedupAccumulator,
    r: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<(), EngineError> {
    if ctx.profile().vectorized {
        return crate::exec::batch::merge_member_batched(acc, r, ctx);
    }
    ctx.counters.tuples_deduped += r.len() as u64;
    for row in r.rows() {
        ctx.tick()?;
        acc.insert(row);
    }
    ctx.check_memory(acc.len())
}

/// Close a **borrowed** union: the zero-copy path for a single-member
/// fragment whose member plan is
/// [distinct by construction](crate::plan::PlanNode::distinct_by_construction).
/// The member result is the union result — no dedup accumulator is
/// built, no rows are hashed or copied; the borrow is counted in
/// `scan_rows_borrowed` and the memory budget still sees the held rows.
/// Taken only when the profile's `order_aware` knob is on and the
/// profile does not force derived-table materialization.
pub(crate) fn borrow_member(
    rel: Relation,
    op: Option<std::time::Instant>,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.counters.scan_rows_borrowed += rel.len() as u64;
    ctx.check_memory(rel.len())?;
    ctx.op_finish(op, "union", rel.len() as u64);
    Ok(rel)
}

/// Whether `task`'s union may take the [`borrow_member`] path: one
/// member, provably distinct rows, order-aware execution enabled, and
/// no profile-mandated derived-table copy.
pub(crate) fn borrowable(members: &[crate::plan::PlanNode], ctx: &ExecContext<'_>) -> bool {
    ctx.profile().order_aware
        && !ctx.profile().materialize_all_unions
        && members.len() == 1
        && members[0].distinct_by_construction()
}

/// Close an accumulated union: apply the profile's derived-table
/// materialization (an extra full copy) when configured, and record the
/// `union` operator node.
pub(crate) fn finish_union(
    acc: DedupAccumulator,
    op: Option<std::time::Instant>,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let mut out = acc.into_relation();
    if ctx.profile().materialize_all_unions {
        ctx.counters.tuples_materialized += out.len() as u64;
        ctx.check_memory(out.len())?;
        out = out.clone();
    }
    ctx.op_finish(op, "union", out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Store;
    use crate::error::EngineError;
    use crate::ir::{PatternTerm, StoreCq, StorePattern, StoreUcq, VarId};
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn store(profile: EngineProfile) -> Store {
        Store::from_triples(&[t(1, 10, 2), t(1, 11, 2), t(3, 10, 4), t(5, 12, 6)], profile)
    }

    #[test]
    fn union_merges_and_dedups() {
        // {?x 10 ?y} ∪ {?x 11 ?y}: (1,2) appears via both members.
        let s = store(EngineProfile::pg_like());
        let ucq = StoreUcq::new(
            vec![
                StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]),
                StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1]),
            ],
            vec![0, 1],
        );
        let mut r = s.eval_ucq(&ucq).unwrap().relation;
        r.sort();
        assert_eq!(r.to_rows(), vec![vec![id(1), id(2)], vec![id(3), id(4)]]);
    }

    #[test]
    fn empty_union_yields_empty_relation() {
        let s = store(EngineProfile::pg_like());
        let ucq = StoreUcq::new(vec![], vec![0]);
        let r = s.eval_ucq(&ucq).unwrap().relation;
        assert!(r.is_empty());
        assert_eq!(r.vars(), &[0]);
    }

    #[test]
    fn materializing_profile_counts_extra_copy() {
        let ucq = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let pg = store(EngineProfile::pg_like()).eval_ucq(&ucq).unwrap();
        let my = store(EngineProfile::mysql_like()).eval_ucq(&ucq).unwrap();
        assert!(my.counters.tuples_materialized > pg.counters.tuples_materialized);
    }

    #[test]
    fn memory_budget_counts_distinct_rows_only() {
        let member =
            StoreCq::with_var_head(vec![StorePattern::new(v(0), v(1), v(2))], vec![0, 1, 2]);
        let ucq = StoreUcq::new(vec![member.clone(), member.clone()], vec![0, 1, 2]);
        // The members accumulate to 4 distinct rows: budget 4 passes...
        let s = store(EngineProfile::pg_like().with_memory_budget(4));
        assert_eq!(s.eval_ucq(&ucq).unwrap().relation.len(), 4);
        // ...and budget 3 fails (streaming dedup, not sum-of-members).
        let s = store(EngineProfile::pg_like().with_memory_budget(3));
        assert!(matches!(s.eval_ucq(&ucq), Err(EngineError::MemoryBudgetExceeded { .. })));
    }

    #[test]
    fn boolean_unions_collapse_to_one_marker() {
        let s = store(EngineProfile::pg_like());
        let member = StoreCq::new(vec![StorePattern::new(v(0), c(10), v(1))], vec![]);
        let distinct = StoreCq::new(vec![StorePattern::new(v(0), c(12), v(1))], vec![]);
        let ucq = StoreUcq::new(vec![member, distinct], vec![]);
        let r = s.eval_ucq(&ucq).unwrap().relation;
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn single_member_scan_union_borrows_rows() {
        // One member, plain scan chain: the union result is the member
        // result — no dedup pass, rows counted as borrowed. Knob off
        // takes the accumulator path and answers identically.
        let ucq = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let on = store(EngineProfile::pg_like()).eval_ucq(&ucq).unwrap();
        let off = store(EngineProfile::pg_like().with_order_aware(false)).eval_ucq(&ucq).unwrap();
        assert_eq!(on.counters.scan_rows_borrowed, 2, "both p10 rows borrowed");
        assert_eq!(off.counters.scan_rows_borrowed, 0, "knob off copies through the accumulator");
        let (mut a, mut b) = (on.relation, off.relation);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_member_union_never_borrows() {
        // Overlapping members must still deduplicate; the borrow path
        // is reserved for provably distinct single-member fragments.
        // (Two *distinct* members — identical ones would be collapsed
        // to a single member by the planner's rewrite pass.)
        let ucq = StoreUcq::new(
            vec![
                StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]),
                StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1]),
            ],
            vec![0, 1],
        );
        let out = store(EngineProfile::pg_like()).eval_ucq(&ucq).unwrap();
        assert_eq!(out.counters.scan_rows_borrowed, 0);
        assert_eq!(out.relation.len(), 2, "(1,2) reached via both members deduplicated");
    }

    #[test]
    fn projection_dropping_a_variable_is_not_distinct() {
        // (?0 #u12 ?1) with head [?1] projects away ?0: objects repeat
        // (both 0 and 1 have two p12 edges in `store`), so the member is
        // not distinct-by-construction and the accumulator must run.
        let ucq = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(12), v(1))], vec![1])],
            vec![1],
        );
        let s =
            Store::from_triples(&[t(1, 12, 7), t(2, 12, 7), t(3, 12, 8)], EngineProfile::pg_like());
        let out = s.eval_ucq(&ucq).unwrap();
        assert_eq!(out.counters.scan_rows_borrowed, 0, "lossy projection takes the dedup path");
        assert_eq!(out.relation.len(), 2, "duplicate object deduplicated");
    }

    #[test]
    fn accumulator_grows_correctly() {
        // Force several growth rounds and verify exact dedup.
        let profile = EngineProfile::pg_like();
        let mut ctx = crate::exec::ExecContext::new(&profile);
        let mut acc = DedupAccumulator::with_est(vec![0, 1], None, &mut ctx);
        for i in 0..500u32 {
            let row = [id(i % 250), id(i % 7)];
            acc.insert(&row);
            // Every row twice.
            assert!(!acc.insert(&row), "immediate duplicate rejected");
        }
        let mut distinct = std::collections::HashSet::new();
        for i in 0..500u32 {
            distinct.insert((i % 250, i % 7));
        }
        assert_eq!(acc.len(), distinct.len());
    }
}
