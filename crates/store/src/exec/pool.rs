//! Process-wide worker-permit pool: one budget for every query's
//! parallelism.
//!
//! Each query's (fragment × member) task list is already pulled
//! morsel-style by a work-stealing claim counter
//! ([`super::parallel::eval_unions`]); what used to be unbounded was
//! the number of *pullers*. Every concurrent query spawning its
//! profile's full `parallelism` oversubscribes the machine as soon as
//! a server runs two queries at once — 8 clients × 8 workers = 64
//! runnable threads on 8 cores, all paying context-switch and cache
//! churn for nothing.
//!
//! The permit pool makes worker admission global. A query's caller
//! thread always runs as one worker for free (so progress never
//! depends on the pool), and each *extra* worker requires a permit.
//! Acquisition is strictly non-blocking: under contention queries
//! simply run narrower — degrading to sequential member evaluation in
//! the worst case — instead of queueing behind each other's fan-out.
//! Permits release on drop (RAII), including on panic and error
//! unwinds, so a failed query can never leak capacity.
//!
//! The determinism story is unchanged: permits only size the worker
//! pool, and the order-stable merge makes rows, counters and node
//! profiles identical whatever that size turns out to be.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A fixed budget of worker permits shared by every query in the
/// process.
pub struct PermitPool {
    capacity: usize,
    available: AtomicUsize,
}

impl PermitPool {
    /// A pool with `capacity` permits (minimum one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PermitPool { capacity, available: AtomicUsize::new(capacity) }
    }

    /// The process-wide pool. Sized to the machine's parallelism (via
    /// `JUCQ_THREADS` when set, hardware otherwise), floor 4 so small
    /// machines still exercise concurrent paths.
    pub fn global() -> &'static PermitPool {
        static GLOBAL: OnceLock<PermitPool> = OnceLock::new();
        GLOBAL.get_or_init(|| PermitPool::new(crate::profile::default_parallelism().max(4)))
    }

    /// Total permits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently unclaimed (racy by nature; informational).
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed)
    }

    /// Claim up to `want` permits without blocking. The grant may be
    /// anything from 0 to `want`; callers must run correctly (if
    /// narrower) with whatever they get.
    pub fn try_acquire(&self, want: usize) -> Permits<'_> {
        let mut current = self.available.load(Ordering::Relaxed);
        loop {
            let grant = want.min(current);
            if grant == 0 {
                return Permits { pool: self, count: 0 };
            }
            match self.available.compare_exchange_weak(
                current,
                current - grant,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Permits { pool: self, count: grant },
                Err(observed) => current = observed,
            }
        }
    }

    fn release(&self, count: usize) {
        if count > 0 {
            self.available.fetch_add(count, Ordering::Release);
        }
    }
}

/// A grant of extra-worker permits; returns them to the pool on drop.
pub struct Permits<'a> {
    pool: &'a PermitPool,
    count: usize,
}

impl Permits<'_> {
    /// Extra workers this grant admits (0 = run sequentially).
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Drop for Permits<'_> {
    fn drop(&mut self) {
        self.pool.release(self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_bounded_and_released_on_drop() {
        let pool = PermitPool::new(3);
        assert_eq!(pool.capacity(), 3);
        let a = pool.try_acquire(2);
        assert_eq!(a.count(), 2);
        let b = pool.try_acquire(2);
        assert_eq!(b.count(), 1, "only one permit left");
        let c = pool.try_acquire(1);
        assert_eq!(c.count(), 0, "exhausted pools grant zero, never block");
        drop(a);
        let d = pool.try_acquire(5);
        assert_eq!(d.count(), 2, "dropped permits return to the pool");
        drop(b);
        drop(c);
        drop(d);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn permits_survive_panics_via_drop() {
        let pool = PermitPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = pool.try_acquire(2);
            panic!("worker died");
        }));
        assert!(result.is_err());
        assert_eq!(pool.available(), 2, "unwind returned the permits");
    }

    #[test]
    fn concurrent_acquire_release_never_overshoots() {
        let pool = PermitPool::new(4);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        let g = pool.try_acquire(3);
                        assert!(g.count() <= 3);
                        std::hint::spin_loop();
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(pool.available(), 4, "all permits home after the storm");
    }

    #[test]
    fn global_pool_has_a_usable_floor() {
        assert!(PermitPool::global().capacity() >= 4);
    }
}
