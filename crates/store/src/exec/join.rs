//! Joins of materialized relations (the ⋈ between JUCQ fragments).
//!
//! Three algorithms, selected by the engine profile: hash join (build on
//! the smaller side), sort-merge join, and block-nested-loop join (the
//! deliberately weak algorithm of the MySQL-like profile). All three
//! compute the natural join on the variables shared by the two schemas;
//! with no shared variable they degrade to a cartesian product.

use jucq_model::{FxHashMap, TermId};

use crate::error::EngineError;
use crate::exec::{batch, ExecContext};
use crate::ir::VarId;
use crate::profile::JoinAlgo;
use crate::relation::Relation;

/// Join `left` and `right` with `algo` (the plan node's fragment-join
/// algorithm, chosen from the profile at planning time).
pub fn fragment_join(
    algo: JoinAlgo,
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let op = ctx.op_start();
    let out = match algo {
        JoinAlgo::Hash => hash_join(left, right, ctx),
        JoinAlgo::SortMerge => sort_merge_join(left, right, ctx),
        JoinAlgo::BlockNestedLoop => block_nested_loop_join(left, right, ctx),
    }?;
    ctx.op_finish(op, op_name(algo), out.len() as u64);
    Ok(out)
}

/// Stable operator name for a join algorithm, used in node labels.
pub fn op_name(algo: JoinAlgo) -> &'static str {
    match algo {
        JoinAlgo::Hash => "hash_join",
        JoinAlgo::SortMerge => "sort_merge_join",
        JoinAlgo::BlockNestedLoop => "block_nested_loop_join",
    }
}

/// The join plan shared by all algorithms: key columns on both sides and
/// the output schema (left columns ++ right non-key columns). Shared
/// with the batched kernels in [`crate::exec::batch`].
pub(crate) struct JoinPlan {
    pub(crate) left_key: Vec<usize>,
    pub(crate) right_key: Vec<usize>,
    pub(crate) right_carry: Vec<usize>,
    pub(crate) out_vars: Vec<VarId>,
}

pub(crate) fn plan(left: &Relation, right: &Relation) -> JoinPlan {
    let shared: Vec<VarId> =
        left.vars().iter().copied().filter(|v| right.column_of(*v).is_some()).collect();
    let left_key: Vec<usize> =
        shared.iter().map(|v| left.column_of(*v).expect("shared var")).collect();
    let right_key: Vec<usize> =
        shared.iter().map(|v| right.column_of(*v).expect("shared var")).collect();
    let right_carry: Vec<usize> = right
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| !shared.contains(v))
        .map(|(i, _)| i)
        .collect();
    let mut out_vars = left.vars().to_vec();
    out_vars.extend(right_carry.iter().map(|&i| right.vars()[i]));
    JoinPlan { left_key, right_key, right_carry, out_vars }
}

fn emit(
    out: &mut Relation,
    row_buf: &mut Vec<TermId>,
    lrow: &[TermId],
    rrow: &[TermId],
    plan: &JoinPlan,
) {
    row_buf.clear();
    row_buf.extend_from_slice(lrow);
    row_buf.extend(plan.right_carry.iter().map(|&i| rrow[i]));
    out.push_row(row_buf);
}

/// Hash join: build a table on the smaller input, probe with the larger.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::hash_join_batched(left, right, ctx);
    }
    ctx.check_deadline()?;
    let p = plan(left, right);
    let mut out = Relation::empty(p.out_vars.clone());
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }
    // Build on the smaller side; probe from the larger. We always emit
    // rows as (left ++ right-carry), so the build/probe choice only
    // affects which side is hashed.
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left { (left, right) } else { (right, left) };
    let (build_key, probe_key) =
        if build_left { (&p.left_key, &p.right_key) } else { (&p.right_key, &p.left_key) };
    let mut table: FxHashMap<Vec<TermId>, Vec<usize>> = FxHashMap::default();
    for (i, row) in build.rows().enumerate() {
        ctx.tick()?;
        let key: Vec<TermId> = build_key.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i);
    }
    ctx.counters.tuples_materialized += build.len() as u64;
    ctx.check_memory(build.len())?;
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());
    let mut key_buf: Vec<TermId> = Vec::with_capacity(probe_key.len());
    for prow in probe.rows() {
        ctx.tick()?;
        key_buf.clear();
        key_buf.extend(probe_key.iter().map(|&c| prow[c]));
        if let Some(matches) = table.get(&key_buf) {
            for &bi in matches {
                ctx.tick()?;
                ctx.counters.tuples_joined += 1;
                let brow = build.row(bi);
                let (lrow, rrow) = if build_left { (brow, prow) } else { (prow, brow) };
                emit(&mut out, &mut row_buf, lrow, rrow, &p);
            }
            ctx.check_memory(out.len())?;
        }
    }
    Ok(out)
}

/// Sort-merge join: sort both inputs on the key, merge equal runs.
pub fn sort_merge_join(
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::sort_merge_join_batched(left, right, ctx);
    }
    ctx.check_deadline()?;
    let p = plan(left, right);
    let mut out = Relation::empty(p.out_vars.clone());
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }
    let key_of =
        |row: &[TermId], cols: &[usize]| -> Vec<TermId> { cols.iter().map(|&c| row[c]).collect() };
    let mut lids: Vec<usize> = (0..left.len()).collect();
    lids.sort_unstable_by_key(|&i| key_of(left.row(i), &p.left_key));
    let mut rids: Vec<usize> = (0..right.len()).collect();
    rids.sort_unstable_by_key(|&i| key_of(right.row(i), &p.right_key));
    ctx.counters.tuples_materialized += (left.len() + right.len()) as u64;
    ctx.check_memory(left.len() + right.len())?;

    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());
    let (mut i, mut j) = (0usize, 0usize);
    while i < lids.len() && j < rids.len() {
        ctx.tick()?;
        let lk = key_of(left.row(lids[i]), &p.left_key);
        let rk = key_of(right.row(rids[j]), &p.right_key);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the equal runs on both sides.
                let i_end = (i..lids.len())
                    .find(|&x| key_of(left.row(lids[x]), &p.left_key) != lk)
                    .unwrap_or(lids.len());
                let j_end = (j..rids.len())
                    .find(|&x| key_of(right.row(rids[x]), &p.right_key) != rk)
                    .unwrap_or(rids.len());
                for &li in &lids[i..i_end] {
                    for &rj in &rids[j..j_end] {
                        ctx.tick()?;
                        ctx.counters.tuples_joined += 1;
                        emit(&mut out, &mut row_buf, left.row(li), right.row(rj), &p);
                    }
                }
                ctx.check_memory(out.len())?;
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(out)
}

/// Block-nested-loop join: compare every pair of rows. Quadratic by
/// design — the weak spot of the MySQL-like profile.
pub fn block_nested_loop_join(
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::block_nested_loop_join_batched(left, right, ctx);
    }
    ctx.check_deadline()?;
    let p = plan(left, right);
    let mut out = Relation::empty(p.out_vars.clone());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());
    for lrow in left.rows() {
        for rrow in right.rows() {
            ctx.tick()?;
            if p.left_key.iter().zip(&p.right_key).all(|(&lc, &rc)| lrow[lc] == rrow[rc]) {
                ctx.counters.tuples_joined += 1;
                emit(&mut out, &mut row_buf, lrow, rrow, &p);
            }
        }
        ctx.check_memory(out.len())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use std::time::Duration;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn rel(vars: Vec<VarId>, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::empty(vars);
        for row in rows {
            let ids: Vec<TermId> = row.iter().map(|&x| id(x)).collect();
            r.push_row(&ids);
        }
        r
    }

    fn all_algos(left: &Relation, right: &Relation) -> Vec<Relation> {
        let profile = EngineProfile::pg_like();
        let mut out = Vec::new();
        for f in [hash_join, sort_merge_join, block_nested_loop_join] {
            let mut ctx = ExecContext::new(&profile);
            let mut r = f(left, right, &mut ctx).expect("join succeeds");
            r.sort();
            out.push(r);
        }
        out
    }

    #[test]
    fn natural_join_on_one_shared_var() {
        let l = rel(vec![0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300]]);
        let results = all_algos(&l, &r);
        for res in &results {
            assert_eq!(res.vars(), &[0, 1, 2]);
            assert_eq!(
                res.to_rows(),
                vec![
                    vec![id(1), id(10), id(100)],
                    vec![id(1), id(10), id(101)],
                    vec![id(3), id(30), id(300)],
                ]
            );
        }
    }

    #[test]
    fn join_on_two_shared_vars() {
        let l = rel(vec![0, 1], &[&[1, 2], &[1, 3]]);
        let r = rel(vec![0, 1, 2], &[&[1, 2, 9], &[1, 4, 8]]);
        for res in all_algos(&l, &r) {
            assert_eq!(res.to_rows(), vec![vec![id(1), id(2), id(9)]]);
        }
    }

    #[test]
    fn disjoint_schemas_give_cartesian_product() {
        let l = rel(vec![0], &[&[1], &[2]]);
        let r = rel(vec![1], &[&[7], &[8]]);
        for res in all_algos(&l, &r) {
            assert_eq!(res.len(), 4);
        }
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let l = rel(vec![0, 1], &[]);
        let r = rel(vec![1], &[&[7]]);
        for res in all_algos(&l, &r) {
            assert!(res.is_empty());
            assert_eq!(res.vars(), &[0, 1]);
        }
    }

    #[test]
    fn duplicates_multiply() {
        let l = rel(vec![0], &[&[1], &[1]]);
        let r = rel(vec![0, 1], &[&[1, 5], &[1, 5]]);
        for res in all_algos(&l, &r) {
            assert_eq!(res.len(), 4, "bag semantics: 2×2 matches");
        }
    }

    #[test]
    fn counters_consistent_across_algorithms() {
        let l = rel(vec![0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300], &[40, 400]]);
        let profile = EngineProfile::pg_like();
        let mut joined = Vec::new();
        let mut materialized = Vec::new();
        for f in [hash_join, sort_merge_join, block_nested_loop_join] {
            let mut ctx = ExecContext::new(&profile);
            let out = f(&l, &r, &mut ctx).expect("join succeeds");
            assert_eq!(
                ctx.counters.tuples_joined,
                out.len() as u64,
                "tuples_joined counts emitted rows"
            );
            assert_eq!(ctx.counters.tuples_scanned, 0, "fragment joins scan no indexes");
            assert_eq!(ctx.counters.tuples_deduped, 0, "fragment joins do not dedup");
            joined.push(ctx.counters.tuples_joined);
            materialized.push(ctx.counters.tuples_materialized);
        }
        // The same logical join emits the same rows under every algorithm.
        assert!(joined.iter().all(|&j| j == joined[0]), "{joined:?}");
        // Materialization reflects each algorithm's working set: hash
        // builds on the smaller side, sort-merge sorts both inputs,
        // block-nested-loop streams both.
        assert_eq!(materialized[0], l.len().min(r.len()) as u64);
        assert_eq!(materialized[1], (l.len() + r.len()) as u64);
        assert_eq!(materialized[2], 0);
    }

    #[test]
    fn memory_budget_fails_large_builds() {
        let l = rel(vec![0], &[&[1], &[2], &[3]]);
        let r = rel(vec![0], &[&[1], &[2], &[3], &[4]]);
        let profile = EngineProfile::pg_like().with_memory_budget(2);
        let mut ctx = ExecContext::new(&profile);
        assert!(matches!(
            hash_join(&l, &r, &mut ctx),
            Err(EngineError::MemoryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn timeout_aborts_block_nested_loop() {
        let rows: Vec<Vec<u32>> = (0..2000).map(|i| vec![i]).collect();
        let slices: Vec<&[u32]> = rows.iter().map(Vec::as_slice).collect();
        let l = rel(vec![0], &slices);
        let r = rel(vec![1], &slices);
        let profile = EngineProfile::mysql_like().with_timeout(Duration::from_millis(0));
        // Pre-expired backdated clock: deterministic without sleeping.
        let mut ctx = ExecContext::new(&profile);
        ctx.backdate(Duration::from_millis(1));
        assert!(matches!(
            block_nested_loop_join(&l, &r, &mut ctx),
            Err(EngineError::Timeout { .. })
        ));
    }
}
