//! Joins of materialized relations (the ⋈ between JUCQ fragments).
//!
//! Three algorithms, selected by the engine profile: hash join (build on
//! the smaller side), sort-merge join, and block-nested-loop join (the
//! deliberately weak algorithm of the MySQL-like profile). All three
//! compute the natural join on the variables shared by the two schemas;
//! with no shared variable they degrade to a cartesian product.

use jucq_model::{FxHashMap, TermId};

use crate::error::EngineError;
use crate::exec::{batch, ExecContext};
use crate::ir::VarId;
use crate::profile::JoinAlgo;
use crate::relation::Relation;

/// Per-join options threaded from the plan node into a fragment join:
/// the order-aware planner's merge sort-elision flags and the output
/// cardinality estimate used to pre-size the result.
#[derive(Debug, Default, Clone, Copy)]
pub struct JoinOpts {
    /// Which merge-join inputs (left, right) the planner proved already
    /// sorted on the join key (ignored by the other algorithms). The
    /// kernel verifies the claim with one linear pass and falls back to
    /// sorting if it does not hold, so a wrong flag costs performance,
    /// never correctness.
    pub elide: (bool, bool),
    /// Estimated output rows.
    pub est: Option<f64>,
}

/// Input-size skew ratio at which the merge advances the larger side
/// with galloping (exponential-search) seeks instead of one row at a
/// time.
pub(crate) const GALLOP_SKEW: usize = 8;

/// Rows of output capacity to reserve for a cardinality estimate,
/// clamped so a wild over-estimate cannot allocate unboundedly ahead of
/// the first memory check.
pub(crate) fn reserve_rows(est: Option<f64>) -> usize {
    const MAX_RESERVE: usize = 1 << 20;
    est.map(|e| (e.max(0.0) as usize).min(MAX_RESERVE)).unwrap_or(0)
}

/// An output relation pre-sized from the plan estimate, recording the
/// reservation so reserved-vs-actual can be compared downstream.
pub(crate) fn sized_output(
    vars: Vec<VarId>,
    est: Option<f64>,
    ctx: &mut ExecContext<'_>,
) -> Relation {
    let reserve = reserve_rows(est);
    ctx.counters.rows_reserved += reserve as u64;
    Relation::with_capacity(vars, reserve)
}

/// First index in `[lo, hi)` satisfying `pred`, assuming `pred` is
/// monotone (false…false, then true…true) and `pred(lo)` is false:
/// probe at exponentially growing offsets from `lo`, then binary-search
/// the crossed window. Returns `hi` when no index satisfies `pred`.
pub(crate) fn gallop_to(lo: usize, hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    let mut prev = lo;
    let mut step = 1usize;
    let mut top = hi;
    loop {
        let cand = match lo.checked_add(step) {
            Some(c) if c < hi => c,
            _ => break,
        };
        if pred(cand) {
            top = cand;
            break;
        }
        prev = cand;
        step <<= 1;
    }
    // First true index in (prev, top], or `hi` when all remain false.
    let (mut a, mut b) = (prev + 1, top);
    while a < b {
        let m = a + (b - a) / 2;
        if pred(m) {
            b = m;
        } else {
            a = m + 1;
        }
    }
    a
}

/// Join `left` and `right` with `algo` (the plan node's fragment-join
/// algorithm, chosen from the profile at planning time).
pub fn fragment_join(
    algo: JoinAlgo,
    left: &Relation,
    right: &Relation,
    opts: JoinOpts,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let op = ctx.op_start();
    let out = match algo {
        JoinAlgo::Hash => hash_join_opts(left, right, opts, ctx),
        JoinAlgo::SortMerge => sort_merge_join_opts(left, right, opts, ctx),
        JoinAlgo::BlockNestedLoop => block_nested_loop_join(left, right, ctx),
    }?;
    ctx.op_finish(op, op_name(algo), out.len() as u64);
    Ok(out)
}

/// Stable operator name for a join algorithm, used in node labels.
pub fn op_name(algo: JoinAlgo) -> &'static str {
    match algo {
        JoinAlgo::Hash => "hash_join",
        JoinAlgo::SortMerge => "sort_merge_join",
        JoinAlgo::BlockNestedLoop => "block_nested_loop_join",
    }
}

/// The join plan shared by all algorithms: key columns on both sides and
/// the output schema (left columns ++ right non-key columns). Shared
/// with the batched kernels in [`crate::exec::batch`].
pub(crate) struct JoinPlan {
    pub(crate) left_key: Vec<usize>,
    pub(crate) right_key: Vec<usize>,
    pub(crate) right_carry: Vec<usize>,
    pub(crate) out_vars: Vec<VarId>,
}

pub(crate) fn plan(left: &Relation, right: &Relation) -> JoinPlan {
    let shared: Vec<VarId> =
        left.vars().iter().copied().filter(|v| right.column_of(*v).is_some()).collect();
    let left_key: Vec<usize> =
        shared.iter().map(|v| left.column_of(*v).expect("shared var")).collect();
    let right_key: Vec<usize> =
        shared.iter().map(|v| right.column_of(*v).expect("shared var")).collect();
    let right_carry: Vec<usize> = right
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| !shared.contains(v))
        .map(|(i, _)| i)
        .collect();
    let mut out_vars = left.vars().to_vec();
    out_vars.extend(right_carry.iter().map(|&i| right.vars()[i]));
    JoinPlan { left_key, right_key, right_carry, out_vars }
}

fn emit(
    out: &mut Relation,
    row_buf: &mut Vec<TermId>,
    lrow: &[TermId],
    rrow: &[TermId],
    plan: &JoinPlan,
) {
    row_buf.clear();
    row_buf.extend_from_slice(lrow);
    row_buf.extend(plan.right_carry.iter().map(|&i| rrow[i]));
    out.push_row(row_buf);
}

/// Hash join: build a table on the smaller input, probe with the larger.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    hash_join_opts(left, right, JoinOpts::default(), ctx)
}

/// [`hash_join`] with pre-sized output from the plan estimate.
pub fn hash_join_opts(
    left: &Relation,
    right: &Relation,
    opts: JoinOpts,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::hash_join_batched(left, right, opts, ctx);
    }
    ctx.check_deadline()?;
    let p = plan(left, right);
    let mut out = sized_output(p.out_vars.clone(), opts.est, ctx);
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }
    // Build on the smaller side; probe from the larger. We always emit
    // rows as (left ++ right-carry), so the build/probe choice only
    // affects which side is hashed.
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left { (left, right) } else { (right, left) };
    let (build_key, probe_key) =
        if build_left { (&p.left_key, &p.right_key) } else { (&p.right_key, &p.left_key) };
    let mut table: FxHashMap<Vec<TermId>, Vec<usize>> = FxHashMap::default();
    for (i, row) in build.rows().enumerate() {
        ctx.tick()?;
        let key: Vec<TermId> = build_key.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i);
    }
    ctx.counters.tuples_materialized += build.len() as u64;
    ctx.check_memory(build.len())?;
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());
    let mut key_buf: Vec<TermId> = Vec::with_capacity(probe_key.len());
    for prow in probe.rows() {
        ctx.tick()?;
        key_buf.clear();
        key_buf.extend(probe_key.iter().map(|&c| prow[c]));
        if let Some(matches) = table.get(&key_buf) {
            for &bi in matches {
                ctx.tick()?;
                ctx.counters.tuples_joined += 1;
                let brow = build.row(bi);
                let (lrow, rrow) = if build_left { (brow, prow) } else { (prow, brow) };
                emit(&mut out, &mut row_buf, lrow, rrow, &p);
            }
            ctx.check_memory(out.len())?;
        }
    }
    Ok(out)
}

/// Sort-merge join: sort both inputs on the key, merge equal runs.
pub fn sort_merge_join(
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    sort_merge_join_opts(left, right, JoinOpts::default(), ctx)
}

/// [`sort_merge_join`] with order-aware options: a side the planner
/// proved sorted skips its sort (after one cheap linear verification —
/// a violated claim falls back to sorting), and when input sizes are
/// skewed ≥ [`GALLOP_SKEW`]× the larger side advances with galloping
/// seeks instead of row-at-a-time stepping.
pub fn sort_merge_join_opts(
    left: &Relation,
    right: &Relation,
    opts: JoinOpts,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::sort_merge_join_batched(left, right, opts, ctx);
    }
    ctx.check_deadline()?;
    let p = plan(left, right);
    let mut out = sized_output(p.out_vars.clone(), opts.est, ctx);
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }
    let key_of =
        |row: &[TermId], cols: &[usize]| -> Vec<TermId> { cols.iter().map(|&c| row[c]).collect() };
    // Longest key prefix the input already arrives sorted on, found in
    // one linear pass (early exit once no prefix survives).
    let sorted_prefix = |rel: &Relation, key: &[usize]| -> usize {
        let mut j = key.len();
        for x in 1..rel.len() {
            let (a, b) = (rel.row(x - 1), rel.row(x));
            for (c, &col) in key.iter().enumerate().take(j) {
                match a[col].cmp(&b[col]) {
                    std::cmp::Ordering::Less => break,
                    std::cmp::Ordering::Equal => continue,
                    std::cmp::Ordering::Greater => {
                        j = c;
                        break;
                    }
                }
            }
            if j == 0 {
                break;
            }
        }
        j
    };
    let aware = ctx.profile().order_aware;
    let order_side = |rel: &Relation, key: &[usize], elide: bool| -> (Vec<usize>, bool) {
        let mut ids: Vec<usize> = (0..rel.len()).collect();
        if aware {
            if rel.len() <= 1 {
                return (ids, elide);
            }
            let j = sorted_prefix(rel, key);
            if j == key.len() {
                // Fully sorted: merge in input order. Only a
                // planner-claimed elision is counted (and exempted
                // from the materialization charge) — an input sorted
                // by coincidence still skips the sort, silently.
                return (ids, elide);
            }
            if j > 0 {
                // Sorted on a strict key prefix: sort only within the
                // runs of equal prefix — O(n log run) not O(n log n).
                let mut s = 0;
                while s < ids.len() {
                    let mut e = s + 1;
                    while e < ids.len()
                        && key[..j].iter().all(|&c| rel.row(ids[s])[c] == rel.row(ids[e])[c])
                    {
                        e += 1;
                    }
                    ids[s..e].sort_unstable_by_key(|&i| key_of(rel.row(i), key));
                    s = e;
                }
                return (ids, false);
            }
        } else if elide
            && (1..rel.len()).all(|x| key_of(rel.row(x - 1), key) <= key_of(rel.row(x), key))
        {
            return (ids, true);
        }
        ids.sort_unstable_by_key(|&i| key_of(rel.row(i), key));
        (ids, false)
    };
    let (lids, l_elided) = order_side(left, &p.left_key, opts.elide.0);
    let (rids, r_elided) = order_side(right, &p.right_key, opts.elide.1);
    // An elided side is merged in input order — only sides actually
    // sorted here are charged as materialized working set.
    let mut charged = 0usize;
    for (elided, n) in [(l_elided, left.len()), (r_elided, right.len())] {
        if elided {
            ctx.counters.sorts_elided += 1;
        } else {
            charged += n;
        }
    }
    ctx.counters.tuples_materialized += charged as u64;
    ctx.check_memory(left.len() + right.len())?;
    // Galloping is an order-aware execution feature: with the knob off
    // (`JUCQ_ORDER=0`) the merge steps one row at a time.
    let gallop = ctx.profile().order_aware;
    let gallop_l = gallop && left.len() >= GALLOP_SKEW * right.len();
    let gallop_r = gallop && right.len() >= GALLOP_SKEW * left.len();

    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());
    let (mut i, mut j) = (0usize, 0usize);
    while i < lids.len() && j < rids.len() {
        ctx.tick()?;
        let lk = key_of(left.row(lids[i]), &p.left_key);
        let rk = key_of(right.row(rids[j]), &p.right_key);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => {
                if gallop_l {
                    i = gallop_to(i, lids.len(), |x| key_of(left.row(lids[x]), &p.left_key) >= rk);
                    ctx.counters.gallop_seeks += 1;
                } else {
                    i += 1;
                }
            }
            std::cmp::Ordering::Greater => {
                if gallop_r {
                    j = gallop_to(j, rids.len(), |x| {
                        key_of(right.row(rids[x]), &p.right_key) >= lk
                    });
                    ctx.counters.gallop_seeks += 1;
                } else {
                    j += 1;
                }
            }
            std::cmp::Ordering::Equal => {
                // Find the equal runs on both sides.
                let i_end = (i..lids.len())
                    .find(|&x| key_of(left.row(lids[x]), &p.left_key) != lk)
                    .unwrap_or(lids.len());
                let j_end = (j..rids.len())
                    .find(|&x| key_of(right.row(rids[x]), &p.right_key) != rk)
                    .unwrap_or(rids.len());
                for &li in &lids[i..i_end] {
                    for &rj in &rids[j..j_end] {
                        ctx.tick()?;
                        ctx.counters.tuples_joined += 1;
                        emit(&mut out, &mut row_buf, left.row(li), right.row(rj), &p);
                    }
                }
                ctx.check_memory(out.len())?;
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(out)
}

/// Block-nested-loop join: compare every pair of rows. Quadratic by
/// design — the weak spot of the MySQL-like profile.
pub fn block_nested_loop_join(
    left: &Relation,
    right: &Relation,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::block_nested_loop_join_batched(left, right, ctx);
    }
    ctx.check_deadline()?;
    let p = plan(left, right);
    let mut out = Relation::empty(p.out_vars.clone());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());
    for lrow in left.rows() {
        for rrow in right.rows() {
            ctx.tick()?;
            if p.left_key.iter().zip(&p.right_key).all(|(&lc, &rc)| lrow[lc] == rrow[rc]) {
                ctx.counters.tuples_joined += 1;
                emit(&mut out, &mut row_buf, lrow, rrow, &p);
            }
        }
        ctx.check_memory(out.len())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use std::time::Duration;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn rel(vars: Vec<VarId>, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::empty(vars);
        for row in rows {
            let ids: Vec<TermId> = row.iter().map(|&x| id(x)).collect();
            r.push_row(&ids);
        }
        r
    }

    fn all_algos(left: &Relation, right: &Relation) -> Vec<Relation> {
        let profile = EngineProfile::pg_like();
        let mut out = Vec::new();
        for f in [hash_join, sort_merge_join, block_nested_loop_join] {
            let mut ctx = ExecContext::new(&profile);
            let mut r = f(left, right, &mut ctx).expect("join succeeds");
            r.sort();
            out.push(r);
        }
        out
    }

    #[test]
    fn natural_join_on_one_shared_var() {
        let l = rel(vec![0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300]]);
        let results = all_algos(&l, &r);
        for res in &results {
            assert_eq!(res.vars(), &[0, 1, 2]);
            assert_eq!(
                res.to_rows(),
                vec![
                    vec![id(1), id(10), id(100)],
                    vec![id(1), id(10), id(101)],
                    vec![id(3), id(30), id(300)],
                ]
            );
        }
    }

    #[test]
    fn join_on_two_shared_vars() {
        let l = rel(vec![0, 1], &[&[1, 2], &[1, 3]]);
        let r = rel(vec![0, 1, 2], &[&[1, 2, 9], &[1, 4, 8]]);
        for res in all_algos(&l, &r) {
            assert_eq!(res.to_rows(), vec![vec![id(1), id(2), id(9)]]);
        }
    }

    #[test]
    fn disjoint_schemas_give_cartesian_product() {
        let l = rel(vec![0], &[&[1], &[2]]);
        let r = rel(vec![1], &[&[7], &[8]]);
        for res in all_algos(&l, &r) {
            assert_eq!(res.len(), 4);
        }
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let l = rel(vec![0, 1], &[]);
        let r = rel(vec![1], &[&[7]]);
        for res in all_algos(&l, &r) {
            assert!(res.is_empty());
            assert_eq!(res.vars(), &[0, 1]);
        }
    }

    #[test]
    fn duplicates_multiply() {
        let l = rel(vec![0], &[&[1], &[1]]);
        let r = rel(vec![0, 1], &[&[1, 5], &[1, 5]]);
        for res in all_algos(&l, &r) {
            assert_eq!(res.len(), 4, "bag semantics: 2×2 matches");
        }
    }

    #[test]
    fn counters_consistent_across_algorithms() {
        let l = rel(vec![0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300], &[40, 400]]);
        let profile = EngineProfile::pg_like();
        let mut joined = Vec::new();
        let mut materialized = Vec::new();
        for f in [hash_join, sort_merge_join, block_nested_loop_join] {
            let mut ctx = ExecContext::new(&profile);
            let out = f(&l, &r, &mut ctx).expect("join succeeds");
            assert_eq!(
                ctx.counters.tuples_joined,
                out.len() as u64,
                "tuples_joined counts emitted rows"
            );
            assert_eq!(ctx.counters.tuples_scanned, 0, "fragment joins scan no indexes");
            assert_eq!(ctx.counters.tuples_deduped, 0, "fragment joins do not dedup");
            joined.push(ctx.counters.tuples_joined);
            materialized.push(ctx.counters.tuples_materialized);
        }
        // The same logical join emits the same rows under every algorithm.
        assert!(joined.iter().all(|&j| j == joined[0]), "{joined:?}");
        // Materialization reflects each algorithm's working set: hash
        // builds on the smaller side, sort-merge sorts both inputs,
        // block-nested-loop streams both.
        assert_eq!(materialized[0], l.len().min(r.len()) as u64);
        assert_eq!(materialized[1], (l.len() + r.len()) as u64);
        assert_eq!(materialized[2], 0);
    }

    #[test]
    fn gallop_to_finds_first_true_index() {
        for n in [1usize, 2, 3, 7, 8, 9, 100] {
            for first_true in 1..=n {
                // pred true from `first_true` on (or never, when == n).
                let got = gallop_to(0, n, |x| x >= first_true);
                assert_eq!(got, first_true, "n={n}");
            }
        }
    }

    #[test]
    fn sort_elision_matrix_matches_hash_join() {
        // Sorted inputs on the shared var 1 (left col 1, right col 0).
        let l = rel(vec![0, 1], &[&[3, 10], &[2, 20], &[1, 30], &[9, 30]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300], &[40, 400]]);
        let profile = EngineProfile::pg_like();
        let mut hctx = ExecContext::new(&profile);
        let mut expect = hash_join(&l, &r, &mut hctx).expect("hash join");
        expect.sort();
        for elide in [(false, false), (true, false), (false, true), (true, true)] {
            let mut ctx = ExecContext::new(&profile);
            let opts = JoinOpts { elide, est: None };
            let mut got = sort_merge_join_opts(&l, &r, opts, &mut ctx).expect("merge join");
            got.sort();
            assert_eq!(got.to_rows(), expect.to_rows(), "elide={elide:?}");
            let claimed = u64::from(elide.0) + u64::from(elide.1);
            assert_eq!(ctx.counters.sorts_elided, claimed, "elide={elide:?}");
            // Only genuinely sorted sides skip the materialization charge.
            let mut charge = 0u64;
            if !elide.0 {
                charge += l.len() as u64;
            }
            if !elide.1 {
                charge += r.len() as u64;
            }
            assert_eq!(ctx.counters.tuples_materialized, charge, "elide={elide:?}");
        }
    }

    #[test]
    fn false_elision_claim_falls_back_to_sorting() {
        // Left is NOT sorted on the shared var: the claim must be
        // rejected by the verification pass, not trusted.
        let l = rel(vec![0, 1], &[&[1, 30], &[2, 10], &[3, 20]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[20, 200], &[30, 300]]);
        let profile = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&profile);
        let opts = JoinOpts { elide: (true, true), est: None };
        let mut got = sort_merge_join_opts(&l, &r, opts, &mut ctx).expect("merge join");
        got.sort();
        let mut hctx = ExecContext::new(&profile);
        let mut expect = hash_join(&l, &r, &mut hctx).expect("hash join");
        expect.sort();
        assert_eq!(got.to_rows(), expect.to_rows());
        assert_eq!(ctx.counters.sorts_elided, 1, "only the sorted right side elides");
        assert_eq!(ctx.counters.tuples_materialized, l.len() as u64);
    }

    #[test]
    fn skewed_merge_gallops_and_matches_hash_join() {
        let lrows: Vec<Vec<u32>> = (0..512).map(|i| vec![i, i * 2]).collect();
        let lslices: Vec<&[u32]> = lrows.iter().map(Vec::as_slice).collect();
        let l = rel(vec![0, 1], &lslices);
        let r = rel(vec![0, 2], &[&[100, 7], &[400, 8]]);
        assert!(l.len() >= GALLOP_SKEW * r.len());
        let profile = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&profile);
        let mut got =
            sort_merge_join_opts(&l, &r, JoinOpts::default(), &mut ctx).expect("merge join");
        got.sort();
        assert!(ctx.counters.gallop_seeks > 0, "skewed sides should gallop");
        let mut hctx = ExecContext::new(&profile);
        let mut expect = hash_join(&l, &r, &mut hctx).expect("hash join");
        expect.sort();
        assert_eq!(got.to_rows(), expect.to_rows());

        // With the order-aware knob off the same merge steps row by
        // row: identical answer, zero gallop seeks.
        let off = EngineProfile::pg_like().with_order_aware(false);
        let mut octx = ExecContext::new(&off);
        let mut plain =
            sort_merge_join_opts(&l, &r, JoinOpts::default(), &mut octx).expect("merge join");
        plain.sort();
        assert_eq!(octx.counters.gallop_seeks, 0, "knob off must not gallop");
        assert_eq!(plain.to_rows(), expect.to_rows());
    }

    #[test]
    fn estimates_pre_size_join_outputs() {
        let l = rel(vec![0, 1], &[&[1, 10], &[2, 20]]);
        let r = rel(vec![1, 2], &[&[10, 100], &[20, 200]]);
        let profile = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&profile);
        let opts = JoinOpts { elide: (false, false), est: Some(2.0) };
        hash_join_opts(&l, &r, opts, &mut ctx).expect("hash join");
        assert_eq!(ctx.counters.rows_reserved, 2);
        // The clamp bounds pathological estimates.
        assert_eq!(reserve_rows(Some(f64::MAX)), 1 << 20);
        assert_eq!(reserve_rows(Some(-5.0)), 0);
        assert_eq!(reserve_rows(None), 0);
    }

    #[test]
    fn memory_budget_fails_large_builds() {
        let l = rel(vec![0], &[&[1], &[2], &[3]]);
        let r = rel(vec![0], &[&[1], &[2], &[3], &[4]]);
        let profile = EngineProfile::pg_like().with_memory_budget(2);
        let mut ctx = ExecContext::new(&profile);
        assert!(matches!(
            hash_join(&l, &r, &mut ctx),
            Err(EngineError::MemoryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn timeout_aborts_block_nested_loop() {
        let rows: Vec<Vec<u32>> = (0..2000).map(|i| vec![i]).collect();
        let slices: Vec<&[u32]> = rows.iter().map(Vec::as_slice).collect();
        let l = rel(vec![0], &slices);
        let r = rel(vec![1], &slices);
        let profile = EngineProfile::mysql_like().with_timeout(Duration::from_millis(0));
        // Pre-expired backdated clock: deterministic without sleeping.
        let mut ctx = ExecContext::new(&profile);
        ctx.backdate(Duration::from_millis(1));
        assert!(matches!(
            block_nested_loop_join(&l, &r, &mut ctx),
            Err(EngineError::Timeout { .. })
        ));
    }
}
