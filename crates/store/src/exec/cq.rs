//! Union-member (CQ) operators: interpreting the access-path subtree of
//! a physical plan member.
//!
//! A member is a [`PlanNode::Project`] (or [`PlanNode::TrueRow`]) over an
//! access chain the planner lowered from the CQ body. Two shapes exist,
//! chosen by the profile at planning time:
//!
//! * **index-nested-loop** (`index_nested_loop_cq = true`): a single
//!   leaf scan extended by [`PlanNode::Inlj`] probes — each probe
//!   extends the current binding set against the best permutation
//!   index. This is how an RDBMS with all six `(s,p,o)` indexes
//!   evaluates these queries.
//! * **hash** (`false`): every atom's extent is scanned (leaf nodes)
//!   and hash-joined left-deep via member-internal
//!   [`PlanNode::HashJoin`] nodes.
//!
//! Leaf scans are either private [`PlanNode::IndexScan`]s or references
//! into the plan's shared-scan table ([`PlanNode::SharedScan`]), already
//! materialized by the driver; shared extents are borrowed, never
//! copied, and charge no scan counters here.

use std::borrow::Cow;

use jucq_model::{TermId, TripleId};

use crate::error::EngineError;
use crate::exec::{batch, join, ExecContext};
use crate::ir::{PatternTerm, StorePattern, VarId};
use crate::plan::PlanNode;
use crate::relation::Relation;
use crate::table::{Perm, RangePos, TripleTable};

/// Evaluate one lowered union member against `table`, with `shared`
/// holding the plan's materialized shared scans. Bag semantics:
/// duplicates arising from the head projection are *not* removed here
/// (the union layer deduplicates).
pub(crate) fn eval_member(
    table: &TripleTable,
    member: &PlanNode,
    shared: &[Relation],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let op = ctx.op_start();
    let out = eval_member_inner(table, member, shared, ctx)?;
    ctx.op_finish(op, "cq", out.len() as u64);
    Ok(out)
}

fn eval_member_inner(
    table: &TripleTable,
    member: &PlanNode,
    shared: &[Relation],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.check_deadline()?;
    match member {
        PlanNode::TrueRow { out_vars } => {
            // An empty body denotes the always-true query with no
            // bindings.
            let mut r = Relation::empty(out_vars.clone());
            if out_vars.is_empty() {
                r.push_row(&[]);
            }
            Ok(r)
        }
        PlanNode::Project { input, head, out_vars } => {
            let body = eval_access(table, input, shared, ctx)?;
            if body.is_empty() {
                // Pipelines short-circuit on an empty intermediate, so
                // `body` may lack columns for later atoms' variables;
                // the projection of nothing is nothing.
                return Ok(Relation::empty(out_vars.clone()));
            }
            if ctx.profile().vectorized {
                return batch::project_head_batched(&body, head, out_vars, ctx);
            }
            Ok(project_head(&body, head, out_vars))
        }
        other => Ok(eval_access(table, other, shared, ctx)?.into_owned()),
    }
}

/// Evaluate an access-path node to a relation over its distinct
/// variables. Shared scans are borrowed from the plan-wide table.
fn eval_access<'s>(
    table: &TripleTable,
    node: &PlanNode,
    shared: &'s [Relation],
    ctx: &mut ExecContext<'_>,
) -> Result<Cow<'s, Relation>, EngineError> {
    match node {
        PlanNode::IndexScan { pattern, perm, .. } => {
            Ok(Cow::Owned(scan_pattern_with(table, pattern, *perm, ctx)?))
        }
        PlanNode::RangeScan { pattern, ranged, lo, hi, .. } => {
            Ok(Cow::Owned(scan_range(table, pattern, *ranged, *lo, *hi, ctx)?))
        }
        // `scan_pattern` applies the repeated-variable filter inline;
        // the Filter node documents it in the plan tree.
        PlanNode::Filter { input, .. } => eval_access(table, input, shared, ctx),
        PlanNode::SharedScan { id, .. } => Ok(Cow::Borrowed(&shared[*id])),
        PlanNode::Inlj { input, pattern } => {
            let acc = eval_access(table, input, shared, ctx)?;
            Ok(Cow::Owned(probe_extend(table, &acc, pattern, ctx)?))
        }
        PlanNode::RangeProbe { input, pattern, ranged, lo, hi, .. } => {
            let acc = eval_access(table, input, shared, ctx)?;
            Ok(Cow::Owned(probe_extend_range(table, &acc, pattern, *ranged, *lo, *hi, ctx)?))
        }
        PlanNode::HashJoin { left, right, step: None, est } => {
            let l = eval_access(table, left, shared, ctx)?;
            if l.is_empty() {
                // Short-circuit: the right subtree is never scanned.
                return Ok(l);
            }
            let r = eval_access(table, right, shared, ctx)?;
            let opts = join::JoinOpts { elide: (false, false), est: *est };
            Ok(Cow::Owned(join::hash_join_opts(&l, &r, opts, ctx)?))
        }
        other => unreachable!("not an access-path node: {other:?}"),
    }
}

/// Project a body result onto a head of variables and constants.
pub(crate) fn project_head(body: &Relation, head: &[PatternTerm], out_vars: &[VarId]) -> Relation {
    enum Source {
        Column(usize),
        Constant(TermId),
    }
    let sources: Vec<Source> = head
        .iter()
        .map(|t| match t {
            PatternTerm::Var(v) => {
                Source::Column(body.column_of(*v).expect("head variable bound by the body"))
            }
            PatternTerm::Const(c) => Source::Constant(*c),
        })
        .collect();
    let mut out = Relation::with_capacity(out_vars.to_vec(), body.len());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(head.len());
    for row in body.rows() {
        row_buf.clear();
        for s in &sources {
            row_buf.push(match s {
                Source::Column(c) => row[*c],
                Source::Constant(c) => *c,
            });
        }
        out.push_row(&row_buf);
    }
    out
}

/// A triple matches a pattern's variable structure iff repeated
/// variables bind equal values.
#[inline]
pub(crate) fn repeated_vars_consistent(p: &StorePattern, t: &TripleId) -> bool {
    let pos = p.positions();
    let val = [t.s, t.p, t.o];
    for i in 0..3 {
        for j in (i + 1)..3 {
            if let (PatternTerm::Var(a), PatternTerm::Var(b)) = (pos[i], pos[j]) {
                if a == b && val[i] != val[j] {
                    return false;
                }
            }
        }
    }
    true
}

/// Scan one pattern into a relation over its distinct variables, using
/// the default permutation index for the bound positions.
pub(crate) fn scan_pattern(
    table: &TripleTable,
    p: &StorePattern,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    scan_pattern_with(table, p, None, ctx)
}

/// [`scan_pattern`] through an explicit permutation index: the
/// order-aware planner picks `perm` so the scan's output order feeds a
/// sort-elided merge join. Any candidate perm yields the same row *set*;
/// only the emission order differs.
pub(crate) fn scan_pattern_with(
    table: &TripleTable,
    p: &StorePattern,
    perm: Option<Perm>,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::scan_pattern_batched(table, p, perm, ctx);
    }
    let vars = p.variables();
    let bound = p.bound();
    let extent = table.scan_with(perm.unwrap_or_else(|| Perm::for_bound(&bound)), &bound);
    ctx.counters.rows_reserved += extent.len() as u64;
    let mut out = Relation::with_capacity(vars.to_vec(), extent.len());
    let mut row: Vec<TermId> = Vec::with_capacity(vars.len());
    for t in extent {
        ctx.tick()?;
        ctx.counters.tuples_scanned += 1;
        if !repeated_vars_consistent(p, t) {
            continue;
        }
        row.clear();
        let val = [t.s, t.p, t.o];
        for v in vars {
            let i = p
                .positions()
                .iter()
                .position(|pt| pt.as_var() == Some(v))
                .expect("var occurs in pattern");
            row.push(val[i]);
        }
        out.push_row(&row);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Scan one collapsed interval into a relation over the pattern
/// template's distinct variables: all triples matching the template with
/// its `ranged` position's constant replaced by any raw id in `[lo, hi)`.
/// Row-identical (and counter-identical) to unioning the point scans of
/// every id in the interval, since the underlying permutation index sorts
/// the interval contiguously.
pub(crate) fn scan_range(
    table: &TripleTable,
    p: &StorePattern,
    ranged: RangePos,
    lo: u32,
    hi: u32,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.counters.range_scans += 1;
    if ctx.profile().vectorized {
        return batch::scan_range_batched(table, p, ranged, lo, hi, ctx);
    }
    let mut bound = p.bound();
    match ranged {
        RangePos::Predicate => bound[1] = None,
        RangePos::Object => bound[2] = None,
    }
    let vars = p.variables();
    let extent = table.scan_value_range(&bound, ranged, lo, hi);
    ctx.counters.rows_reserved += extent.len() as u64;
    let mut out = Relation::with_capacity(vars.to_vec(), extent.len());
    let mut row: Vec<TermId> = Vec::with_capacity(vars.len());
    for t in extent {
        ctx.tick()?;
        ctx.counters.tuples_scanned += 1;
        if !repeated_vars_consistent(p, t) {
            continue;
        }
        row.clear();
        let val = [t.s, t.p, t.o];
        for v in vars {
            let i = p
                .positions()
                .iter()
                .position(|pt| pt.as_var() == Some(v))
                .expect("var occurs in pattern");
            row.push(val[i]);
        }
        out.push_row(&row);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// One index-nested-loop step: extend the binding relation `acc` by
/// probing the best permutation index for `p` with the bound values of
/// each row.
fn probe_extend(
    table: &TripleTable,
    acc: &Relation,
    p: &StorePattern,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    if ctx.profile().vectorized {
        return batch::probe_extend_batched(table, acc, p, ctx);
    }
    let p_vars = p.variables();
    // Columns of `acc` that bind variables of `p`.
    let shared: Vec<(usize, VarId)> = acc
        .vars()
        .iter()
        .enumerate()
        .filter(|&(_, v)| p_vars.contains(v))
        .map(|(i, &v)| (i, v))
        .collect();
    let new_vars: Vec<VarId> =
        p_vars.iter().copied().filter(|v| acc.column_of(*v).is_none()).collect();
    let mut out_vars = acc.vars().to_vec();
    out_vars.extend(new_vars.iter().copied());
    let mut out = Relation::empty(out_vars);
    let positions = p.positions();
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());

    for row in acc.rows() {
        ctx.tick()?;
        // Build the probe key: pattern constants plus variables bound
        // by the current row.
        let mut bound: [Option<TermId>; 3] = [None, None, None];
        for (i, pt) in positions.iter().enumerate() {
            bound[i] = match pt {
                PatternTerm::Const(c) => Some(*c),
                PatternTerm::Var(v) => {
                    shared.iter().find(|(_, sv)| sv == v).map(|(col, _)| row[*col])
                }
            };
        }
        for t in table.scan(&bound) {
            ctx.tick()?;
            ctx.counters.tuples_scanned += 1;
            if !repeated_vars_consistent(p, t) {
                continue;
            }
            let val = [t.s, t.p, t.o];
            row_buf.clear();
            row_buf.extend_from_slice(row);
            for &v in &new_vars {
                let i = positions
                    .iter()
                    .position(|pt| pt.as_var() == Some(v))
                    .expect("new var occurs in pattern");
                row_buf.push(val[i]);
            }
            ctx.counters.tuples_joined += 1;
            out.push_row(&row_buf);
        }
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// One interval-probe step: like [`probe_extend`], but the probed
/// pattern's `ranged` position matches any raw id in `[lo, hi)` — one
/// contiguous `scan_value_range` probe per input row where the
/// uncollapsed union needed one point probe per collapsed member
/// (LiteMat's "the type check becomes an interval membership test").
fn probe_extend_range(
    table: &TripleTable,
    acc: &Relation,
    p: &StorePattern,
    ranged: RangePos,
    lo: u32,
    hi: u32,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.counters.range_scans += 1;
    if ctx.profile().vectorized {
        return batch::probe_extend_range_batched(table, acc, p, ranged, lo, hi, ctx);
    }
    let p_vars = p.variables();
    let shared: Vec<(usize, VarId)> = acc
        .vars()
        .iter()
        .enumerate()
        .filter(|&(_, v)| p_vars.contains(v))
        .map(|(i, &v)| (i, v))
        .collect();
    let new_vars: Vec<VarId> =
        p_vars.iter().copied().filter(|v| acc.column_of(*v).is_none()).collect();
    let mut out_vars = acc.vars().to_vec();
    out_vars.extend(new_vars.iter().copied());
    let mut out = Relation::empty(out_vars);
    let positions = p.positions();
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());

    for row in acc.rows() {
        ctx.tick()?;
        let mut bound: [Option<TermId>; 3] = [None, None, None];
        for (i, pt) in positions.iter().enumerate() {
            bound[i] = match pt {
                PatternTerm::Const(c) => Some(*c),
                PatternTerm::Var(v) => {
                    shared.iter().find(|(_, sv)| sv == v).map(|(col, _)| row[*col])
                }
            };
        }
        // The ranged position's template constant stands for the whole
        // interval: unbind it and probe the contiguous index run.
        match ranged {
            RangePos::Predicate => bound[1] = None,
            RangePos::Object => bound[2] = None,
        }
        for t in table.scan_value_range(&bound, ranged, lo, hi) {
            ctx.tick()?;
            ctx.counters.tuples_scanned += 1;
            if !repeated_vars_consistent(p, t) {
                continue;
            }
            let val = [t.s, t.p, t.o];
            row_buf.clear();
            row_buf.extend_from_slice(row);
            for &v in &new_vars {
                let i = positions
                    .iter()
                    .position(|pt| pt.as_var() == Some(v))
                    .expect("new var occurs in pattern");
                row_buf.push(val[i]);
            }
            ctx.counters.tuples_joined += 1;
            out.push_row(&row_buf);
        }
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Store;
    use crate::ir::StoreCq;
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    /// advisor edges: 1-\[10\]->2, 2-\[10\]->3, 3-\[10\]->1, plus names 1-\[11\]->100.
    fn sample_triples() -> Vec<TripleId> {
        vec![
            t(1, 10, 2),
            t(2, 10, 3),
            t(3, 10, 1),
            t(1, 11, 100),
            t(2, 11, 101),
            t(4, 10, 4), // self-loop
        ]
    }

    fn run(cq: &StoreCq, inlj: bool) -> Relation {
        let mut profile = EngineProfile::pg_like();
        profile.index_nested_loop_cq = inlj;
        let s = Store::from_triples(&sample_triples(), profile);
        let mut r = s.eval_cq(cq).expect("evaluation succeeds").relation;
        r.sort();
        r
    }

    #[test]
    fn single_pattern_scan() {
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]);
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.len(), 4, "inlj={inlj}");
        }
    }

    #[test]
    fn two_hop_join() {
        // ?x -10-> ?y -10-> ?z
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(1), c(10), v(2))],
            vec![0, 2],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            // 1->2->3, 2->3->1, 3->1->2, 4->4->4.
            assert_eq!(r.len(), 4, "inlj={inlj}");
        }
    }

    #[test]
    fn join_with_selective_constant() {
        // ?x -10-> ?y, ?x -11-> 100  ⇒ x=1, y=2.
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), c(100))],
            vec![0, 1],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(1), id(2)]], "inlj={inlj}");
        }
    }

    #[test]
    fn repeated_variable_selects_self_loops() {
        // ?x -10-> ?x  ⇒ only the 4-4 self loop.
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(0))], vec![0]);
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(4)]], "inlj={inlj}");
        }
    }

    #[test]
    fn empty_result_short_circuits() {
        let cq = StoreCq::with_var_head(
            vec![
                StorePattern::new(v(0), c(99), v(1)), // no matches
                StorePattern::new(v(1), c(10), v(2)),
            ],
            vec![0, 2],
        );
        for inlj in [true, false] {
            assert!(run(&cq, inlj).is_empty(), "inlj={inlj}");
        }
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        // ?x -11-> 100 (1 row) × ?a -11-> 101 (1 row).
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(11), c(100)), StorePattern::new(v(1), c(11), c(101))],
            vec![0, 1],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(1), id(2)]], "inlj={inlj}");
        }
    }

    #[test]
    fn projection_to_distinct_subset() {
        // Objects of predicate 10 are all distinct here, so the head
        // projection keeps all four rows even under set semantics.
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![1]);
        let r = run(&cq, true);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn variable_in_property_position() {
        // ?x ?p 100 ⇒ (1, 11).
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), v(1), c(100))], vec![0, 1]);
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(1), id(11)]], "inlj={inlj}");
        }
    }

    #[test]
    fn four_atom_cycle_query() {
        // 1-10->2-10->3-10->1 is a 3-cycle; query a 3-cycle shape.
        let cq = StoreCq::with_var_head(
            vec![
                StorePattern::new(v(0), c(10), v(1)),
                StorePattern::new(v(1), c(10), v(2)),
                StorePattern::new(v(2), c(10), v(0)),
            ],
            vec![0, 1, 2],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            // Rotations of (1,2,3) plus the self-loop (4,4,4).
            assert_eq!(r.len(), 4, "inlj={inlj}");
        }
    }

    #[test]
    fn all_constant_pattern_is_boolean_row() {
        let s = Store::from_triples(&sample_triples(), EngineProfile::pg_like());
        let cq = StoreCq::with_var_head(vec![StorePattern::new(c(1), c(10), c(2))], vec![]);
        let r = s.eval_cq(&cq).unwrap().relation;
        assert_eq!(r.len(), 1, "the triple exists");
        let missing = StoreCq::with_var_head(vec![StorePattern::new(c(1), c(10), c(99))], vec![]);
        let r = s.eval_cq(&missing).unwrap().relation;
        assert_eq!(r.len(), 0, "the triple does not exist");
    }

    #[test]
    fn inlj_and_hash_agree_on_longer_chains() {
        // ?a -10-> ?b -10-> ?c, ?a -11-> ?n (mixed star/chain).
        let cq = StoreCq::with_var_head(
            vec![
                StorePattern::new(v(0), c(10), v(1)),
                StorePattern::new(v(1), c(10), v(2)),
                StorePattern::new(v(0), c(11), v(3)),
            ],
            vec![0, 2, 3],
        );
        let a = run(&cq, true);
        let b = run(&cq, false);
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn empty_body_boolean_true() {
        let s = Store::from_triples(&sample_triples(), EngineProfile::pg_like());
        let cq = StoreCq::with_var_head(vec![], vec![]);
        let r = s.eval_cq(&cq).unwrap().relation;
        assert_eq!(r.len(), 1);
    }
}
