//! Conjunctive-query evaluation over the triple table.
//!
//! A CQ body is a join of triple patterns. Two physical strategies are
//! provided, selected by the engine profile:
//!
//! * **index-nested-loop** (`index_nested_loop_cq = true`): atoms are
//!   ordered greedily (cheapest exact-cardinality atom first, then
//!   always a join-connected atom); each atom extends the current
//!   binding set by probing the best permutation index with the bound
//!   values. This is how an RDBMS with all six `(s,p,o)` indexes
//!   evaluates these queries.
//! * **hash** (`false`): each pattern's extent is scanned once and the
//!   extents are hash-joined left-deep in the same greedy order.

use jucq_model::{TermId, TripleId};

use crate::error::EngineError;
use crate::exec::{join, ExecContext};
use crate::ir::{PatternTerm, StoreCq, StorePattern, VarId};
use crate::relation::Relation;
use crate::table::TripleTable;

/// Evaluate `cq` against `table`, projecting onto its head. The result
/// schema is `out_vars` (the enclosing UCQ's head), positionally aligned
/// with `cq.head`; constant head positions emit the constant.
/// Bag semantics: duplicates arising from the projection are *not*
/// removed here (the union layer deduplicates).
pub fn eval_cq(
    table: &TripleTable,
    cq: &StoreCq,
    out_vars: &[VarId],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let op = ctx.op_start();
    let out = eval_cq_inner(table, cq, out_vars, ctx)?;
    ctx.op_finish(op, "cq", out.len() as u64);
    Ok(out)
}

fn eval_cq_inner(
    table: &TripleTable,
    cq: &StoreCq,
    out_vars: &[VarId],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    ctx.check_deadline()?;
    debug_assert_eq!(cq.head.len(), out_vars.len(), "head must align with output schema");
    if cq.patterns.is_empty() {
        // An empty body denotes the always-true query with no bindings.
        let mut r = Relation::empty(out_vars.to_vec());
        if out_vars.is_empty() {
            r.push_row(&[]);
        }
        return Ok(r);
    }
    let order = atom_order(table, &cq.patterns);
    let result = if ctx.profile().index_nested_loop_cq {
        eval_inlj(table, &cq.patterns, &order, ctx)?
    } else {
        eval_hash(table, &cq.patterns, &order, ctx)?
    };
    if result.is_empty() {
        // Pipelines short-circuit on an empty intermediate, so `result`
        // may lack columns for later atoms' variables; the projection
        // of nothing is nothing.
        return Ok(Relation::empty(out_vars.to_vec()));
    }
    Ok(project_head(&result, &cq.head, out_vars))
}

/// Project a body result onto a head of variables and constants.
fn project_head(body: &Relation, head: &[PatternTerm], out_vars: &[VarId]) -> Relation {
    enum Source {
        Column(usize),
        Constant(TermId),
    }
    let sources: Vec<Source> = head
        .iter()
        .map(|t| match t {
            PatternTerm::Var(v) => {
                Source::Column(body.column_of(*v).expect("head variable bound by the body"))
            }
            PatternTerm::Const(c) => Source::Constant(*c),
        })
        .collect();
    let mut out = Relation::with_capacity(out_vars.to_vec(), body.len());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(head.len());
    for row in body.rows() {
        row_buf.clear();
        for s in &sources {
            row_buf.push(match s {
                Source::Column(c) => row[*c],
                Source::Constant(c) => *c,
            });
        }
        out.push_row(&row_buf);
    }
    out
}

/// Greedy atom ordering: start from the atom with the smallest exact
/// extent; repeatedly append the connected atom (sharing a variable with
/// the bound set) of smallest extent; fall back to the globally smallest
/// remaining atom when the body is disconnected (cartesian product).
fn atom_order(table: &TripleTable, patterns: &[StorePattern]) -> Vec<usize> {
    let counts: Vec<usize> = patterns.iter().map(|p| table.count(&p.bound())).collect();
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    let mut bound_vars: Vec<VarId> = Vec::new();

    let first = remaining.iter().copied().min_by_key(|&i| counts[i]).expect("non-empty body");
    order.push(first);
    bound_vars.extend(patterns[first].variables());
    remaining.retain(|&i| i != first);

    while !remaining.is_empty() {
        let connected = remaining
            .iter()
            .copied()
            .filter(|&i| patterns[i].variables().iter().any(|v| bound_vars.contains(v)))
            .min_by_key(|&i| counts[i]);
        let next = connected.unwrap_or_else(|| {
            remaining.iter().copied().min_by_key(|&i| counts[i]).expect("remaining non-empty")
        });
        order.push(next);
        for v in patterns[next].variables() {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        remaining.retain(|&i| i != next);
    }
    order
}

/// A triple matches a pattern's variable structure iff repeated
/// variables bind equal values.
#[inline]
fn repeated_vars_consistent(p: &StorePattern, t: &TripleId) -> bool {
    let pos = p.positions();
    let val = [t.s, t.p, t.o];
    for i in 0..3 {
        for j in (i + 1)..3 {
            if let (PatternTerm::Var(a), PatternTerm::Var(b)) = (pos[i], pos[j]) {
                if a == b && val[i] != val[j] {
                    return false;
                }
            }
        }
    }
    true
}

/// Scan one pattern into a relation over its distinct variables.
fn scan_pattern(
    table: &TripleTable,
    p: &StorePattern,
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let vars = p.variables();
    let mut out = Relation::empty(vars.clone());
    let mut row: Vec<TermId> = Vec::with_capacity(vars.len());
    for t in table.scan(&p.bound()) {
        ctx.tick()?;
        ctx.counters.tuples_scanned += 1;
        if !repeated_vars_consistent(p, t) {
            continue;
        }
        row.clear();
        let val = [t.s, t.p, t.o];
        for &v in &vars {
            let i = p
                .positions()
                .iter()
                .position(|pt| pt.as_var() == Some(v))
                .expect("var occurs in pattern");
            row.push(val[i]);
        }
        out.push_row(&row);
    }
    ctx.check_memory(out.len())?;
    Ok(out)
}

/// Index-nested-loop pipeline: extend the binding relation atom by atom
/// through index probes.
fn eval_inlj(
    table: &TripleTable,
    patterns: &[StorePattern],
    order: &[usize],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let mut acc = scan_pattern(table, &patterns[order[0]], ctx)?;
    for &pi in &order[1..] {
        let p = &patterns[pi];
        let p_vars = p.variables();
        // Columns of `acc` that bind variables of `p`.
        let shared: Vec<(usize, VarId)> = acc
            .vars()
            .iter()
            .enumerate()
            .filter(|(_, v)| p_vars.contains(v))
            .map(|(i, &v)| (i, v))
            .collect();
        let new_vars: Vec<VarId> =
            p_vars.iter().copied().filter(|v| acc.column_of(*v).is_none()).collect();
        let mut out_vars = acc.vars().to_vec();
        out_vars.extend(new_vars.iter().copied());
        let mut out = Relation::empty(out_vars);
        let positions = p.positions();
        let mut row_buf: Vec<TermId> = Vec::with_capacity(out.width());

        for row in acc.rows() {
            ctx.tick()?;
            // Build the probe key: pattern constants plus variables bound
            // by the current row.
            let mut bound: [Option<TermId>; 3] = [None, None, None];
            for (i, pt) in positions.iter().enumerate() {
                bound[i] = match pt {
                    PatternTerm::Const(c) => Some(*c),
                    PatternTerm::Var(v) => {
                        shared.iter().find(|(_, sv)| sv == v).map(|(col, _)| row[*col])
                    }
                };
            }
            for t in table.scan(&bound) {
                ctx.tick()?;
                ctx.counters.tuples_scanned += 1;
                if !repeated_vars_consistent(p, t) {
                    continue;
                }
                let val = [t.s, t.p, t.o];
                row_buf.clear();
                row_buf.extend_from_slice(row);
                for &v in &new_vars {
                    let i = positions
                        .iter()
                        .position(|pt| pt.as_var() == Some(v))
                        .expect("new var occurs in pattern");
                    row_buf.push(val[i]);
                }
                ctx.counters.tuples_joined += 1;
                out.push_row(&row_buf);
            }
        }
        ctx.check_memory(out.len())?;
        acc = out;
        if acc.is_empty() {
            break;
        }
    }
    Ok(acc)
}

/// Hash strategy: scan all extents, hash-join left-deep.
fn eval_hash(
    table: &TripleTable,
    patterns: &[StorePattern],
    order: &[usize],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let mut acc = scan_pattern(table, &patterns[order[0]], ctx)?;
    for &pi in &order[1..] {
        let right = scan_pattern(table, &patterns[pi], ctx)?;
        acc = join::hash_join(&acc, &right, ctx)?;
        if acc.is_empty() {
            break;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    /// advisor edges: 1-\[10\]->2, 2-\[10\]->3, 3-\[10\]->1, plus names 1-\[11\]->100.
    fn sample() -> TripleTable {
        TripleTable::build(&[
            t(1, 10, 2),
            t(2, 10, 3),
            t(3, 10, 1),
            t(1, 11, 100),
            t(2, 11, 101),
            t(4, 10, 4), // self-loop
        ])
    }

    fn run(cq: &StoreCq, inlj: bool) -> Relation {
        let table = sample();
        let mut profile = EngineProfile::pg_like();
        profile.index_nested_loop_cq = inlj;
        let mut ctx = ExecContext::new(&profile);
        let mut r = eval_cq(&table, cq, &cq.head_vars(), &mut ctx).expect("evaluation succeeds");
        r.sort();
        r
    }

    #[test]
    fn single_pattern_scan() {
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]);
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.len(), 4, "inlj={inlj}");
        }
    }

    #[test]
    fn two_hop_join() {
        // ?x -10-> ?y -10-> ?z
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(1), c(10), v(2))],
            vec![0, 2],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            // 1->2->3, 2->3->1, 3->1->2, 4->4->4.
            assert_eq!(r.len(), 4, "inlj={inlj}");
        }
    }

    #[test]
    fn join_with_selective_constant() {
        // ?x -10-> ?y, ?x -11-> 100  ⇒ x=1, y=2.
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), c(100))],
            vec![0, 1],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(1), id(2)]], "inlj={inlj}");
        }
    }

    #[test]
    fn repeated_variable_selects_self_loops() {
        // ?x -10-> ?x  ⇒ only the 4-4 self loop.
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(0))], vec![0]);
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(4)]], "inlj={inlj}");
        }
    }

    #[test]
    fn empty_result_short_circuits() {
        let cq = StoreCq::with_var_head(
            vec![
                StorePattern::new(v(0), c(99), v(1)), // no matches
                StorePattern::new(v(1), c(10), v(2)),
            ],
            vec![0, 2],
        );
        for inlj in [true, false] {
            assert!(run(&cq, inlj).is_empty(), "inlj={inlj}");
        }
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        // ?x -11-> 100 (1 row) × ?a -11-> 101 (1 row).
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(11), c(100)), StorePattern::new(v(1), c(11), c(101))],
            vec![0, 1],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(1), id(2)]], "inlj={inlj}");
        }
    }

    #[test]
    fn projection_to_subset_keeps_bag_semantics() {
        // ?x -10-> ?y projected to () per head [] is boolean-ish; use
        // head [1]: objects of 10 with duplicates kept (none here).
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![1]);
        let r = run(&cq, true);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn variable_in_property_position() {
        // ?x ?p 100 ⇒ (1, 11).
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), v(1), c(100))], vec![0, 1]);
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            assert_eq!(r.to_rows(), vec![vec![id(1), id(11)]], "inlj={inlj}");
        }
    }

    #[test]
    fn order_starts_from_cheapest_atom() {
        let table = sample();
        let patterns = vec![
            StorePattern::new(v(0), c(10), v(1)),   // 4 matches
            StorePattern::new(v(0), c(11), c(100)), // 1 match
        ];
        let order = atom_order(&table, &patterns);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn four_atom_cycle_query() {
        // 1-10->2-10->3-10->1 is a 3-cycle; query a 3-cycle shape.
        let cq = StoreCq::with_var_head(
            vec![
                StorePattern::new(v(0), c(10), v(1)),
                StorePattern::new(v(1), c(10), v(2)),
                StorePattern::new(v(2), c(10), v(0)),
            ],
            vec![0, 1, 2],
        );
        for inlj in [true, false] {
            let r = run(&cq, inlj);
            // Rotations of (1,2,3) plus the self-loop (4,4,4).
            assert_eq!(r.len(), 4, "inlj={inlj}");
        }
    }

    #[test]
    fn all_constant_pattern_is_boolean_row() {
        let cq = StoreCq::with_var_head(vec![StorePattern::new(c(1), c(10), c(2))], vec![]);
        let table = sample();
        let profile = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&profile);
        let r = eval_cq(&table, &cq, &[], &mut ctx).unwrap();
        assert_eq!(r.len(), 1, "the triple exists");
        let missing = StoreCq::with_var_head(vec![StorePattern::new(c(1), c(10), c(99))], vec![]);
        let mut ctx = ExecContext::new(&profile);
        let r = eval_cq(&table, &missing, &[], &mut ctx).unwrap();
        assert_eq!(r.len(), 0, "the triple does not exist");
    }

    #[test]
    fn inlj_and_hash_agree_on_longer_chains() {
        // ?a -10-> ?b -10-> ?c, ?a -11-> ?n (mixed star/chain).
        let cq = StoreCq::with_var_head(
            vec![
                StorePattern::new(v(0), c(10), v(1)),
                StorePattern::new(v(1), c(10), v(2)),
                StorePattern::new(v(0), c(11), v(3)),
            ],
            vec![0, 2, 3],
        );
        let a = run(&cq, true);
        let b = run(&cq, false);
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn empty_body_boolean_true() {
        let table = sample();
        let profile = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&profile);
        let cq = StoreCq::with_var_head(vec![], vec![]);
        let r = eval_cq(&table, &cq, &cq.head_vars(), &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
    }
}
