//! The relational executor: σ, π, ⋈, ∪ and duplicate elimination.
//!
//! Split by operator family:
//! * [`cq`] — conjunctive-query pipelines over the triple table
//!   (index-nested-loop or hash);
//! * [`join`] — joins of materialized relations (hash, sort-merge,
//!   block-nested-loop);
//! * [`union`] — unions of CQ results with set semantics.
//!
//! All operators run inside an [`ExecContext`] that enforces the engine
//! profile's deadline and memory budget and records the counters the
//! calibration layer fits cost constants against.

pub mod batch;
pub mod cq;
pub mod join;
pub mod parallel;
pub mod pool;
pub mod union;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::EngineError;
use crate::profile::EngineProfile;

/// How often (in produced tuples) the deadline is polled.
const DEADLINE_POLL_MASK: u64 = 0x3FFF; // every 16384 tuples

/// Work counters, exposed for calibration and diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Tuples read from index scans.
    pub tuples_scanned: u64,
    /// Tuples emitted by join operators.
    pub tuples_joined: u64,
    /// Tuples copied into materialized intermediates.
    pub tuples_materialized: u64,
    /// Tuples examined by duplicate elimination.
    pub tuples_deduped: u64,
    /// Tuples probed against sideways-information-passing filters.
    pub sip_probes: u64,
    /// Tuples dropped by sideways-information-passing filters before
    /// reaching their fragment join.
    pub sip_drops: u64,
    /// Collapsed-interval (`RangeScan`) operator executions.
    pub range_scans: u64,
    /// Fragments served from the materialized-view catalog (epoch-exact
    /// `ViewScan` resolutions; fallback unions do not count).
    pub view_hits: u64,
    /// Merge-join inputs whose sort was skipped because the rows already
    /// arrived in key order from a clustered permutation index.
    pub sorts_elided: u64,
    /// Galloping (exponential-search) seeks taken by skewed merge joins
    /// in place of linear advancement on the larger side.
    pub gallop_seeks: u64,
    /// Scan rows handed to a consumer without the usual dedup/ownership
    /// pass (zero-copy boundary: provably-distinct scan output).
    pub scan_rows_borrowed: u64,
    /// Rows of output capacity reserved up-front from the plan's
    /// cardinality estimates (compare with actual output tuples to see
    /// how well pre-sizing tracks reality).
    pub rows_reserved: u64,
}

/// Per-filter probe/drop totals of one sideways-information-passing
/// Bloom filter, keyed by its node label (`fragment[i].sip_filter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SipFilterStat {
    /// The filter's node label.
    pub label: String,
    /// Tuples probed against the filter.
    pub probes: u64,
    /// Tuples dropped (probe missed: they cannot join).
    pub drops: u64,
}

/// Aggregated runtime profile of one plan node (operator × position in
/// the plan), produced when the context runs with profiling on.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// Scoped node label, e.g. `fragment[0].union` or `join[1].hash_join`.
    pub label: String,
    /// Operator invocations merged into this node.
    pub invocations: u64,
    /// Output rows across all invocations.
    pub rows: u64,
    /// Wall time across all invocations, in nanoseconds.
    pub elapsed_ns: u64,
}

/// Merges operator samples into per-label [`NodeProfile`]s, preserving
/// first-seen order (which follows plan order).
#[derive(Debug, Default)]
struct NodeRecorder {
    nodes: Vec<NodeProfile>,
    by_label: jucq_model::FxHashMap<String, usize>,
    scope: String,
}

impl NodeRecorder {
    fn record(&mut self, op: &str, rows: u64, elapsed_ns: u64) {
        let label = format!("{}{}", self.scope, op);
        self.merge(NodeProfile { label, invocations: 1, rows, elapsed_ns });
    }

    /// Merge an already-labelled profile (e.g. from a worker context)
    /// into the per-label aggregate, ignoring the current scope.
    fn merge(&mut self, profile: NodeProfile) {
        let ix = *self.by_label.entry(profile.label.clone()).or_insert_with(|| {
            self.nodes.push(NodeProfile {
                label: profile.label.clone(),
                invocations: 0,
                rows: 0,
                elapsed_ns: 0,
            });
            self.nodes.len() - 1
        });
        let node = &mut self.nodes[ix];
        node.invocations += profile.invocations;
        node.rows += profile.rows;
        node.elapsed_ns += profile.elapsed_ns;
    }
}

/// Cross-thread evaluation state shared by every worker context of one
/// query: a cooperative cancel flag (set on the first failure, polled by
/// the amortized tick) and the total tuples currently held by worker
/// results, charged against the profile's memory budget *globally* so a
/// parallel run cannot hold more than a sequential one is allowed to.
#[derive(Debug, Default)]
pub struct ExecShared {
    cancel: AtomicBool,
    held_tuples: AtomicU64,
}

impl ExecShared {
    /// Ask every sibling context to stop at its next poll.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether a sibling context requested a stop.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// Shared evaluation state: profile, deadline, counters.
#[derive(Debug)]
pub struct ExecContext<'a> {
    profile: &'a EngineProfile,
    started: Instant,
    /// Cumulative work counters.
    pub counters: Counters,
    ticks: u64,
    recorder: Option<NodeRecorder>,
    sip_stats: Vec<SipFilterStat>,
    shared: Arc<ExecShared>,
}

impl<'a> ExecContext<'a> {
    /// Start an evaluation clock for `profile`.
    pub fn new(profile: &'a EngineProfile) -> Self {
        ExecContext {
            profile,
            started: Instant::now(),
            counters: Counters::default(),
            ticks: 0,
            recorder: None,
            sip_stats: Vec::new(),
            shared: Arc::new(ExecShared::default()),
        }
    }

    /// Like [`ExecContext::new`], additionally collecting per-node
    /// runtime profiles (operators pay for an `Instant` read per call).
    pub fn with_profiling(profile: &'a EngineProfile) -> Self {
        let mut ctx = Self::new(profile);
        ctx.recorder = Some(NodeRecorder::default());
        ctx
    }

    /// Whether per-node profiling is on.
    pub fn profiling(&self) -> bool {
        self.recorder.is_some()
    }

    /// Set the label prefix for subsequently recorded operators, e.g.
    /// `"fragment[0]."`. No-op unless profiling.
    pub fn set_scope(&mut self, scope: String) {
        if let Some(r) = &mut self.recorder {
            r.scope = scope;
        }
    }

    /// Start timing one operator invocation; `None` unless profiling,
    /// so unprofiled runs skip the clock read entirely.
    #[inline]
    pub fn op_start(&self) -> Option<Instant> {
        if self.recorder.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close the invocation opened by [`ExecContext::op_start`],
    /// merging it into the node `scope + op`.
    #[inline]
    pub fn op_finish(&mut self, start: Option<Instant>, op: &str, rows: u64) {
        if let (Some(start), Some(r)) = (start, &mut self.recorder) {
            r.record(op, rows, start.elapsed().as_nanos() as u64);
        }
    }

    /// Take the collected node profiles (empty unless profiling).
    pub fn take_nodes(&mut self) -> Vec<NodeProfile> {
        self.recorder.take().map(|r| r.nodes).unwrap_or_default()
    }

    /// Merge one filter application into the per-filter SIP statistics
    /// (always collected — there are at most a handful of filters per
    /// plan, so this is far off the per-tuple hot path).
    pub fn record_sip(&mut self, label: &str, probes: u64, drops: u64) {
        match self.sip_stats.iter_mut().find(|s| s.label == label) {
            Some(s) => {
                s.probes += probes;
                s.drops += drops;
            }
            None => {
                self.sip_stats.push(SipFilterStat { label: label.to_string(), probes, drops });
            }
        }
    }

    /// Take the per-filter SIP statistics accumulated so far.
    pub fn take_sip_stats(&mut self) -> Vec<SipFilterStat> {
        std::mem::take(&mut self.sip_stats)
    }

    /// The governing profile.
    pub fn profile(&self) -> &EngineProfile {
        self.profile
    }

    /// A [`WorkerSpawner`] capturing everything worker threads need to
    /// open sibling contexts: the profile, the *same* start instant (the
    /// deadline is global) and the shared cancel/budget state.
    pub fn spawner(&self) -> WorkerSpawner<'a> {
        WorkerSpawner {
            profile: self.profile,
            started: self.started,
            shared: Arc::clone(&self.shared),
            profiling: self.recorder.is_some(),
        }
    }

    /// Fold a finished worker context into this one: counters add up
    /// (they are commutative sums, so aggregate totals are independent
    /// of scheduling) and node profiles merge by their recorded labels.
    pub fn absorb(&mut self, mut worker: ExecContext<'_>) {
        self.counters.tuples_scanned += worker.counters.tuples_scanned;
        self.counters.tuples_joined += worker.counters.tuples_joined;
        self.counters.tuples_materialized += worker.counters.tuples_materialized;
        self.counters.tuples_deduped += worker.counters.tuples_deduped;
        self.counters.sip_probes += worker.counters.sip_probes;
        self.counters.sip_drops += worker.counters.sip_drops;
        self.counters.range_scans += worker.counters.range_scans;
        self.counters.view_hits += worker.counters.view_hits;
        self.counters.sorts_elided += worker.counters.sorts_elided;
        self.counters.gallop_seeks += worker.counters.gallop_seeks;
        self.counters.scan_rows_borrowed += worker.counters.scan_rows_borrowed;
        self.counters.rows_reserved += worker.counters.rows_reserved;
        for s in worker.take_sip_stats() {
            self.record_sip(&s.label, s.probes, s.drops);
        }
        if let Some(r) = &mut self.recorder {
            for node in worker.take_nodes() {
                r.merge(node);
            }
        }
    }

    /// The cross-thread shared state (cancel flag + held-tuples budget).
    pub fn shared(&self) -> &Arc<ExecShared> {
        &self.shared
    }

    /// Charge `tuples` held worker-result tuples against the *global*
    /// memory budget (the cross-thread sum, not one intermediate).
    /// Release with [`ExecContext::release_memory`] once merged.
    pub fn reserve_memory(&self, tuples: usize) -> Result<(), EngineError> {
        let total =
            self.shared.held_tuples.fetch_add(tuples as u64, Ordering::Relaxed) + tuples as u64;
        if total > self.profile.memory_budget_tuples as u64 {
            Err(EngineError::MemoryBudgetExceeded {
                tuples: total as usize,
                budget: self.profile.memory_budget_tuples,
            })
        } else {
            Ok(())
        }
    }

    /// Return `tuples` previously charged by [`ExecContext::reserve_memory`].
    pub fn release_memory(&self, tuples: usize) {
        self.shared.held_tuples.fetch_sub(tuples as u64, Ordering::Relaxed);
    }

    /// Cheap, amortized liveness check; call once per produced tuple.
    /// Every poll window it checks the deadline and the shared cancel
    /// flag, so a failure on one worker stops all of them promptly.
    #[inline]
    pub fn tick(&mut self) -> Result<(), EngineError> {
        self.ticks += 1;
        if self.ticks & DEADLINE_POLL_MASK == 0 {
            self.check_live()?;
        }
        Ok(())
    }

    /// Amortized liveness check for a whole batch of `n` produced
    /// tuples: advances the tick counter in one step and polls once per
    /// crossed poll window, so batched operators keep the same
    /// poll-at-least-every-16384-tuples cadence as the row-at-a-time
    /// path without one branch per tuple.
    #[inline]
    pub fn tick_n(&mut self, n: u64) -> Result<(), EngineError> {
        let before = self.ticks;
        self.ticks = self.ticks.wrapping_add(n);
        if self.ticks / (DEADLINE_POLL_MASK + 1) != before / (DEADLINE_POLL_MASK + 1) {
            self.check_live()?;
        }
        Ok(())
    }

    /// Unconditional deadline check (call at operator boundaries).
    pub fn check_deadline(&self) -> Result<(), EngineError> {
        if self.started.elapsed() > self.profile.timeout {
            Err(EngineError::Timeout { limit: self.profile.timeout })
        } else {
            Ok(())
        }
    }

    /// Deadline check plus cross-thread cancellation: errors with
    /// [`EngineError::Cancelled`] when a sibling worker already failed.
    pub fn check_live(&self) -> Result<(), EngineError> {
        if self.shared.cancelled() {
            return Err(EngineError::Cancelled);
        }
        self.check_deadline()
    }

    /// Shift the evaluation clock `by` into the past, as if the context
    /// had been created earlier. Test support for deterministic deadline
    /// coverage: a zero timeout plus any positive backdate is expired
    /// without sleeping.
    pub fn backdate(&mut self, by: Duration) {
        if let Some(t) = self.started.checked_sub(by) {
            self.started = t;
        }
    }

    /// Enforce the memory budget for a materialized intermediate of
    /// `tuples` rows.
    pub fn check_memory(&self, tuples: usize) -> Result<(), EngineError> {
        if tuples > self.profile.memory_budget_tuples {
            Err(EngineError::MemoryBudgetExceeded {
                tuples,
                budget: self.profile.memory_budget_tuples,
            })
        } else {
            Ok(())
        }
    }

    /// Time elapsed since the context was created.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

/// Everything a worker thread needs to open a sibling [`ExecContext`]
/// of a running evaluation. `Sync`, so one spawner can be borrowed by
/// every thread of a [`std::thread::scope`].
#[derive(Debug)]
pub struct WorkerSpawner<'a> {
    profile: &'a EngineProfile,
    started: Instant,
    shared: Arc<ExecShared>,
    profiling: bool,
}

impl<'a> WorkerSpawner<'a> {
    /// Open a sibling context: fresh counters/profiles, but the same
    /// profile, start instant (global deadline) and shared cancel/budget
    /// state as the originating context.
    pub fn context(&self) -> ExecContext<'a> {
        ExecContext {
            profile: self.profile,
            started: self.started,
            counters: Counters::default(),
            ticks: 0,
            recorder: self.profiling.then(NodeRecorder::default),
            sip_stats: Vec::new(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The shared cross-thread state.
    pub fn shared(&self) -> &ExecShared {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn deadline_enforced() {
        // Backdated clock instead of sleeping: deterministic under any
        // scheduler load.
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let mut ctx = ExecContext::new(&p);
        ctx.backdate(Duration::from_millis(2));
        assert!(matches!(ctx.check_deadline(), Err(EngineError::Timeout { .. })));
        let generous = EngineProfile::pg_like();
        let fresh = ExecContext::new(&generous);
        assert!(fresh.check_deadline().is_ok(), "generous deadline passes");
    }

    #[test]
    fn memory_budget_enforced() {
        let p = EngineProfile::pg_like().with_memory_budget(10);
        let ctx = ExecContext::new(&p);
        assert!(ctx.check_memory(10).is_ok());
        assert!(matches!(
            ctx.check_memory(11),
            Err(EngineError::MemoryBudgetExceeded { tuples: 11, budget: 10 })
        ));
    }

    #[test]
    fn node_profiles_merge_by_scoped_label() {
        let p = EngineProfile::pg_like();
        let mut ctx = ExecContext::with_profiling(&p);
        assert!(ctx.profiling());
        ctx.set_scope("fragment[0].".to_string());
        let t = ctx.op_start();
        ctx.op_finish(t, "union", 10);
        let t = ctx.op_start();
        ctx.op_finish(t, "union", 5);
        ctx.set_scope(String::new());
        let t = ctx.op_start();
        ctx.op_finish(t, "dedup", 3);
        let nodes = ctx.take_nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].label, "fragment[0].union");
        assert_eq!(nodes[0].invocations, 2);
        assert_eq!(nodes[0].rows, 15);
        assert_eq!(nodes[1].label, "dedup");
        assert_eq!(nodes[1].rows, 3);

        let mut off = ExecContext::new(&p);
        assert!(off.op_start().is_none());
        let t = off.op_start();
        off.op_finish(t, "union", 1);
        assert!(off.take_nodes().is_empty());
    }

    #[test]
    fn tick_is_cheap_and_eventually_polls() {
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let mut ctx = ExecContext::new(&p);
        ctx.backdate(Duration::from_millis(2));
        let mut failed = false;
        for _ in 0..=DEADLINE_POLL_MASK {
            if ctx.tick().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline must surface within one poll window");
    }

    #[test]
    fn tick_n_polls_once_per_crossed_window() {
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let mut ctx = ExecContext::new(&p);
        ctx.backdate(Duration::from_millis(2));
        // Inside the first poll window nothing is checked...
        assert!(ctx.tick_n(DEADLINE_POLL_MASK).is_ok());
        // ...crossing the boundary surfaces the expired deadline.
        assert!(matches!(ctx.tick_n(1), Err(EngineError::Timeout { .. })));

        // A single huge batch crosses a window by itself.
        let mut ctx = ExecContext::new(&p);
        ctx.backdate(Duration::from_millis(2));
        assert!(matches!(
            ctx.tick_n(10 * (DEADLINE_POLL_MASK + 1)),
            Err(EngineError::Timeout { .. })
        ));
    }

    #[test]
    fn sip_stats_merge_by_label_and_absorb() {
        let p = EngineProfile::pg_like();
        let mut ctx = ExecContext::new(&p);
        ctx.record_sip("fragment[1].sip_filter", 10, 4);
        ctx.record_sip("fragment[1].sip_filter", 5, 1);

        let spawner = ctx.spawner();
        let mut w = spawner.context();
        w.record_sip("fragment[2].sip_filter", 7, 7);
        w.counters.sip_probes = 7;
        w.counters.sip_drops = 7;
        ctx.absorb(w);

        assert_eq!(ctx.counters.sip_probes, 7);
        assert_eq!(ctx.counters.sip_drops, 7);
        let stats = ctx.take_sip_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].label, "fragment[1].sip_filter");
        assert_eq!(stats[0].probes, 15);
        assert_eq!(stats[0].drops, 5);
        assert_eq!(stats[1].label, "fragment[2].sip_filter");
        assert!(ctx.take_sip_stats().is_empty(), "take drains the stats");
    }

    #[test]
    fn worker_contexts_share_deadline_and_cancel() {
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let mut ctx = ExecContext::new(&p);
        ctx.backdate(Duration::from_millis(2));
        // A worker opened from an expired context is itself expired.
        let worker = ctx.spawner().context();
        assert!(matches!(worker.check_deadline(), Err(EngineError::Timeout { .. })));

        let p = EngineProfile::pg_like();
        let ctx = ExecContext::new(&p);
        let spawner = ctx.spawner();
        let a = spawner.context();
        let b = spawner.context();
        assert!(a.check_live().is_ok());
        b.shared().cancel();
        assert!(matches!(a.check_live(), Err(EngineError::Cancelled)));
        assert!(matches!(ctx.check_live(), Err(EngineError::Cancelled)));
    }

    #[test]
    fn reserved_memory_is_charged_globally() {
        let p = EngineProfile::pg_like().with_memory_budget(10);
        let ctx = ExecContext::new(&p);
        let spawner = ctx.spawner();
        let a = spawner.context();
        let b = spawner.context();
        assert!(a.reserve_memory(6).is_ok());
        // Each worker is within budget alone, but the cross-thread sum
        // is not.
        assert!(matches!(
            b.reserve_memory(6),
            Err(EngineError::MemoryBudgetExceeded { tuples: 12, budget: 10 })
        ));
        // Releasing the breached reservation restores headroom.
        b.release_memory(6);
        a.release_memory(6);
        assert!(ctx.reserve_memory(10).is_ok());
    }

    #[test]
    fn absorb_sums_counters_and_merges_nodes() {
        let p = EngineProfile::pg_like();
        let mut ctx = ExecContext::with_profiling(&p);
        let t = ctx.op_start();
        ctx.op_finish(t, "dedup", 3);
        ctx.counters.tuples_scanned = 5;

        let spawner = ctx.spawner();
        let mut w = spawner.context();
        assert!(w.profiling(), "workers inherit profiling");
        w.set_scope("fragment[0].".to_string());
        let t = w.op_start();
        w.op_finish(t, "cq", 7);
        w.counters.tuples_scanned = 2;
        w.counters.tuples_joined = 4;

        ctx.absorb(w);
        assert_eq!(ctx.counters.tuples_scanned, 7);
        assert_eq!(ctx.counters.tuples_joined, 4);
        let nodes = ctx.take_nodes();
        let labels: Vec<&str> = nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, vec!["dedup", "fragment[0].cq"]);
        assert_eq!(nodes[1].rows, 7);
    }
}
