//! The relational executor: σ, π, ⋈, ∪ and duplicate elimination.
//!
//! Split by operator family:
//! * [`cq`] — conjunctive-query pipelines over the triple table
//!   (index-nested-loop or hash);
//! * [`join`] — joins of materialized relations (hash, sort-merge,
//!   block-nested-loop);
//! * [`union`] — unions of CQ results with set semantics.
//!
//! All operators run inside an [`ExecContext`] that enforces the engine
//! profile's deadline and memory budget and records the counters the
//! calibration layer fits cost constants against.

pub mod cq;
pub mod join;
pub mod union;

use std::time::Instant;

use crate::error::EngineError;
use crate::profile::EngineProfile;

/// How often (in produced tuples) the deadline is polled.
const DEADLINE_POLL_MASK: u64 = 0x3FFF; // every 16384 tuples

/// Work counters, exposed for calibration and diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Tuples read from index scans.
    pub tuples_scanned: u64,
    /// Tuples emitted by join operators.
    pub tuples_joined: u64,
    /// Tuples copied into materialized intermediates.
    pub tuples_materialized: u64,
    /// Tuples examined by duplicate elimination.
    pub tuples_deduped: u64,
}

/// Shared evaluation state: profile, deadline, counters.
#[derive(Debug)]
pub struct ExecContext<'a> {
    profile: &'a EngineProfile,
    started: Instant,
    /// Cumulative work counters.
    pub counters: Counters,
    ticks: u64,
}

impl<'a> ExecContext<'a> {
    /// Start an evaluation clock for `profile`.
    pub fn new(profile: &'a EngineProfile) -> Self {
        ExecContext { profile, started: Instant::now(), counters: Counters::default(), ticks: 0 }
    }

    /// The governing profile.
    pub fn profile(&self) -> &EngineProfile {
        self.profile
    }

    /// Cheap, amortized deadline check; call once per produced tuple.
    #[inline]
    pub fn tick(&mut self) -> Result<(), EngineError> {
        self.ticks += 1;
        if self.ticks & DEADLINE_POLL_MASK == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Unconditional deadline check (call at operator boundaries).
    pub fn check_deadline(&self) -> Result<(), EngineError> {
        if self.started.elapsed() > self.profile.timeout {
            Err(EngineError::Timeout { limit: self.profile.timeout })
        } else {
            Ok(())
        }
    }

    /// Enforce the memory budget for a materialized intermediate of
    /// `tuples` rows.
    pub fn check_memory(&self, tuples: usize) -> Result<(), EngineError> {
        if tuples > self.profile.memory_budget_tuples {
            Err(EngineError::MemoryBudgetExceeded {
                tuples,
                budget: self.profile.memory_budget_tuples,
            })
        } else {
            Ok(())
        }
    }

    /// Time elapsed since the context was created.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn deadline_enforced() {
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let ctx = ExecContext::new(&p);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(ctx.check_deadline(), Err(EngineError::Timeout { .. })));
    }

    #[test]
    fn memory_budget_enforced() {
        let p = EngineProfile::pg_like().with_memory_budget(10);
        let ctx = ExecContext::new(&p);
        assert!(ctx.check_memory(10).is_ok());
        assert!(matches!(
            ctx.check_memory(11),
            Err(EngineError::MemoryBudgetExceeded { tuples: 11, budget: 10 })
        ));
    }

    #[test]
    fn tick_is_cheap_and_eventually_polls() {
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let mut ctx = ExecContext::new(&p);
        std::thread::sleep(Duration::from_millis(2));
        let mut failed = false;
        for _ in 0..=DEADLINE_POLL_MASK {
            if ctx.tick().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline must surface within one poll window");
    }
}
