//! The relational executor: σ, π, ⋈, ∪ and duplicate elimination.
//!
//! Split by operator family:
//! * [`cq`] — conjunctive-query pipelines over the triple table
//!   (index-nested-loop or hash);
//! * [`join`] — joins of materialized relations (hash, sort-merge,
//!   block-nested-loop);
//! * [`union`] — unions of CQ results with set semantics.
//!
//! All operators run inside an [`ExecContext`] that enforces the engine
//! profile's deadline and memory budget and records the counters the
//! calibration layer fits cost constants against.

pub mod cq;
pub mod join;
pub mod union;

use std::time::Instant;

use crate::error::EngineError;
use crate::profile::EngineProfile;

/// How often (in produced tuples) the deadline is polled.
const DEADLINE_POLL_MASK: u64 = 0x3FFF; // every 16384 tuples

/// Work counters, exposed for calibration and diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Tuples read from index scans.
    pub tuples_scanned: u64,
    /// Tuples emitted by join operators.
    pub tuples_joined: u64,
    /// Tuples copied into materialized intermediates.
    pub tuples_materialized: u64,
    /// Tuples examined by duplicate elimination.
    pub tuples_deduped: u64,
}

/// Aggregated runtime profile of one plan node (operator × position in
/// the plan), produced when the context runs with profiling on.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// Scoped node label, e.g. `fragment[0].union` or `join[1].hash_join`.
    pub label: String,
    /// Operator invocations merged into this node.
    pub invocations: u64,
    /// Output rows across all invocations.
    pub rows: u64,
    /// Wall time across all invocations, in nanoseconds.
    pub elapsed_ns: u64,
}

/// Merges operator samples into per-label [`NodeProfile`]s, preserving
/// first-seen order (which follows plan order).
#[derive(Debug, Default)]
struct NodeRecorder {
    nodes: Vec<NodeProfile>,
    by_label: jucq_model::FxHashMap<String, usize>,
    scope: String,
}

impl NodeRecorder {
    fn record(&mut self, op: &str, rows: u64, elapsed_ns: u64) {
        let label = format!("{}{}", self.scope, op);
        let ix = *self.by_label.entry(label.clone()).or_insert_with(|| {
            self.nodes.push(NodeProfile { label, invocations: 0, rows: 0, elapsed_ns: 0 });
            self.nodes.len() - 1
        });
        let node = &mut self.nodes[ix];
        node.invocations += 1;
        node.rows += rows;
        node.elapsed_ns += elapsed_ns;
    }
}

/// Shared evaluation state: profile, deadline, counters.
#[derive(Debug)]
pub struct ExecContext<'a> {
    profile: &'a EngineProfile,
    started: Instant,
    /// Cumulative work counters.
    pub counters: Counters,
    ticks: u64,
    recorder: Option<NodeRecorder>,
}

impl<'a> ExecContext<'a> {
    /// Start an evaluation clock for `profile`.
    pub fn new(profile: &'a EngineProfile) -> Self {
        ExecContext {
            profile,
            started: Instant::now(),
            counters: Counters::default(),
            ticks: 0,
            recorder: None,
        }
    }

    /// Like [`ExecContext::new`], additionally collecting per-node
    /// runtime profiles (operators pay for an `Instant` read per call).
    pub fn with_profiling(profile: &'a EngineProfile) -> Self {
        let mut ctx = Self::new(profile);
        ctx.recorder = Some(NodeRecorder::default());
        ctx
    }

    /// Whether per-node profiling is on.
    pub fn profiling(&self) -> bool {
        self.recorder.is_some()
    }

    /// Set the label prefix for subsequently recorded operators, e.g.
    /// `"fragment[0]."`. No-op unless profiling.
    pub fn set_scope(&mut self, scope: String) {
        if let Some(r) = &mut self.recorder {
            r.scope = scope;
        }
    }

    /// Start timing one operator invocation; `None` unless profiling,
    /// so unprofiled runs skip the clock read entirely.
    #[inline]
    pub fn op_start(&self) -> Option<Instant> {
        if self.recorder.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close the invocation opened by [`ExecContext::op_start`],
    /// merging it into the node `scope + op`.
    #[inline]
    pub fn op_finish(&mut self, start: Option<Instant>, op: &str, rows: u64) {
        if let (Some(start), Some(r)) = (start, &mut self.recorder) {
            r.record(op, rows, start.elapsed().as_nanos() as u64);
        }
    }

    /// Take the collected node profiles (empty unless profiling).
    pub fn take_nodes(&mut self) -> Vec<NodeProfile> {
        self.recorder.take().map(|r| r.nodes).unwrap_or_default()
    }

    /// The governing profile.
    pub fn profile(&self) -> &EngineProfile {
        self.profile
    }

    /// Cheap, amortized deadline check; call once per produced tuple.
    #[inline]
    pub fn tick(&mut self) -> Result<(), EngineError> {
        self.ticks += 1;
        if self.ticks & DEADLINE_POLL_MASK == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Unconditional deadline check (call at operator boundaries).
    pub fn check_deadline(&self) -> Result<(), EngineError> {
        if self.started.elapsed() > self.profile.timeout {
            Err(EngineError::Timeout { limit: self.profile.timeout })
        } else {
            Ok(())
        }
    }

    /// Enforce the memory budget for a materialized intermediate of
    /// `tuples` rows.
    pub fn check_memory(&self, tuples: usize) -> Result<(), EngineError> {
        if tuples > self.profile.memory_budget_tuples {
            Err(EngineError::MemoryBudgetExceeded {
                tuples,
                budget: self.profile.memory_budget_tuples,
            })
        } else {
            Ok(())
        }
    }

    /// Time elapsed since the context was created.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn deadline_enforced() {
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let ctx = ExecContext::new(&p);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(ctx.check_deadline(), Err(EngineError::Timeout { .. })));
    }

    #[test]
    fn memory_budget_enforced() {
        let p = EngineProfile::pg_like().with_memory_budget(10);
        let ctx = ExecContext::new(&p);
        assert!(ctx.check_memory(10).is_ok());
        assert!(matches!(
            ctx.check_memory(11),
            Err(EngineError::MemoryBudgetExceeded { tuples: 11, budget: 10 })
        ));
    }

    #[test]
    fn node_profiles_merge_by_scoped_label() {
        let p = EngineProfile::pg_like();
        let mut ctx = ExecContext::with_profiling(&p);
        assert!(ctx.profiling());
        ctx.set_scope("fragment[0].".to_string());
        let t = ctx.op_start();
        ctx.op_finish(t, "union", 10);
        let t = ctx.op_start();
        ctx.op_finish(t, "union", 5);
        ctx.set_scope(String::new());
        let t = ctx.op_start();
        ctx.op_finish(t, "dedup", 3);
        let nodes = ctx.take_nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].label, "fragment[0].union");
        assert_eq!(nodes[0].invocations, 2);
        assert_eq!(nodes[0].rows, 15);
        assert_eq!(nodes[1].label, "dedup");
        assert_eq!(nodes[1].rows, 3);

        let mut off = ExecContext::new(&p);
        assert!(off.op_start().is_none());
        let t = off.op_start();
        off.op_finish(t, "union", 1);
        assert!(off.take_nodes().is_empty());
    }

    #[test]
    fn tick_is_cheap_and_eventually_polls() {
        let p = EngineProfile::pg_like().with_timeout(Duration::from_millis(0));
        let mut ctx = ExecContext::new(&p);
        std::thread::sleep(Duration::from_millis(2));
        let mut failed = false;
        for _ in 0..=DEADLINE_POLL_MASK {
            if ctx.tick().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline must surface within one poll window");
    }
}
