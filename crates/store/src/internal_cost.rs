//! The engine's *internal* cost estimator.
//!
//! Figure 9 of the paper compares two ways of guiding ECov/GCov: the
//! analytic cost model of §4.1 (implemented in `jucq-optimizer`) and
//! "the RDBMS's internal cost estimation function", obtained there by
//! sending `EXPLAIN` statements to Postgres. This module plays the
//! latter role for our engine: it estimates the cost of a [`StoreJucq`]
//! from the engine's *actual* physical plan — greedy INLJ pipelines per
//! CQ, per-profile fragment join algorithm, materialization policy —
//! rather than from the paper's abstract scan/join/materialize formulas.
//! The two models legitimately disagree in places, which is precisely
//! what the figure studies.

use jucq_model::FxHashMap;

use crate::ir::{StoreCq, StoreJucq, StorePattern, StoreUcq};
use crate::profile::{EngineProfile, JoinAlgo};
use crate::stats::Statistics;
use crate::table::TripleTable;
use crate::Store;

/// Per-tuple work factors of the internal model (arbitrary engine cost
/// units, like Postgres' `cost=` numbers — only relative order matters).
const CPU_TUPLE: f64 = 1.0;
const CPU_PROBE: f64 = 1.2;
const CPU_HASH_BUILD: f64 = 1.5;
const CPU_SORT_FACTOR: f64 = 2.0;
const CPU_MATERIALIZE: f64 = 0.8;
const CPU_DEDUP: f64 = 1.1;
const STARTUP: f64 = 10.0;

/// Per-tuple CPU discount of the batched kernels (calibrated from the
/// `vec_speedup` bench: amortized liveness polls, hoisted column maps
/// and bulk buffer appends cut per-tuple dispatch by roughly a third).
/// Applied to every CPU term but not to `STARTUP`.
const BATCH_CPU_DISCOUNT: f64 = 0.7;

/// Join-input discount when sideways-information-passing filters are
/// on: Bloom probes drop part of each non-base fragment before it
/// reaches the fragment join, shrinking build and probe inputs.
const SIP_JOIN_DISCOUNT: f64 = 0.85;

/// Cost of one fragment-join step over inputs of `acc` and `c` rows.
/// For [`JoinAlgo::SortMerge`], `elide` drops the sort term of a side
/// that already arrives ordered on the join key (the order-aware
/// planner's sort elision); the residual linear term is the merge
/// itself. The other algorithms ignore `elide`.
pub(crate) fn join_step_cost(algo: JoinAlgo, acc: f64, c: f64, elide: (bool, bool)) -> f64 {
    match algo {
        JoinAlgo::Hash => CPU_HASH_BUILD * acc.min(c) + CPU_PROBE * acc.max(c),
        JoinAlgo::SortMerge => {
            let sort = |n: f64, elided: bool| {
                if elided {
                    0.0
                } else {
                    CPU_SORT_FACTOR * n * n.max(2.0).log2()
                }
            };
            sort(acc, elide.0) + sort(c, elide.1) + CPU_TUPLE * (acc + c)
        }
        JoinAlgo::BlockNestedLoop => CPU_TUPLE * acc * c,
    }
}

/// Estimate the internal cost of evaluating one CQ with the greedy
/// index-nested-loop pipeline: sum of intermediate result sizes.
fn cq_cost(stats: &Statistics, table: &TripleTable, cq: &StoreCq) -> f64 {
    if cq.patterns.is_empty() {
        return CPU_TUPLE;
    }
    // Approximate the pipeline by accumulating the CQ estimate over
    // prefixes of the greedy order (cheapest extent first).
    let mut order: Vec<usize> = (0..cq.patterns.len()).collect();
    order.sort_by_key(|&i| table.count(&cq.patterns[i].bound()));
    let mut cost = 0.0;
    for k in 1..=order.len() {
        let prefix: Vec<_> = order[..k].iter().map(|&i| cq.patterns[i]).collect();
        let sub = StoreCq::with_var_head(prefix, vec![]);
        let inter = stats.est_cq(table, &sub);
        cost += CPU_PROBE * inter + CPU_TUPLE;
    }
    cost
}

/// Estimate the internal cost of one fragment UCQ (members + dedup).
fn ucq_cost(stats: &Statistics, table: &TripleTable, ucq: &StoreUcq) -> f64 {
    let members: f64 = ucq.cqs.iter().map(|cq| cq_cost(stats, table, cq)).sum();
    let card = stats.est_ucq(table, ucq);
    members + CPU_DEDUP * card + STARTUP * ucq.cqs.len() as f64
}

/// Scan work the planner's common-scan factoring saves: each distinct
/// pattern scanned by `k > 1` members is computed once instead of `k`
/// times. Mirrors the planner's scan-position prediction (the
/// first-minimum-extent leaf per member under INLJ, every atom under
/// the hash strategy) but stays deliberately cheap — `estimate` runs
/// inside cover-search scoring loops, so no full plan lowering here.
fn sharing_savings(table: &TripleTable, profile: &EngineProfile, q: &StoreJucq) -> f64 {
    if !profile.share_scans {
        return 0.0;
    }
    let mut uses: FxHashMap<StorePattern, (usize, f64)> = FxHashMap::default();
    let mut count_use = |p: StorePattern| {
        let e = uses.entry(p).or_insert_with(|| (0, table.count(&p.bound()) as f64));
        e.0 += 1;
    };
    for frag in &q.fragments {
        for cq in &frag.cqs {
            if cq.patterns.is_empty() {
                continue;
            }
            if profile.index_nested_loop_cq {
                let leaf = cq
                    .patterns
                    .iter()
                    .min_by_key(|p| table.count(&p.bound()))
                    .expect("non-empty body");
                count_use(*leaf);
            } else {
                for p in &cq.patterns {
                    count_use(*p);
                }
            }
        }
    }
    uses.values().filter(|(k, _)| *k > 1).map(|(k, card)| (*k - 1) as f64 * CPU_PROBE * card).sum()
}

/// Estimate the internal cost of a whole JUCQ under the store's profile.
pub fn estimate(store: &Store, q: &StoreJucq) -> f64 {
    let stats = store.stats();
    let table = store.table();
    let profile = store.profile();

    let frag_costs: f64 = q.fragments.iter().map(|f| ucq_cost(stats, table, f)).sum();
    let frag_cards: Vec<f64> = q.fragments.iter().map(|f| stats.est_ucq(table, f)).collect();

    // Materialization: all fragments if the profile materializes every
    // union, otherwise all but the largest.
    let mat: f64 = if q.fragments.len() <= 1 && !profile.materialize_all_unions {
        0.0
    } else {
        let largest = frag_cards.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        let total: f64 = frag_cards.iter().sum();
        let charged = if profile.materialize_all_unions { total } else { total - largest };
        CPU_MATERIALIZE * charged.max(0.0)
    };

    // Fragment joins, following the profile's algorithm.
    let mut join_cost = 0.0;
    if q.fragments.len() > 1 {
        let mut acc = frag_cards[0];
        for (i, &c) in frag_cards.iter().enumerate().skip(1) {
            let base = join_step_cost(profile.fragment_join, acc, c, (false, false));
            join_cost += if profile.order_aware
                && !matches!(profile.fragment_join, JoinAlgo::BlockNestedLoop)
            {
                // Mirror the order-aware planner: a single-member
                // fragment's scan can feed the join pre-sorted on the
                // key, dropping that side's sort term, and the planner
                // takes the cheaper of the profile's algorithm and the
                // (possibly sort-elided) merge. The left side is only
                // assumed ordered on the first step, where it is still
                // a fragment rather than a join output.
                let elide =
                    (i == 1 && q.fragments[0].cqs.len() == 1, q.fragments[i].cqs.len() == 1);
                base.min(join_step_cost(JoinAlgo::SortMerge, acc, c, elide))
            } else {
                base
            };
            // Rough running estimate of the accumulated join size.
            let sub = StoreJucq::new(q.fragments[..=i].to_vec(), q.head.clone());
            acc = stats.est_jucq(table, &sub);
        }
    }

    let final_card = stats.est_jucq(table, q);
    let savings = sharing_savings(table, profile, q);
    let cpu_scale = if profile.vectorized { BATCH_CPU_DISCOUNT } else { 1.0 };
    let join_scale = if profile.sip_filters && q.fragments.len() > 1 {
        cpu_scale * SIP_JOIN_DISCOUNT
    } else {
        cpu_scale
    };
    cpu_scale * ((frag_costs - savings).max(0.0) + mat + CPU_DEDUP * final_card)
        + join_scale * join_cost
        + STARTUP
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{PatternTerm, StorePattern, VarId};
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn store(profile: EngineProfile) -> Store {
        let triples: Vec<TripleId> =
            (0..100).map(|i| t(i, 10, i % 7)).chain((0..10).map(|i| t(i, 11, 99))).collect();
        Store::from_triples(&triples, profile)
    }

    fn one_fragment(patterns: Vec<StorePattern>) -> StoreUcq {
        let head: Vec<VarId> = {
            let cq = StoreCq::with_var_head(patterns.clone(), vec![]);
            cq.body_variables()
        };
        StoreUcq::new(vec![StoreCq::with_var_head(patterns, head.clone())], head)
    }

    #[test]
    fn cost_is_positive_and_finite() {
        let s = store(EngineProfile::pg_like());
        let q = StoreJucq::from_ucq(one_fragment(vec![StorePattern::new(v(0), c(10), v(1))]));
        let cost = estimate(&s, &q);
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn more_union_terms_cost_more() {
        let s = store(EngineProfile::pg_like());
        let member = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]);
        let small = StoreJucq::from_ucq(StoreUcq::new(vec![member.clone()], vec![0, 1]));
        let big = StoreJucq::from_ucq(StoreUcq::new(
            vec![member.clone(), member.clone(), member],
            vec![0, 1],
        ));
        assert!(estimate(&s, &big) > estimate(&s, &small));
    }

    #[test]
    fn nested_loop_profile_penalizes_fragment_joins() {
        let fa = one_fragment(vec![StorePattern::new(v(0), c(10), v(1))]);
        let fb = one_fragment(vec![StorePattern::new(v(0), c(11), v(2))]);
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1, 2]);
        let hash_cost = estimate(&store(EngineProfile::pg_like()), &q);
        let bnl_cost = estimate(&store(EngineProfile::mysql_like()), &q);
        assert!(bnl_cost > hash_cost, "BNL {bnl_cost} should exceed hash {hash_cost}");
    }

    #[test]
    fn scan_sharing_lowers_the_estimate() {
        // Two members sharing the same cheap leaf (?0 11 99): the
        // factored plan scans it once, and the internal model credits
        // the saving when the profile shares scans.
        let member_a = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(11), c(99)), StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let member_b = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(11), c(99)), StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let q = StoreJucq::from_ucq(StoreUcq::new(vec![member_a, member_b], vec![0, 1]));
        let shared = estimate(&store(EngineProfile::pg_like()), &q);
        let unshared = estimate(&store(EngineProfile::pg_like().with_scan_sharing(false)), &q);
        assert!(shared < unshared, "shared {shared} should undercut unshared {unshared}");
    }

    #[test]
    fn vectorized_execution_discounts_cpu_cost() {
        let q = StoreJucq::from_ucq(one_fragment(vec![StorePattern::new(v(0), c(10), v(1))]));
        let batched = estimate(&store(EngineProfile::pg_like()), &q);
        let row = estimate(&store(EngineProfile::pg_like().with_batch_size(0)), &q);
        assert!(batched < row, "batched {batched} should undercut row-at-a-time {row}");
    }

    #[test]
    fn sip_discounts_multi_fragment_joins_only() {
        let fa = one_fragment(vec![StorePattern::new(v(0), c(10), v(1))]);
        let fb = one_fragment(vec![StorePattern::new(v(0), c(11), v(2))]);
        let multi = StoreJucq::new(vec![fa.clone(), fb], vec![0, 1, 2]);
        let on = estimate(&store(EngineProfile::pg_like()), &multi);
        let off = estimate(&store(EngineProfile::pg_like().with_sip_filters(false)), &multi);
        assert!(on < off, "SIP {on} should undercut no-SIP {off}");
        // A single fragment has no join for SIP to discount.
        let single = StoreJucq::from_ucq(fa);
        let on = estimate(&store(EngineProfile::pg_like()), &single);
        let off = estimate(&store(EngineProfile::pg_like().with_sip_filters(false)), &single);
        assert_eq!(on, off);
    }

    #[test]
    fn empty_extent_query_is_cheap() {
        let s = store(EngineProfile::pg_like());
        let q = StoreJucq::from_ucq(one_fragment(vec![StorePattern::new(v(0), c(99), v(1))]));
        let cost = estimate(&s, &q);
        assert!(
            cost < estimate(
                &s,
                &StoreJucq::from_ucq(one_fragment(vec![StorePattern::new(v(0), c(10), v(1)),]))
            )
        );
    }
}
