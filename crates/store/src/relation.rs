//! Materialized relations: the tuples flowing between operators.

use jucq_model::{FxHashSet, TermId};

use crate::ir::VarId;

/// A materialized relation: a flat row-major buffer of [`TermId`]s with
/// a variable-name schema. Flattening keeps rows contiguous (one
/// allocation instead of one per row) — the hot representation the
/// perf-book guidance asks for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    vars: Vec<VarId>,
    data: Vec<TermId>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(vars: Vec<VarId>) -> Self {
        Relation { vars, data: Vec::new() }
    }

    /// An empty relation with pre-reserved row capacity.
    pub fn with_capacity(vars: Vec<VarId>, rows: usize) -> Self {
        let width = vars.len();
        Relation { vars, data: Vec::with_capacity(rows * width) }
    }

    /// The schema: one variable per column.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.vars.is_empty() {
            // Zero-width relations encode boolean results: we store the
            // row count out-of-band as data length (0 or 1 sentinel per
            // row would be invisible with width 0), so treat data len as
            // the count directly.
            self.data.len()
        } else {
            self.data.len() / self.vars.len()
        }
    }

    /// True iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics (debug) if the row width does not match the schema. For
    /// zero-width relations, pushes a presence marker.
    pub fn push_row(&mut self, row: &[TermId]) {
        debug_assert_eq!(row.len(), self.vars.len());
        if self.vars.is_empty() {
            // Presence marker for boolean relations.
            self.data.push(TermId::from_raw(0));
        } else {
            self.data.extend_from_slice(row);
        }
    }

    /// Iterate over rows as slices. Zero-width (boolean) relations yield
    /// one empty slice per presence marker.
    pub fn rows(&self) -> impl Iterator<Item = &[TermId]> + '_ {
        let zero_width = self.vars.is_empty();
        let width = if zero_width { 1 } else { self.vars.len() };
        self.data.chunks_exact(width).map(move |chunk| if zero_width { &chunk[..0] } else { chunk })
    }

    /// Row access by index. Zero-width (boolean) relations yield empty
    /// slices.
    pub fn row(&self, i: usize) -> &[TermId] {
        if self.vars.is_empty() {
            debug_assert!(i < self.data.len());
            return &[];
        }
        let w = self.vars.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// The column position of a variable, if present.
    pub fn column_of(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|&v| v == var)
    }

    /// Project onto `head` (reordering/dropping columns).
    ///
    /// # Panics
    /// Panics if a head variable is missing from the schema.
    pub fn project(&self, head: &[VarId]) -> Relation {
        if head == self.vars {
            return self.clone();
        }
        let cols: Vec<usize> =
            head.iter().map(|v| self.column_of(*v).expect("projection variable present")).collect();
        let mut out = Relation::with_capacity(head.to_vec(), self.len());
        let mut row_buf: Vec<TermId> = Vec::with_capacity(head.len());
        for row in self.rows() {
            row_buf.clear();
            row_buf.extend(cols.iter().map(|&c| row[c]));
            out.push_row(&row_buf);
        }
        out
    }

    /// Remove duplicate rows (hash-based; set semantics). Returns the
    /// number of rows removed.
    pub fn dedup_in_place(&mut self) -> usize {
        if self.vars.is_empty() {
            let before = self.data.len();
            self.data.truncate(1.min(before));
            return before - self.data.len();
        }
        let width = self.vars.len();
        let mut seen: FxHashSet<&[TermId]> = FxHashSet::default();
        let mut keep: Vec<bool> = Vec::with_capacity(self.len());
        // Safety dance avoided: collect row hashes via a temporary set of
        // owned keys would allocate per row; instead do two passes over
        // indices with a set of row slices borrowed from a snapshot.
        let snapshot = self.data.clone();
        for chunk in snapshot.chunks_exact(width) {
            keep.push(seen.insert(chunk));
        }
        let mut removed = 0;
        let mut write = 0;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                if write != i {
                    self.data.copy_within(i * width..(i + 1) * width, write * width);
                }
                write += 1;
            } else {
                removed += 1;
            }
        }
        self.data.truncate(write * width);
        removed
    }

    /// Remove duplicate rows without the snapshot copy of
    /// [`Relation::dedup_in_place`]: open-addressing over row indices
    /// into the already-compacted prefix (kept rows sit at or before the
    /// candidate, so probing only ever reads settled data). Same result
    /// and first-occurrence order as the snapshot version; used by the
    /// vectorized execution path.
    pub fn dedup_in_place_hashed(&mut self) -> usize {
        if self.vars.is_empty() {
            let before = self.data.len();
            self.data.truncate(1.min(before));
            return before - self.data.len();
        }
        let width = self.vars.len();
        let n = self.len();
        if n == 0 {
            return 0;
        }
        // ≤ 50% load factor; slot 0 = empty, else kept-row index + 1.
        let mut slots: Vec<u32> = vec![0; (n * 2).next_power_of_two()];
        let mask = slots.len() - 1;
        let hash = |row: &[TermId]| -> usize {
            let mut h: u64 = row.len() as u64;
            for t in row {
                h = (h.rotate_left(5) ^ u64::from(t.raw())).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
            }
            h as usize
        };
        let mut write = 0usize;
        let mut removed = 0usize;
        for i in 0..n {
            let start = i * width;
            let mut slot = hash(&self.data[start..start + width]) & mask;
            let mut dup = false;
            loop {
                match slots[slot] {
                    0 => {
                        slots[slot] = write as u32 + 1;
                        break;
                    }
                    idx => {
                        let j = (idx as usize - 1) * width;
                        if self.data[j..j + width] == self.data[start..start + width] {
                            dup = true;
                            break;
                        }
                        slot = (slot + 1) & mask;
                    }
                }
            }
            if dup {
                removed += 1;
            } else {
                if write != i {
                    self.data.copy_within(start..start + width, write * width);
                }
                write += 1;
            }
        }
        self.data.truncate(write * width);
        removed
    }

    /// Keep only the rows satisfying `pred`, preserving order; returns
    /// the number of rows kept. Zero-width (boolean) relations are left
    /// untouched — their rows carry no values to test.
    pub fn retain_rows(&mut self, mut pred: impl FnMut(&[TermId]) -> bool) -> usize {
        if self.vars.is_empty() {
            return self.len();
        }
        let width = self.vars.len();
        let n = self.len();
        let mut write = 0usize;
        for i in 0..n {
            let start = i * width;
            if pred(&self.data[start..start + width]) {
                if write != i {
                    self.data.copy_within(start..start + width, write * width);
                }
                write += 1;
            }
        }
        self.data.truncate(write * width);
        write
    }

    /// Append width-aligned row data in one bulk copy (the batched
    /// kernels' flush path).
    ///
    /// # Panics
    /// Panics (debug) if the relation is zero-width or the data length
    /// is not a multiple of the width.
    pub(crate) fn append_flat(&mut self, flat: &[TermId]) {
        debug_assert!(!self.vars.is_empty(), "zero-width rows are presence markers, not data");
        debug_assert_eq!(flat.len() % self.vars.len(), 0);
        self.data.extend_from_slice(flat);
    }

    /// Concatenate another relation with the same schema.
    ///
    /// # Panics
    /// Panics (debug) if the schemas differ.
    pub fn append(&mut self, other: &Relation) {
        debug_assert_eq!(self.vars, other.vars);
        self.data.extend_from_slice(&other.data);
    }

    /// Sort rows lexicographically (used by sort-merge join and for
    /// deterministic test comparisons).
    pub fn sort(&mut self) {
        if self.vars.is_empty() {
            return;
        }
        let width = self.vars.len();
        let mut rows: Vec<Vec<TermId>> =
            self.data.chunks_exact(width).map(<[TermId]>::to_vec).collect();
        rows.sort_unstable();
        self.data.clear();
        for r in rows {
            self.data.extend_from_slice(&r);
        }
    }

    /// Keep only the first `n` rows (SPARQL `LIMIT`).
    pub fn truncate(&mut self, n: usize) {
        let w = if self.vars.is_empty() { 1 } else { self.vars.len() };
        self.data.truncate(n.saturating_mul(w));
    }

    /// Collect rows as owned vectors (test/diagnostic helper).
    pub fn to_rows(&self) -> Vec<Vec<TermId>> {
        self.rows().map(<[TermId]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn rel(vars: Vec<VarId>, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::empty(vars);
        for row in rows {
            let ids: Vec<TermId> = row.iter().map(|&x| id(x)).collect();
            r.push_row(&ids);
        }
        r
    }

    #[test]
    fn push_and_iterate() {
        let r = rel(vec![0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[id(3), id(4)]);
        assert_eq!(r.rows().count(), 2);
    }

    #[test]
    fn projection_reorders_and_drops() {
        let r = rel(vec![0, 1, 2], &[&[1, 2, 3], &[4, 5, 6]]);
        let p = r.project(&[2, 0]);
        assert_eq!(p.vars(), &[2, 0]);
        assert_eq!(p.to_rows(), vec![vec![id(3), id(1)], vec![id(6), id(4)]]);
    }

    #[test]
    fn projection_identity_is_cheap_copy() {
        let r = rel(vec![0, 1], &[&[1, 2]]);
        assert_eq!(r.project(&[0, 1]), r);
    }

    #[test]
    fn dedup_removes_duplicates_keeping_first_occurrence_order() {
        let mut r = rel(vec![0], &[&[1], &[2], &[1], &[3], &[2]]);
        let removed = r.dedup_in_place();
        assert_eq!(removed, 2);
        assert_eq!(r.to_rows(), vec![vec![id(1)], vec![id(2)], vec![id(3)]]);
    }

    #[test]
    fn dedup_on_empty_is_noop() {
        let mut r = Relation::empty(vec![0, 1]);
        assert_eq!(r.dedup_in_place(), 0);
        assert_eq!(r.dedup_in_place_hashed(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn hashed_dedup_matches_snapshot_dedup() {
        let mut snap = Relation::empty(vec![0, 1]);
        for i in 0..300u32 {
            snap.push_row(&[id(i % 40), id(i % 7)]);
        }
        let mut hashed = snap.clone();
        assert_eq!(snap.dedup_in_place(), hashed.dedup_in_place_hashed());
        assert_eq!(snap, hashed, "same survivors in the same order");

        let mut boolean = Relation::empty(vec![]);
        boolean.push_row(&[]);
        boolean.push_row(&[]);
        assert_eq!(boolean.dedup_in_place_hashed(), 1);
        assert_eq!(boolean.len(), 1);
    }

    #[test]
    fn retain_rows_compacts_in_order() {
        let mut r = rel(vec![0, 1], &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let kept = r.retain_rows(|row| row[0] != id(3) && row[0] != id(7));
        assert_eq!(kept, 2);
        assert_eq!(r.to_rows(), vec![vec![id(1), id(2)], vec![id(5), id(6)]]);

        let mut boolean = Relation::empty(vec![]);
        boolean.push_row(&[]);
        assert_eq!(boolean.retain_rows(|_| false), 1, "boolean rows are never filtered");
        assert_eq!(boolean.len(), 1);
    }

    #[test]
    fn append_concatenates() {
        let mut a = rel(vec![0], &[&[1]]);
        let b = rel(vec![0], &[&[2], &[3]]);
        a.append(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn sort_orders_rows() {
        let mut r = rel(vec![0, 1], &[&[3, 1], &[1, 2], &[2, 0]]);
        r.sort();
        assert_eq!(r.to_rows(), vec![vec![id(1), id(2)], vec![id(2), id(0)], vec![id(3), id(1)]]);
    }

    #[test]
    fn zero_width_boolean_relation() {
        let mut r = Relation::empty(vec![]);
        assert!(r.is_empty());
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 2);
        r.dedup_in_place();
        assert_eq!(r.len(), 1, "boolean TRUE collapses to one row");
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut r = rel(vec![0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        r.truncate(2);
        assert_eq!(r.to_rows(), vec![vec![id(1), id(2)], vec![id(3), id(4)]]);
        r.truncate(10);
        assert_eq!(r.len(), 2, "over-truncation is a no-op");
    }

    #[test]
    fn column_lookup() {
        let r = rel(vec![4, 7], &[]);
        assert_eq!(r.column_of(7), Some(1));
        assert_eq!(r.column_of(9), None);
    }
}
