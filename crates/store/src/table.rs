//! The `Triples(s,p,o)` table and its six permutation indexes.
//!
//! Mirrors the paper's storage layout (§5.1): one triples table "indexed
//! by all permutations of the s,p,o columns, leading to a total of 6
//! indexes", dictionary-encoded. Each index is a clustered copy of the
//! table sorted by one column permutation, so every triple-pattern scan
//! is a binary-search prefix range over a contiguous slice — and every
//! triple-pattern **cardinality is exact** in O(log n), which the
//! statistics layer exploits.

use jucq_model::{TermId, TripleId};

/// The six column permutations of `(s, p, o)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perm {
    /// subject, property, object
    Spo,
    /// subject, object, property
    Sop,
    /// property, subject, object
    Pso,
    /// property, object, subject
    Pos,
    /// object, subject, property
    Osp,
    /// object, property, subject
    Ops,
}

impl Perm {
    /// All six permutations.
    pub const ALL: [Perm; 6] = [Perm::Spo, Perm::Sop, Perm::Pso, Perm::Pos, Perm::Osp, Perm::Ops];

    /// The sort key of a triple under this permutation.
    #[inline]
    pub fn key(self, t: &TripleId) -> [u32; 3] {
        let (s, p, o) = (t.s.raw(), t.p.raw(), t.o.raw());
        match self {
            Perm::Spo => [s, p, o],
            Perm::Sop => [s, o, p],
            Perm::Pso => [p, s, o],
            Perm::Pos => [p, o, s],
            Perm::Osp => [o, s, p],
            Perm::Ops => [o, p, s],
        }
    }

    /// Pick the permutation whose key prefix covers exactly the bound
    /// positions of a pattern `[s?, p?, o?]`.
    pub fn for_bound(bound: &[Option<TermId>; 3]) -> Perm {
        match (bound[0].is_some(), bound[1].is_some(), bound[2].is_some()) {
            (false, false, false) => Perm::Spo,
            (true, false, false) => Perm::Spo,
            (false, true, false) => Perm::Pso,
            (false, false, true) => Perm::Osp,
            (true, true, false) => Perm::Spo,
            (true, false, true) => Perm::Sop,
            (false, true, true) => Perm::Pos,
            (true, true, true) => Perm::Spo,
        }
    }

    /// The triple positions (0 = s, 1 = p, 2 = o) in this permutation's
    /// key order — e.g. `Pos` sorts by property, then object, then
    /// subject, so its key positions are `[1, 2, 0]`.
    #[inline]
    pub fn key_positions(self) -> [usize; 3] {
        match self {
            Perm::Spo => [0, 1, 2],
            Perm::Sop => [0, 2, 1],
            Perm::Pso => [1, 0, 2],
            Perm::Pos => [1, 2, 0],
            Perm::Osp => [2, 0, 1],
            Perm::Ops => [2, 1, 0],
        }
    }

    /// Every permutation whose key prefix covers exactly the bound
    /// positions of `bound` — the candidate set the interesting-orders
    /// pass chooses among. Singly-bound patterns have two candidates
    /// (the residual free pair in either order), the unbound pattern has
    /// all six; [`Perm::for_bound`]'s pick is always the first entry.
    pub fn candidates_for_bound(bound: &[Option<TermId>; 3]) -> Vec<Perm> {
        let default = Perm::for_bound(bound);
        let k = bound.iter().filter(|c| c.is_some()).count();
        let mut out = vec![default];
        for p in Perm::ALL {
            if p == default {
                continue;
            }
            let pos = p.key_positions();
            if pos[..k].iter().all(|&i| bound[i].is_some()) {
                out.push(p);
            }
        }
        out
    }

    /// The bound-position prefix of the lookup key for this permutation
    /// (`None` marks the unconstrained tail).
    fn prefix(self, bound: &[Option<TermId>; 3]) -> [Option<u32>; 3] {
        let (s, p, o) =
            (bound[0].map(TermId::raw), bound[1].map(TermId::raw), bound[2].map(TermId::raw));
        match self {
            Perm::Spo => [s, p, o],
            Perm::Sop => [s, o, p],
            Perm::Pso => [p, s, o],
            Perm::Pos => [p, o, s],
            Perm::Osp => [o, s, p],
            Perm::Ops => [o, p, s],
        }
    }
}

/// The triple position a [`TripleTable::scan_value_range`] ranges over
/// (the two positions hierarchy intervals apply to: class objects of
/// `rdf:type` atoms and predicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RangePos {
    /// Range over the property column.
    Predicate,
    /// Range over the object column.
    Object,
}

impl Perm {
    /// Pick the permutation whose key puts the bound positions first and
    /// the ranged position immediately after — so a value range on that
    /// position is one contiguous slice of the index.
    pub fn for_range(bound: &[Option<TermId>; 3], ranged: RangePos) -> Perm {
        match ranged {
            RangePos::Object => match (bound[0].is_some(), bound[1].is_some()) {
                (false, false) => Perm::Osp,
                (true, false) => Perm::Sop,
                (false, true) => Perm::Pos,
                (true, true) => Perm::Spo,
            },
            RangePos::Predicate => match (bound[0].is_some(), bound[2].is_some()) {
                (false, false) => Perm::Pso,
                (true, false) => Perm::Spo,
                (false, true) => Perm::Ops,
                (true, true) => Perm::Sop,
            },
        }
    }
}

/// The triples table plus six clustered permutation indexes.
#[derive(Debug, Default, Clone)]
pub struct TripleTable {
    indexes: [Vec<TripleId>; 6],
}

impl TripleTable {
    /// Build the table (and all indexes) from a set of triples.
    /// Duplicates in the input are kept; callers deduplicate upstream
    /// (graphs are sets).
    pub fn build(triples: &[TripleId]) -> Self {
        let mut indexes: [Vec<TripleId>; 6] = Default::default();
        for (slot, perm) in indexes.iter_mut().zip(Perm::ALL) {
            let mut v = triples.to_vec();
            v.sort_unstable_by_key(|t| perm.key(t));
            *slot = v;
        }
        TripleTable { indexes }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.indexes[0].len()
    }

    /// True iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn index(&self, perm: Perm) -> &[TripleId] {
        let i = Perm::ALL.iter().position(|&p| p == perm).expect("perm in ALL");
        &self.indexes[i]
    }

    /// The contiguous slice of triples matching the bound positions of a
    /// pattern. This is the σ of the engine: an index-range scan.
    pub fn scan(&self, bound: &[Option<TermId>; 3]) -> &[TripleId] {
        self.scan_with(Perm::for_bound(bound), bound)
    }

    /// Like [`TripleTable::scan`], but over an explicitly chosen
    /// permutation (which must put every bound position in its key
    /// prefix — any member of [`Perm::candidates_for_bound`]). The
    /// returned slice is sorted by `perm`'s key order; the
    /// interesting-orders pass uses this to pick the residual variable
    /// order a downstream merge join wants.
    pub fn scan_with(&self, perm: Perm, bound: &[Option<TermId>; 3]) -> &[TripleId] {
        let idx = self.index(perm);
        let prefix = perm.prefix(bound);
        // Number of leading bound key components.
        let k = prefix.iter().take_while(|c| c.is_some()).count();
        debug_assert_eq!(
            k,
            prefix.iter().filter(|c| c.is_some()).count(),
            "chosen permutation must put all bound positions first"
        );
        if k == 0 {
            return idx;
        }
        // Express the prefix range as lexicographic comparisons against
        // the prefix padded with the extreme values of the free tail.
        let lo_key: [u32; 3] = std::array::from_fn(|i| prefix[i].unwrap_or(0));
        let hi_key: [u32; 3] = std::array::from_fn(|i| prefix[i].unwrap_or(u32::MAX));
        let lo = idx.partition_point(|t| perm.key(t) < lo_key);
        let hi = idx.partition_point(|t| perm.key(t) <= hi_key);
        &idx[lo..hi]
    }

    /// Exact number of triples matching the bound positions (O(log n)).
    pub fn count(&self, bound: &[Option<TermId>; 3]) -> usize {
        self.scan(bound).len()
    }

    /// The contiguous slice of triples whose `ranged` position has a raw
    /// id in `[lo, hi)` and whose other positions match `bound` — the σ
    /// of a hierarchy-collapsed reformulation: one clustered range scan
    /// instead of one prefix scan per union member.
    ///
    /// The ranged position must not itself be bound.
    pub fn scan_value_range(
        &self,
        bound: &[Option<TermId>; 3],
        ranged: RangePos,
        lo: u32,
        hi: u32,
    ) -> &[TripleId] {
        debug_assert!(
            match ranged {
                RangePos::Predicate => bound[1].is_none(),
                RangePos::Object => bound[2].is_none(),
            },
            "ranged position must be free"
        );
        if lo >= hi {
            return &[];
        }
        let perm = Perm::for_range(bound, ranged);
        let idx = self.index(perm);
        let prefix = perm.prefix(bound);
        let k = prefix.iter().take_while(|c| c.is_some()).count();
        debug_assert_eq!(k, prefix.iter().filter(|c| c.is_some()).count());
        // The ranged position is key component `k`; pad the tail with 0
        // and compare strictly, so `hi` stays exclusive.
        let mut lo_key = [0u32; 3];
        let mut hi_key = [0u32; 3];
        for i in 0..k {
            lo_key[i] = prefix[i].expect("bound prefix");
            hi_key[i] = lo_key[i];
        }
        lo_key[k] = lo;
        hi_key[k] = hi;
        let start = idx.partition_point(|t| perm.key(t) < lo_key);
        let end = idx.partition_point(|t| perm.key(t) < hi_key);
        &idx[start..end]
    }

    /// Exact number of triples a [`TripleTable::scan_value_range`] would
    /// return (O(log n); feeds the cost model).
    pub fn count_value_range(
        &self,
        bound: &[Option<TermId>; 3],
        ranged: RangePos,
        lo: u32,
        hi: u32,
    ) -> usize {
        self.scan_value_range(bound, ranged, lo, hi).len()
    }

    /// All triples, in SPO order.
    pub fn all(&self) -> &[TripleId] {
        self.index(Perm::Spo)
    }

    /// All triples in PSO order (contiguous per predicate) — lets the
    /// statistics builder walk predicate runs without re-sorting.
    pub fn by_predicate(&self) -> &[TripleId] {
        self.index(Perm::Pso)
    }

    /// All triples in OSP order (contiguous per object).
    pub fn by_object(&self) -> &[TripleId] {
        self.index(Perm::Osp)
    }

    /// A new table with `inserts` merged in and `deletes` filtered out,
    /// built by per-index two-pointer merges (O(n + d·log d) per index
    /// instead of a full O(n·log n) rebuild) — the maintenance path of
    /// the update experiments.
    pub fn apply_delta(
        &self,
        inserts: &[TripleId],
        deletes: &jucq_model::FxHashSet<TripleId>,
    ) -> TripleTable {
        let mut indexes: [Vec<TripleId>; 6] = Default::default();
        for (slot, perm) in indexes.iter_mut().zip(Perm::ALL) {
            let mut ins: Vec<TripleId> =
                inserts.iter().filter(|t| !deletes.contains(t)).copied().collect();
            ins.sort_unstable_by_key(|t| perm.key(t));
            ins.dedup();
            let old = self.index(perm);
            let mut merged: Vec<TripleId> = Vec::with_capacity(old.len() + ins.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < old.len() || j < ins.len() {
                match (old.get(i), ins.get(j)) {
                    (Some(a), Some(b)) if perm.key(a) == perm.key(b) => {
                        // Insert of an already-present triple: keep one.
                        i += 1;
                        j += 1;
                        if !deletes.contains(a) {
                            merged.push(*a);
                        }
                    }
                    (Some(a), Some(b)) if perm.key(a) < perm.key(b) => {
                        i += 1;
                        if !deletes.contains(a) {
                            merged.push(*a);
                        }
                    }
                    (Some(_), Some(b)) => {
                        merged.push(*b);
                        j += 1;
                    }
                    (Some(a), None) => {
                        i += 1;
                        if !deletes.contains(a) {
                            merged.push(*a);
                        }
                    }
                    (None, Some(b)) => {
                        merged.push(*b);
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            *slot = merged;
        }
        TripleTable { indexes }
    }

    /// The distinct values of the first key column of a permutation
    /// within a bound range — e.g. distinct subjects for a property via
    /// `Pso`. Used by the statistics builder.
    pub fn distinct_in_scan(
        &self,
        bound: &[Option<TermId>; 3],
        component: fn(&TripleId) -> TermId,
    ) -> usize {
        let slice = self.scan(bound);
        let mut values: Vec<u32> = slice.iter().map(|t| component(t).raw()).collect();
        values.sort_unstable();
        values.dedup();
        values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn sample() -> TripleTable {
        TripleTable::build(&[
            t(1, 10, 100),
            t(1, 10, 101),
            t(1, 11, 100),
            t(2, 10, 100),
            t(2, 11, 102),
            t(3, 12, 103),
        ])
    }

    #[test]
    fn full_scan_returns_everything() {
        let tbl = sample();
        assert_eq!(tbl.scan(&[None, None, None]).len(), 6);
        assert_eq!(tbl.len(), 6);
    }

    #[test]
    fn scan_by_subject() {
        let tbl = sample();
        let hits = tbl.scan(&[Some(id(1)), None, None]);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|x| x.s == id(1)));
    }

    #[test]
    fn scan_by_property() {
        let tbl = sample();
        assert_eq!(tbl.count(&[None, Some(id(10)), None]), 3);
        assert_eq!(tbl.count(&[None, Some(id(11)), None]), 2);
        assert_eq!(tbl.count(&[None, Some(id(99)), None]), 0);
    }

    #[test]
    fn scan_by_object() {
        let tbl = sample();
        assert_eq!(tbl.count(&[None, None, Some(id(100))]), 3);
        assert_eq!(tbl.count(&[None, None, Some(id(103))]), 1);
    }

    #[test]
    fn scan_by_two_positions() {
        let tbl = sample();
        assert_eq!(tbl.count(&[Some(id(1)), Some(id(10)), None]), 2);
        assert_eq!(tbl.count(&[Some(id(1)), None, Some(id(100))]), 2);
        assert_eq!(tbl.count(&[None, Some(id(10)), Some(id(100))]), 2);
    }

    #[test]
    fn scan_fully_bound() {
        let tbl = sample();
        assert_eq!(tbl.count(&[Some(id(2)), Some(id(11)), Some(id(102))]), 1);
        assert_eq!(tbl.count(&[Some(id(2)), Some(id(11)), Some(id(999))]), 0);
    }

    #[test]
    fn scans_are_contiguous_and_sorted() {
        let tbl = sample();
        let hits = tbl.scan(&[None, Some(id(10)), None]);
        let mut keys: Vec<[u32; 3]> = hits.iter().map(|x| Perm::Pso.key(x)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        keys.dedup();
        assert_eq!(keys.len(), hits.len());
    }

    #[test]
    fn perm_selection_covers_bound_positions() {
        // For every bound combination, the chosen permutation must have
        // the bound positions as a key prefix.
        for mask in 0u8..8 {
            let bound: [Option<TermId>; 3] =
                std::array::from_fn(|i| if mask & (1 << i) != 0 { Some(id(7)) } else { None });
            let perm = Perm::for_bound(&bound);
            let prefix = perm.prefix(&bound);
            let k = prefix.iter().take_while(|c| c.is_some()).count();
            assert_eq!(
                k,
                bound.iter().filter(|c| c.is_some()).count(),
                "mask {mask:#b} perm {perm:?}"
            );
        }
    }

    /// A small deterministic LCG so the property sweep is reproducible.
    fn lcg(seed: &mut u64) -> u32 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (*seed >> 33) as u32
    }

    #[test]
    fn every_candidate_scan_is_sorted_under_its_key_order() {
        // Property: for every bound mask and every candidate permutation,
        // `scan_with` returns the same triple set as `scan`, and the
        // slice is non-decreasing under the candidate's key order.
        let mut seed = 0x5eed_cafe_u64;
        let mut triples = Vec::new();
        for _ in 0..400 {
            triples.push(t(
                lcg(&mut seed) % 13,
                10 + lcg(&mut seed) % 7,
                100 + lcg(&mut seed) % 17,
            ));
        }
        let tbl = TripleTable::build(&triples);
        for mask in 0u8..8 {
            let bound: [Option<TermId>; 3] = std::array::from_fn(|i| {
                if mask & (1 << i) != 0 {
                    Some(id(match i {
                        0 => 3,
                        1 => 12,
                        _ => 105,
                    }))
                } else {
                    None
                }
            });
            let default_hits: Vec<TripleId> = {
                let mut v = tbl.scan(&bound).to_vec();
                v.sort_unstable_by_key(|x| Perm::Spo.key(x));
                v
            };
            let candidates = Perm::candidates_for_bound(&bound);
            assert!(!candidates.is_empty());
            assert_eq!(candidates[0], Perm::for_bound(&bound), "default pick leads");
            for perm in candidates {
                let hits = tbl.scan_with(perm, &bound);
                let keys: Vec<[u32; 3]> = hits.iter().map(|x| perm.key(x)).collect();
                assert!(
                    keys.windows(2).all(|w| w[0] <= w[1]),
                    "mask {mask:#b} perm {perm:?}: slice not sorted under its key"
                );
                let mut set = hits.to_vec();
                set.sort_unstable_by_key(|x| Perm::Spo.key(x));
                assert_eq!(set, default_hits, "mask {mask:#b} perm {perm:?}: wrong triple set");
            }
        }
    }

    #[test]
    fn value_range_scans_are_sorted_under_their_key_order() {
        let mut seed = 0x5eed_cafe_u64;
        let mut triples = Vec::new();
        for _ in 0..300 {
            triples.push(t(lcg(&mut seed) % 9, 10 + lcg(&mut seed) % 5, 100 + lcg(&mut seed) % 11));
        }
        let tbl = TripleTable::build(&triples);
        for (bound, ranged) in [
            ([None, None, None], RangePos::Object),
            ([Some(id(2)), None, None], RangePos::Object),
            ([None, Some(id(11)), None], RangePos::Object),
            ([None, None, None], RangePos::Predicate),
            ([Some(id(4)), None, None], RangePos::Predicate),
            ([None, None, Some(id(103))], RangePos::Predicate),
        ] {
            let perm = Perm::for_range(&bound, ranged);
            for (lo, hi) in [(0, u32::MAX), (101, 106), (11, 13)] {
                let hits = tbl.scan_value_range(&bound, ranged, lo, hi);
                let keys: Vec<[u32; 3]> = hits.iter().map(|x| perm.key(x)).collect();
                assert!(
                    keys.windows(2).all(|w| w[0] <= w[1]),
                    "{bound:?} {ranged:?} [{lo},{hi}): not sorted under {perm:?}"
                );
            }
        }
    }

    #[test]
    fn key_positions_agree_with_key() {
        let x = t(5, 6, 7);
        let raw = [x.s.raw(), x.p.raw(), x.o.raw()];
        for perm in Perm::ALL {
            let pos = perm.key_positions();
            let via_pos: [u32; 3] = std::array::from_fn(|i| raw[pos[i]]);
            assert_eq!(via_pos, perm.key(&x), "{perm:?}");
        }
    }

    #[test]
    fn distinct_in_scan_counts() {
        let tbl = sample();
        // Distinct subjects for property 10: subjects {1, 2}.
        let ds = tbl.distinct_in_scan(&[None, Some(id(10)), None], |x| x.s);
        assert_eq!(ds, 2);
        // Distinct objects for property 10: objects {100, 101}.
        let d_o = tbl.distinct_in_scan(&[None, Some(id(10)), None], |x| x.o);
        assert_eq!(d_o, 2);
    }

    #[test]
    fn value_range_scan_equals_union_of_point_scans() {
        let tbl = sample();
        // Object range [100, 102) with predicate 10 bound: the union of
        // o=100 and o=101 point scans.
        let ranged = tbl.scan_value_range(&[None, Some(id(10)), None], RangePos::Object, 100, 102);
        assert_eq!(ranged.len(), 3);
        assert!(ranged.iter().all(|x| x.p == id(10) && (100..102).contains(&x.o.raw())));
        // Unbound variant ranges over the whole table.
        let all_o = tbl.scan_value_range(&[None, None, None], RangePos::Object, 100, u32::MAX);
        assert_eq!(all_o.len(), 6);
        // Predicate range with subject bound.
        let preds = tbl.scan_value_range(&[Some(id(1)), None, None], RangePos::Predicate, 10, 12);
        assert_eq!(preds.len(), 3);
        // Empty and inverted ranges.
        assert_eq!(tbl.count_value_range(&[None, None, None], RangePos::Object, 104, 200), 0);
        assert_eq!(tbl.count_value_range(&[None, None, None], RangePos::Object, 102, 102), 0);
        assert_eq!(tbl.count_value_range(&[None, None, None], RangePos::Object, 103, 100), 0);
    }

    #[test]
    fn range_scans_are_sorted_and_contiguous() {
        let tbl = sample();
        for (bound, ranged) in [
            ([None, None, None], RangePos::Object),
            ([Some(id(1)), None, None], RangePos::Object),
            ([None, Some(id(10)), None], RangePos::Object),
            ([None, None, None], RangePos::Predicate),
            ([Some(id(2)), None, None], RangePos::Predicate),
            ([None, None, Some(id(100))], RangePos::Predicate),
        ] {
            let perm = Perm::for_range(&bound, ranged);
            let hits = tbl.scan_value_range(&bound, ranged, 0, u32::MAX);
            let keys: Vec<[u32; 3]> = hits.iter().map(|x| perm.key(x)).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "{bound:?} {ranged:?}");
        }
    }

    #[test]
    fn apply_delta_inserts_and_deletes() {
        let tbl = sample();
        let mut deletes = jucq_model::FxHashSet::default();
        deletes.insert(t(1, 10, 100));
        let inserts = vec![t(9, 10, 100), t(9, 12, 104)];
        let updated = tbl.apply_delta(&inserts, &deletes);
        assert_eq!(updated.len(), tbl.len() + 2 - 1);
        assert_eq!(updated.count(&[Some(id(1)), Some(id(10)), Some(id(100))]), 0);
        assert_eq!(updated.count(&[Some(id(9)), None, None]), 2);
        // All indexes stay consistent: the same count from any side.
        assert_eq!(updated.count(&[None, Some(id(10)), None]), 3);
        assert_eq!(updated.count(&[None, None, Some(id(100))]), 3);
    }

    #[test]
    fn apply_delta_is_idempotent_for_duplicates() {
        let tbl = sample();
        let updated = tbl.apply_delta(&[t(1, 10, 100), t(1, 10, 100)], &Default::default());
        assert_eq!(updated.len(), tbl.len(), "existing + duplicate inserts collapse");
    }

    #[test]
    fn apply_delta_equals_rebuild() {
        let tbl = sample();
        let mut deletes = jucq_model::FxHashSet::default();
        deletes.insert(t(3, 12, 103));
        let inserts = vec![t(7, 7, 7)];
        let merged = tbl.apply_delta(&inserts, &deletes);
        let mut full: Vec<TripleId> =
            tbl.all().iter().filter(|x| !deletes.contains(x)).copied().collect();
        full.extend(&inserts);
        let rebuilt = TripleTable::build(&full);
        assert_eq!(merged.all(), rebuilt.all());
        assert_eq!(merged.by_predicate(), rebuilt.by_predicate());
        assert_eq!(merged.by_object(), rebuilt.by_object());
    }

    #[test]
    fn empty_table() {
        let tbl = TripleTable::build(&[]);
        assert!(tbl.is_empty());
        assert!(tbl.scan(&[None, None, None]).is_empty());
        assert_eq!(tbl.count(&[Some(id(1)), None, None]), 0);
    }
}
