//! The engine facade: load triples once, evaluate plans under a profile.

use std::time::Duration;

use jucq_model::TripleId;

use crate::error::EngineError;
use crate::exec::{Counters, ExecContext, NodeProfile, SipFilterStat};
use crate::ir::{StoreCq, StoreJucq, StoreUcq};
use crate::plan::{self, Plan, Planner};
use crate::profile::EngineProfile;
use crate::relation::Relation;
use crate::stats::Statistics;
use crate::table::TripleTable;

/// The result of a successful evaluation, with its work counters and
/// wall-clock time (the measurements the experiment harness reports).
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The answer relation (deduplicated; set semantics).
    pub relation: Relation,
    /// Executor work counters.
    pub counters: Counters,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
}

/// One plan node of a profiled run: the measured runtime aggregate plus
/// the optimizer's cardinality estimate for the same node, when the
/// node has one (per-member CQ nodes do not).
#[derive(Debug, Clone)]
pub struct PlanNodeReport {
    /// Scoped label, e.g. `fragment[0].union` or `join[1].hash_join`.
    pub label: String,
    /// Operator invocations merged into this node.
    pub invocations: u64,
    /// Actual output rows across all invocations.
    pub actual_rows: u64,
    /// Inclusive wall time across all invocations, in nanoseconds.
    pub elapsed_ns: u64,
    /// Estimated output rows, when the cost model estimates this node.
    pub est_rows: Option<f64>,
}

impl PlanNodeReport {
    /// The Q-error `max(est/actual, actual/est)` with both sides
    /// clamped to at least one row, so zero estimates or zero actual
    /// rows stay finite; `None` without an estimate or when the
    /// estimate is not finite (an overflowed cardinality product must
    /// not surface as `inf`/`NaN`).
    pub fn q_error(&self) -> Option<f64> {
        jucq_obs::record::q_error_safe(self.est_rows, self.actual_rows)
    }
}

/// Per-node runtime profile of one JUCQ evaluation, in plan order.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Profiled plan nodes in execution order.
    pub nodes: Vec<PlanNodeReport>,
    /// Per-filter sideways-information-passing selectivity (probes and
    /// drops per planned SIP filter); empty when the plan had none.
    pub sip: Vec<SipFilterStat>,
}

/// A loaded store: triple table + statistics, evaluated under a profile.
#[derive(Debug, Clone)]
pub struct Store {
    table: TripleTable,
    stats: Statistics,
    profile: EngineProfile,
}

impl Store {
    /// Build a store from raw triples.
    pub fn from_triples(triples: &[TripleId], profile: EngineProfile) -> Self {
        let table = TripleTable::build(triples);
        let stats = Statistics::build(&table);
        Store { table, stats, profile }
    }

    /// The triple table.
    pub fn table(&self) -> &TripleTable {
        &self.table
    }

    /// The statistics.
    pub fn stats(&self) -> &Statistics {
        &self.stats
    }

    /// The active profile.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Swap the profile (e.g. to rerun the same data under another
    /// emulated engine).
    pub fn set_profile(&mut self, profile: EngineProfile) {
        self.profile = profile;
    }

    /// A new store with `inserts` merged and `deletes` removed, using
    /// the merge-based index maintenance (no full re-sort) and a
    /// near-linear statistics refresh.
    pub fn apply_delta(
        &self,
        inserts: &[jucq_model::TripleId],
        deletes: &jucq_model::FxHashSet<jucq_model::TripleId>,
    ) -> Store {
        let table = self.table.apply_delta(inserts, deletes);
        let stats = Statistics::build(&table);
        Store { table, stats, profile: self.profile.clone() }
    }

    /// Evaluate a single conjunctive query (deduplicated). The head must
    /// be all-variable (constant heads only arise inside reformulated
    /// unions).
    pub fn eval_cq(&self, cq: &StoreCq) -> Result<EvalOutcome, EngineError> {
        let head = cq.head_vars();
        assert_eq!(head.len(), cq.head.len(), "standalone CQs use variable heads");
        let ucq = StoreUcq::new(vec![cq.clone()], head.clone());
        self.eval_jucq(&StoreJucq::new(vec![ucq], head))
    }

    /// Evaluate a UCQ (deduplicated).
    pub fn eval_ucq(&self, ucq: &StoreUcq) -> Result<EvalOutcome, EngineError> {
        self.eval_jucq(&StoreJucq::from_ucq(ucq.clone()))
    }

    /// Lower a JUCQ to a physical [`Plan`] after admission control
    /// (union-term limit): the planner's rewrite-pass pipeline prunes
    /// provably empty members, deduplicates and subsumes union members,
    /// factors common scans, fixes join orders and annotates every node
    /// with a cardinality estimate.
    pub fn plan_jucq(&self, q: &StoreJucq) -> Result<Plan, EngineError> {
        self.plan_jucq_views(q, None)
    }

    /// [`Store::plan_jucq`] with an optional materialized-view catalog:
    /// cover fragments whose canonical signature has a current-epoch
    /// entry are lowered to [`PlanNode::ViewScan`](crate::plan::PlanNode)
    /// leaves (the fallback union stays embedded, so the plan remains
    /// valid for requests whose epoch no longer matches the catalog).
    pub fn plan_jucq_views(
        &self,
        q: &StoreJucq,
        views: Option<&crate::views::ViewCatalog>,
    ) -> Result<Plan, EngineError> {
        let terms = q.union_terms();
        if terms > self.profile.max_union_terms {
            return Err(EngineError::UnionTooLarge { terms, limit: self.profile.max_union_terms });
        }
        Ok(Planner::new(&self.table, &self.stats, &self.profile).with_views(views).plan(q))
    }

    /// Evaluate a JUCQ: plan it, then execute the plan.
    pub fn eval_jucq(&self, q: &StoreJucq) -> Result<EvalOutcome, EngineError> {
        let plan = self.plan_jucq(q)?;
        self.eval_plan(&plan)
    }

    /// Like [`Store::eval_jucq`], additionally collecting per-node
    /// runtime profiles and pairing each node with the planner's
    /// cardinality estimate (the data behind `EXPLAIN ANALYZE`).
    pub fn eval_jucq_profiled(
        &self,
        q: &StoreJucq,
    ) -> Result<(EvalOutcome, ExecProfile), EngineError> {
        let plan = self.plan_jucq(q)?;
        self.eval_plan_profiled(&plan)
    }

    /// Execute a previously lowered plan (e.g. one served from a plan
    /// cache). The plan must have been produced by this store's planner
    /// under the current profile.
    pub fn eval_plan(&self, plan: &Plan) -> Result<EvalOutcome, EngineError> {
        self.eval_plan_inner(plan, false, None, None).map(|(outcome, _)| outcome)
    }

    /// Execute a plan with per-node runtime profiling.
    pub fn eval_plan_profiled(
        &self,
        plan: &Plan,
    ) -> Result<(EvalOutcome, ExecProfile), EngineError> {
        self.eval_plan_inner(plan, true, None, None)
            .map(|(outcome, profile)| (outcome, profile.unwrap_or_default()))
    }

    /// Execute a plan under a caller-supplied profile — the serving
    /// layer's per-request deadline and memory budget. The plan itself
    /// is profile-agnostic at this point (it was lowered earlier);
    /// only the execution context's limits and parallelism come from
    /// `limits`.
    pub fn eval_plan_with(
        &self,
        plan: &Plan,
        limits: &EngineProfile,
    ) -> Result<EvalOutcome, EngineError> {
        self.eval_plan_inner(plan, false, Some(limits), None).map(|(outcome, _)| outcome)
    }

    /// [`Store::eval_plan_with`] with per-node runtime profiling.
    pub fn eval_plan_profiled_with(
        &self,
        plan: &Plan,
        limits: &EngineProfile,
    ) -> Result<(EvalOutcome, ExecProfile), EngineError> {
        self.eval_plan_inner(plan, true, Some(limits), None)
            .map(|(outcome, profile)| (outcome, profile.unwrap_or_default()))
    }

    /// Execute a plan resolving its [`PlanNode::ViewScan`](crate::plan::PlanNode)
    /// leaves through `views` — an epoch-pinned handle on a
    /// [`ViewCatalog`](crate::views::ViewCatalog). Entries whose epoch
    /// differs from the handle's never serve; those leaves fall back to
    /// their embedded union, so answers are identical either way.
    pub fn eval_plan_views(
        &self,
        plan: &Plan,
        limits: Option<&EngineProfile>,
        views: Option<&crate::views::ViewSource<'_>>,
    ) -> Result<EvalOutcome, EngineError> {
        self.eval_plan_inner(plan, false, limits, views).map(|(outcome, _)| outcome)
    }

    /// [`Store::eval_plan_views`] with per-node runtime profiling.
    pub fn eval_plan_views_profiled(
        &self,
        plan: &Plan,
        limits: Option<&EngineProfile>,
        views: Option<&crate::views::ViewSource<'_>>,
    ) -> Result<(EvalOutcome, ExecProfile), EngineError> {
        self.eval_plan_inner(plan, true, limits, views)
            .map(|(outcome, profile)| (outcome, profile.unwrap_or_default()))
    }

    fn eval_plan_inner(
        &self,
        plan: &Plan,
        profiling: bool,
        limits: Option<&EngineProfile>,
        views: Option<&crate::views::ViewSource<'_>>,
    ) -> Result<(EvalOutcome, Option<ExecProfile>), EngineError> {
        jucq_obs::span!("execution");
        let profile = limits.unwrap_or(&self.profile);
        let mut ctx = if profiling {
            ExecContext::with_profiling(profile)
        } else {
            ExecContext::new(profile)
        };
        let relation = plan::exec::execute(
            &self.table,
            plan,
            &mut ctx,
            profile.effective_parallelism(),
            views,
        )?;
        if ctx.counters.sip_probes > 0 {
            jucq_obs::metrics::counter_add("exec.sip.probes", ctx.counters.sip_probes);
            jucq_obs::metrics::counter_add("exec.sip.drops", ctx.counters.sip_drops);
        }
        let profile = profiling.then(|| {
            let nodes = ctx
                .take_nodes()
                .into_iter()
                .map(|n: NodeProfile| {
                    let est_rows = plan
                        .estimates
                        .iter()
                        .find(|(label, _)| *label == n.label)
                        .map(|&(_, est)| est);
                    PlanNodeReport {
                        label: n.label,
                        invocations: n.invocations,
                        actual_rows: n.rows,
                        elapsed_ns: n.elapsed_ns,
                        est_rows,
                    }
                })
                .collect();
            ExecProfile { nodes, sip: ctx.take_sip_stats() }
        });
        let outcome = EvalOutcome { relation, counters: ctx.counters, elapsed: ctx.elapsed() };
        Ok((outcome, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{PatternTerm, StorePattern, VarId};
    use jucq_model::term::TermKind;
    use jucq_model::TermId;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    /// people: 1,2 typed 50; 1 works-at 20, 2 works-at 21; 1 knows 2.
    fn store() -> Store {
        Store::from_triples(
            &[t(1, 10, 50), t(2, 10, 50), t(1, 11, 20), t(2, 11, 21), t(1, 12, 2)],
            EngineProfile::pg_like(),
        )
    }

    #[test]
    fn jucq_of_two_fragments_joins_on_shared_var() {
        let s = store();
        // fragment A: ?x 10 50 ; fragment B: ?x 11 ?y.
        let fa = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(50))], vec![0])],
            vec![0],
        );
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1]);
        let out = s.eval_jucq(&q).unwrap();
        let mut r = out.relation;
        r.sort();
        assert_eq!(r.to_rows(), vec![vec![id(1), id(20)], vec![id(2), id(21)]]);
    }

    #[test]
    fn jucq_equals_equivalent_single_ucq() {
        let s = store();
        // (?x 10 50)(?x 11 ?y) as one CQ vs as two fragments.
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), c(50)), StorePattern::new(v(0), c(11), v(1))],
            vec![0, 1],
        );
        let mono = s.eval_cq(&cq).unwrap();
        let fa = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(50))], vec![0])],
            vec![0],
        );
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let split = s.eval_jucq(&StoreJucq::new(vec![fa, fb], vec![0, 1])).unwrap();
        let mut a = mono.relation;
        let mut b = split.relation;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn union_limit_rejects_up_front() {
        let mut s = store();
        s.set_profile(EngineProfile::pg_like().with_max_union_terms(1));
        let member = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(50))], vec![0]);
        let ucq = StoreUcq::new(vec![member.clone(), member], vec![0]);
        assert!(matches!(s.eval_ucq(&ucq), Err(EngineError::UnionTooLarge { terms: 2, limit: 1 })));
    }

    #[test]
    fn final_result_is_set_semantics() {
        let s = store();
        // Project (?x 11 ?y) onto nothing shared: head [] would be
        // boolean; instead project onto a column with duplicates: the
        // type objects of both people are the same class 50.
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![1]);
        let out = s.eval_cq(&cq).unwrap();
        assert_eq!(out.relation.len(), 1, "duplicate class collapsed");
    }

    #[test]
    fn profiled_eval_reports_nodes_with_estimates() {
        let s = store();
        let fa = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(50))], vec![0])],
            vec![0],
        );
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1]);
        let (outcome, profile) = s.eval_jucq_profiled(&q).unwrap();
        assert_eq!(outcome.relation.len(), 2);
        let labels: Vec<&str> = profile.nodes.iter().map(|n| n.label.as_str()).collect();
        assert!(labels.contains(&"fragment[0].union"), "{labels:?}");
        assert!(labels.contains(&"fragment[1].union"), "{labels:?}");
        assert!(labels.contains(&"join[0].sort_merge_join"), "{labels:?}");
        assert!(labels.contains(&"dedup"), "{labels:?}");
        let union0 = profile.nodes.iter().find(|n| n.label == "fragment[0].union").unwrap();
        assert_eq!(union0.actual_rows, 2);
        assert!(union0.est_rows.is_some());
        assert!(union0.q_error().unwrap() >= 1.0);
        // CQ member nodes are profiled but carry no estimate.
        let cq0 = profile.nodes.iter().find(|n| n.label == "fragment[0].cq").unwrap();
        assert_eq!(cq0.est_rows, None);
        // Unprofiled evaluation returns the same answers.
        let plain = s.eval_jucq(&q).unwrap();
        assert_eq!(plain.relation.len(), outcome.relation.len());
    }

    #[test]
    fn profiled_eval_reports_sip_selectivity() {
        let s = store();
        let fa = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(50))], vec![0])],
            vec![0],
        );
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1]);
        let (_, profile) = s.eval_jucq_profiled(&q).unwrap();
        assert_eq!(profile.sip.len(), 1, "one planned filter: {:?}", profile.sip);
        assert!(profile.sip[0].label.ends_with(".sip_filter"), "{:?}", profile.sip);
        assert!(profile.sip[0].probes > 0);
        assert!(profile.sip[0].drops <= profile.sip[0].probes);
        // With the knob off, no filters run and none are reported.
        let mut off = store();
        off.set_profile(EngineProfile::pg_like().with_sip_filters(false));
        let (_, profile) = off.eval_jucq_profiled(&q).unwrap();
        assert!(profile.sip.is_empty(), "{:?}", profile.sip);
    }

    #[test]
    fn q_error_is_guarded_against_zero_and_non_finite_rows() {
        let node = |est: Option<f64>, actual: u64| PlanNodeReport {
            label: "n".into(),
            invocations: 1,
            actual_rows: actual,
            elapsed_ns: 0,
            est_rows: est,
        };
        // Zero actual rows and zero estimates clamp to one row — the
        // reported Q-error stays finite instead of dividing by zero.
        assert_eq!(node(Some(0.0), 0).q_error(), Some(1.0));
        assert_eq!(node(Some(0.0), 8).q_error(), Some(8.0));
        assert_eq!(node(Some(8.0), 0).q_error(), Some(8.0));
        // Non-finite estimates (an overflowed cardinality product)
        // surface as "no estimate", never as inf/NaN.
        assert_eq!(node(Some(f64::INFINITY), 5).q_error(), None);
        assert_eq!(node(Some(f64::NAN), 5).q_error(), None);
        assert_eq!(node(None, 5).q_error(), None);
        let q = node(Some(1e300), 1).q_error().unwrap();
        assert!(q.is_finite() && q >= 1.0);
    }

    #[test]
    fn counters_record_work() {
        let s = store();
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), v(1), v(2))], vec![0, 1, 2]);
        let out = s.eval_cq(&cq).unwrap();
        assert_eq!(out.relation.len(), 5);
        assert!(out.counters.tuples_scanned >= 5);
    }

    #[test]
    fn empty_fragment_jucq_is_empty() {
        let s = store();
        let fa = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(99), v(1))], vec![0])],
            vec![0],
        );
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let out = s.eval_jucq(&StoreJucq::new(vec![fa, fb], vec![0, 1])).unwrap();
        assert!(out.relation.is_empty());
    }

    #[test]
    fn apply_delta_updates_answers() {
        let s = store();
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(50))], vec![0]);
        assert_eq!(s.eval_cq(&cq).unwrap().relation.len(), 2);
        let mut deletes = jucq_model::FxHashSet::default();
        deletes.insert(t(1, 10, 50));
        let s2 = s.apply_delta(&[t(3, 10, 50)], &deletes);
        assert_eq!(s2.eval_cq(&cq).unwrap().relation.len(), 2, "-1 +1");
        assert_eq!(s2.stats().total(), s.stats().total());
        // Original store is untouched (copy-on-write semantics).
        assert_eq!(s.eval_cq(&cq).unwrap().relation.len(), 2);
    }

    #[test]
    fn shared_scans_reduce_scan_counters_without_changing_answers() {
        // Two members probing different chains off the same cheap leaf
        // scan: with sharing the leaf extent is scanned once.
        let triples: Vec<TripleId> =
            (0..20).map(|i| t(i, 10, i + 1)).chain((0..20).map(|i| t(i, 11, 50))).collect();
        let member_a = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(11), c(50)), StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let member_b = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(11), c(50)), StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let ucq = StoreUcq::new(vec![member_a, member_b], vec![0, 1]);
        let on = Store::from_triples(&triples, EngineProfile::pg_like());
        let off = Store::from_triples(&triples, EngineProfile::pg_like().with_scan_sharing(false));
        let shared = on.eval_ucq(&ucq).unwrap();
        let unshared = off.eval_ucq(&ucq).unwrap();
        let mut a = shared.relation;
        let mut b = unshared.relation;
        a.sort();
        b.sort();
        assert_eq!(a, b, "sharing never changes answers");
        assert!(
            shared.counters.tuples_scanned < unshared.counters.tuples_scanned,
            "shared {} vs unshared {}",
            shared.counters.tuples_scanned,
            unshared.counters.tuples_scanned
        );
    }

    #[test]
    fn plan_jucq_exposes_the_physical_plan() {
        let s = store();
        let fa = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(50))], vec![0])],
            vec![0],
        );
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1]);
        let plan = s.plan_jucq(&q).unwrap();
        assert!(!plan.is_const_empty());
        assert_eq!(plan.unions().len(), 2);
        assert!(plan.pipelined.is_some());
        // The cached plan replays to the same answers as planning fresh.
        let via_plan = s.eval_plan(&plan).unwrap();
        let direct = s.eval_jucq(&q).unwrap();
        assert_eq!(via_plan.relation, direct.relation);
        assert_eq!(via_plan.counters, direct.counters);
    }

    #[test]
    fn three_profiles_agree_on_answers() {
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), c(50)), StorePattern::new(v(0), c(12), v(1))],
            vec![0, 1],
        );
        let mut results = Vec::new();
        for p in EngineProfile::rdbms_trio() {
            let s = Store::from_triples(&[t(1, 10, 50), t(2, 10, 50), t(1, 12, 2)], p);
            let mut r = s.eval_cq(&cq).unwrap().relation;
            r.sort();
            results.push(r);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }
}
