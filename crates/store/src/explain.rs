//! `EXPLAIN` — human-readable plan rendering.
//!
//! The paper's Figure 9 harness extracts cost estimates from Postgres
//! `EXPLAIN` output; this module is our engine's equivalent: a textual
//! plan for a JUCQ showing admission, per-fragment shapes and
//! estimates, the join algorithm, and the materialization decision.

use std::fmt::Write as _;

use crate::internal_cost;
use crate::ir::StoreJucq;
use crate::Store;

/// Render the evaluation plan for `q` under the store's profile.
pub fn explain(store: &Store, q: &StoreJucq) -> String {
    let profile = store.profile();
    let stats = store.stats();
    let table = store.table();
    let mut out = String::new();

    let terms = q.union_terms();
    let _ = writeln!(out, "JUCQ: {} fragment(s), {} union term(s)", q.fragments.len(), terms);
    if terms > profile.max_union_terms {
        let _ = writeln!(
            out,
            "ADMISSION: REJECTED — union of {terms} terms exceeds the {} limit ({})",
            profile.max_union_terms, profile.name
        );
        return out;
    }
    let _ = writeln!(out, "ADMISSION: accepted under profile `{}`", profile.name);

    let volumes: Vec<f64> = q
        .fragments
        .iter()
        .map(|u| {
            u.cqs
                .iter()
                .flat_map(|cq| cq.patterns.iter())
                .map(|p| stats.pattern_card(table, p) as f64)
                .sum()
        })
        .collect();
    let largest = volumes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite volume"))
        .map(|(i, _)| i);
    for (i, frag) in q.fragments.iter().enumerate() {
        let card = stats.est_ucq(table, frag);
        let pipelined = Some(i) == largest && q.fragments.len() > 1;
        let _ = writeln!(
            out,
            "  Fragment {i}: {} member CQ(s), head {:?}, scan volume {:.0}, est. rows {:.0}{}",
            frag.len(),
            frag.head,
            volumes[i],
            card,
            if q.fragments.len() <= 1 {
                ""
            } else if pipelined {
                "  [pipelined]"
            } else {
                "  [materialized]"
            },
        );
        for (k, cq) in frag.cqs.iter().take(3).enumerate() {
            let shape: Vec<String> = cq.patterns.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "    member {k}: {}", shape.join(" ⋈ "));
        }
        if frag.len() > 3 {
            let _ = writeln!(out, "    … {} more members", frag.len() - 3);
        }
    }
    if q.fragments.len() > 1 {
        let _ = writeln!(out, "  Fragment join: {:?}", profile.fragment_join);
    }
    let _ = writeln!(
        out,
        "  Final: project {:?}, dedup; est. result {:.0} rows",
        q.head,
        stats.est_jucq(table, q)
    );
    let _ = writeln!(out, "  Internal cost estimate: {:.1}", internal_cost::estimate(store, q));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{PatternTerm, StoreCq, StorePattern, StoreUcq, VarId};
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn store() -> Store {
        let triples: Vec<TripleId> = (0..20)
            .map(|i| TripleId::new(id(i), id(100), id(i % 3)))
            .collect();
        Store::from_triples(&triples, EngineProfile::pg_like())
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn sample_jucq(members: usize) -> StoreJucq {
        let member = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), PatternTerm::Const(id(100)), v(1))],
            vec![0, 1],
        );
        let fa = StoreUcq::new(vec![member; members], vec![0, 1]);
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(
                vec![StorePattern::new(v(0), PatternTerm::Const(id(100)), v(2))],
                vec![0, 2],
            )],
            vec![0, 2],
        );
        StoreJucq::new(vec![fa, fb], vec![0, 1, 2])
    }

    #[test]
    fn explains_accepted_plans() {
        let s = store();
        let text = explain(&s, &sample_jucq(2));
        assert!(text.contains("ADMISSION: accepted"));
        assert!(text.contains("Fragment 0"));
        assert!(text.contains("Fragment join"));
        assert!(text.contains("Internal cost estimate"));
        assert!(text.contains("[pipelined]"));
        assert!(text.contains("[materialized]"));
    }

    #[test]
    fn explains_rejections() {
        let mut s = store();
        s.set_profile(EngineProfile::pg_like().with_max_union_terms(1));
        let text = explain(&s, &sample_jucq(5));
        assert!(text.contains("REJECTED"));
        assert!(!text.contains("Fragment 0"), "no plan detail after rejection");
    }

    #[test]
    fn truncates_long_unions() {
        let s = store();
        let text = explain(&s, &sample_jucq(10));
        assert!(text.contains("… 7 more members"));
    }
}
