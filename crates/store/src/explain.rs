//! `EXPLAIN` — human-readable plan rendering.
//!
//! The paper's Figure 9 harness extracts cost estimates from Postgres
//! `EXPLAIN` output; this module is our engine's equivalent: a textual
//! plan for a JUCQ showing admission, per-fragment shapes and
//! estimates, the join algorithm, and the materialization decision.

use std::fmt::Write as _;

use crate::error::EngineError;
use crate::internal_cost;
use crate::ir::StoreJucq;
use crate::plan::{Planner, TermNameResolver};
use crate::Store;

/// Estimated peak materialized intermediate of `q`, in tuples: the
/// larger of the biggest single fragment (each union accumulates its
/// distinct rows) and the sum of the fragments materialized for the
/// join (all but the largest, §4.1).
fn est_peak_materialized(store: &Store, q: &StoreJucq) -> f64 {
    let stats = store.stats();
    let table = store.table();
    let cards: Vec<f64> = q.fragments.iter().map(|f| stats.est_ucq(table, f)).collect();
    let per_fragment_peak = cards.iter().copied().fold(0.0, f64::max);
    let materialized_sum =
        if cards.len() > 1 { cards.iter().sum::<f64>() - per_fragment_peak } else { 0.0 };
    per_fragment_peak.max(materialized_sum)
}

/// Render the evaluation plan for `q` under the store's profile.
pub fn explain(store: &Store, q: &StoreJucq) -> String {
    explain_with_names(store, q, None)
}

/// [`explain`] with a term-name resolver: `RangeScan` nodes in the
/// physical plan additionally print the decoded name of the class or
/// property whose subtree interval they scan. The store itself has no
/// dictionary, so the resolver is injected by the calling layer.
pub fn explain_with_names(
    store: &Store,
    q: &StoreJucq,
    names: Option<&TermNameResolver<'_>>,
) -> String {
    let profile = store.profile();
    let stats = store.stats();
    let table = store.table();
    let mut out = String::new();

    let terms = q.union_terms();
    let _ = writeln!(out, "JUCQ: {} fragment(s), {} union term(s)", q.fragments.len(), terms);
    if terms > profile.max_union_terms {
        let _ = writeln!(
            out,
            "ADMISSION: REJECTED — union of {terms} terms exceeds the {} limit ({}) \
             (constraint: max_union_terms)",
            profile.max_union_terms, profile.name
        );
        return out;
    }
    let est_peak = est_peak_materialized(store, q);
    if est_peak > profile.memory_budget_tuples as f64 {
        let _ = writeln!(
            out,
            "ADMISSION: REJECTED — est. peak materialized intermediate of {est_peak:.0} tuples \
             exceeds the {} tuple budget ({}) (constraint: memory_budget_tuples)",
            profile.memory_budget_tuples, profile.name
        );
        return out;
    }
    let _ = writeln!(out, "ADMISSION: accepted under profile `{}`", profile.name);
    let _ = writeln!(
        out,
        "  Memory: est. peak materialized intermediate {est_peak:.0} tuples (budget {})",
        profile.memory_budget_tuples
    );

    // The physical plan the executor will actually run (rewrite passes
    // applied, join orders fixed, shared scans factored).
    let plan = Planner::new(table, stats, profile).plan(q);

    let volumes: Vec<f64> = q
        .fragments
        .iter()
        .map(|u| {
            u.cqs
                .iter()
                .flat_map(|cq| cq.patterns.iter())
                .map(|p| stats.pattern_card(table, p) as f64)
                .sum()
        })
        .collect();
    for (i, frag) in q.fragments.iter().enumerate() {
        let card = stats.est_ucq(table, frag);
        let pipelined = Some(i) == plan.pipelined;
        let _ = writeln!(
            out,
            "  Fragment {i}: {} member CQ(s), head {:?}, scan volume {:.0}, est. rows {:.0}{}",
            frag.len(),
            frag.head,
            volumes[i],
            card,
            if q.fragments.len() <= 1 {
                ""
            } else if pipelined {
                "  [pipelined]"
            } else {
                "  [materialized]"
            },
        );
        for (k, cq) in frag.cqs.iter().take(3).enumerate() {
            let shape: Vec<String> = cq.patterns.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "    member {k}: {}", shape.join(" ⋈ "));
        }
        if frag.len() > 3 {
            let _ = writeln!(out, "    … {} more members", frag.len() - 3);
        }
    }
    if q.fragments.len() > 1 {
        let _ = writeln!(out, "  Fragment join: {:?}", profile.fragment_join);
    }
    let _ = writeln!(
        out,
        "  Final: project {:?}, dedup; est. result {:.0} rows",
        q.head,
        stats.est_jucq(table, q)
    );
    let _ = writeln!(out, "  Internal cost estimate: {:.1}", internal_cost::estimate(store, q));
    let _ = writeln!(out, "  Physical plan ({} node(s)):", plan.node_count());
    for line in plan.render_with(3, names).lines() {
        let _ = writeln!(out, "    {line}");
    }
    out
}

/// Format a nanosecond duration with a unit fitting its magnitude.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// `EXPLAIN ANALYZE` — run `q` with per-node profiling and render each
/// plan node's estimated vs. actual output rows with its Q-error
/// (`max(est/actual, actual/est)`, both clamped to ≥ 1 row). Errors
/// surface exactly as in [`Store::eval_jucq`] (rejection, timeout, …).
pub fn explain_analyze(store: &Store, q: &StoreJucq) -> Result<String, EngineError> {
    let (outcome, exec_profile) = store.eval_jucq_profiled(q)?;
    Ok(render_analyze_report(
        &store.profile().name,
        q.fragments.len(),
        q.union_terms(),
        outcome.relation.len(),
        outcome.elapsed.as_nanos() as u64,
        &outcome.counters,
        &exec_profile,
    ))
}

/// Render the `EXPLAIN ANALYZE` report from an already-collected
/// profiled run, without re-executing anything. Shared by
/// [`explain_analyze`] and the query log's slow-query path (which
/// already holds the [`crate::ExecProfile`] of the run that breached
/// the threshold).
pub fn render_analyze_report(
    profile_name: &str,
    fragments: usize,
    union_terms: usize,
    rows: usize,
    elapsed_ns: u64,
    counters: &crate::exec::Counters,
    exec_profile: &crate::ExecProfile,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN ANALYZE under profile `{profile_name}` \
         ({fragments} fragment(s), {union_terms} union term(s))",
    );
    let _ = writeln!(
        out,
        "  {:<34} {:>12} {:>12} {:>8} {:>10} {:>6}",
        "node", "est. rows", "actual rows", "Q-error", "time", "calls"
    );
    for node in &exec_profile.nodes {
        let est = node.est_rows.map_or_else(|| "-".to_string(), |e| format!("{e:.0}"));
        let qerr = node.q_error().map_or_else(|| "-".to_string(), |e| format!("{e:.2}"));
        let _ = writeln!(
            out,
            "  {:<34} {:>12} {:>12} {:>8} {:>10} {:>6}",
            node.label,
            est,
            node.actual_rows,
            qerr,
            fmt_ns(node.elapsed_ns),
            node.invocations
        );
    }
    let _ = writeln!(out, "  Total: {rows} row(s) in {}", fmt_ns(elapsed_ns));
    let _ = writeln!(
        out,
        "  Counters: scanned {}, joined {}, materialized {}, deduped {}, \
         sip probed {}, sip dropped {}",
        counters.tuples_scanned,
        counters.tuples_joined,
        counters.tuples_materialized,
        counters.tuples_deduped,
        counters.sip_probes,
        counters.sip_drops
    );
    let _ = writeln!(
        out,
        "  Ordering: sorts elided {}, gallop seeks {}, rows borrowed {}, rows reserved {}",
        counters.sorts_elided,
        counters.gallop_seeks,
        counters.scan_rows_borrowed,
        counters.rows_reserved
    );
    if !exec_profile.sip.is_empty() {
        let _ = writeln!(out, "  SIP filters:");
        for f in &exec_profile.sip {
            let pct = if f.probes > 0 { 100.0 * f.drops as f64 / f.probes as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "    {}: probed {}, dropped {} ({pct:.0}% dropped before the join)",
                f.label, f.probes, f.drops
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{PatternTerm, StoreCq, StorePattern, StoreUcq, VarId};
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn store() -> Store {
        let triples: Vec<TripleId> =
            (0..20).map(|i| TripleId::new(id(i), id(100), id(i % 3))).collect();
        Store::from_triples(&triples, EngineProfile::pg_like())
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn sample_jucq(members: usize) -> StoreJucq {
        let member = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), PatternTerm::Const(id(100)), v(1))],
            vec![0, 1],
        );
        let fa = StoreUcq::new(vec![member; members], vec![0, 1]);
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(
                vec![StorePattern::new(v(0), PatternTerm::Const(id(100)), v(2))],
                vec![0, 2],
            )],
            vec![0, 2],
        );
        StoreJucq::new(vec![fa, fb], vec![0, 1, 2])
    }

    #[test]
    fn explains_accepted_plans() {
        let s = store();
        let text = explain(&s, &sample_jucq(2));
        assert!(text.contains("ADMISSION: accepted"));
        assert!(text.contains("Fragment 0"));
        assert!(text.contains("Fragment join"));
        assert!(text.contains("Internal cost estimate"));
        assert!(text.contains("[pipelined]"));
        assert!(text.contains("[materialized]"));
    }

    #[test]
    fn explain_renders_the_physical_plan_tree() {
        let s = store();
        let text = explain(&s, &sample_jucq(2));
        assert!(text.contains("Physical plan"), "{text}");
        assert!(text.contains("Dedup"), "{text}");
        assert!(text.contains("HashUnion fragment[0]"), "{text}");
        assert!(text.contains("IndexScan"), "{text}");
        // The duplicate member of fragment 0 was eliminated by the
        // dedup_members pass: the rendered union has a single member.
        assert!(text.contains("— 1 member"), "{text}");
    }

    #[test]
    fn explains_rejections() {
        let mut s = store();
        s.set_profile(EngineProfile::pg_like().with_max_union_terms(1));
        let text = explain(&s, &sample_jucq(5));
        assert!(text.contains("REJECTED"));
        assert!(text.contains("constraint: max_union_terms"), "{text}");
        assert!(!text.contains("Fragment 0"), "no plan detail after rejection");
    }

    #[test]
    fn explains_memory_budget_rejections() {
        let mut s = store();
        s.set_profile(EngineProfile::pg_like().with_memory_budget(3));
        let text = explain(&s, &sample_jucq(2));
        assert!(text.contains("REJECTED"), "{text}");
        assert!(text.contains("constraint: memory_budget_tuples"), "{text}");
        assert!(!text.contains("Fragment 0"), "no plan detail after rejection");
        // A comfortable budget is accepted and reported.
        s.set_profile(EngineProfile::pg_like());
        let text = explain(&s, &sample_jucq(2));
        assert!(text.contains("ADMISSION: accepted"), "{text}");
        assert!(text.contains("Memory: est. peak materialized intermediate"), "{text}");
    }

    #[test]
    fn explain_analyze_reports_q_errors_per_node() {
        let s = store();
        let text = explain_analyze(&s, &sample_jucq(2)).unwrap();
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("Q-error"), "{text}");
        assert!(text.contains("fragment[0].union"), "{text}");
        assert!(text.contains("join[0].sort_merge_join"), "{text}");
        assert!(text.contains("dedup"), "{text}");
        assert!(text.contains("Total:"), "{text}");
        assert!(text.contains("Counters: scanned"), "{text}");
        assert!(text.contains("sip probed"), "{text}");
        // The order-aware run elides both merge-join sorts and borrows
        // the single-member fragments' scan rows straight through.
        assert!(text.contains("Ordering: sorts elided 2"), "{text}");
        assert!(text.contains("rows borrowed"), "{text}");
        // The two fragments join on ?0, so a SIP filter ran and its
        // selectivity is reported.
        assert!(text.contains("SIP filters:"), "{text}");
        assert!(text.contains(".sip_filter: probed"), "{text}");
    }

    #[test]
    fn explain_analyze_surfaces_rejections_as_errors() {
        let mut s = store();
        s.set_profile(EngineProfile::pg_like().with_max_union_terms(1));
        assert!(matches!(
            explain_analyze(&s, &sample_jucq(5)),
            Err(EngineError::UnionTooLarge { .. })
        ));
    }

    #[test]
    fn truncates_long_unions() {
        let s = store();
        let text = explain(&s, &sample_jucq(10));
        assert!(text.contains("… 7 more members"));
    }
}
