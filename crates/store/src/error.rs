//! Typed engine failures.
//!
//! The paper's experiments hinge on the fact that real engines *fail* on
//! extreme reformulations: DB2 throws `stack depth limit exceeded` on
//! huge UCQs, other queries die with I/O exceptions "in connection with a
//! failed attempt to materialize an intermediary result", and runs beyond
//! two hours are killed. We surface all three failure modes as values so
//! the harness can render them as the figures' missing bars.

use std::fmt;
use std::time::Duration;

/// Why the engine could not complete an evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query's union has more terms than the engine profile can
    /// parse/plan — the analogue of DB2's `stack depth limit exceeded`.
    UnionTooLarge {
        /// Union terms in the submitted query.
        terms: usize,
        /// The profile's limit.
        limit: usize,
    },
    /// An intermediate result exceeded the engine's memory budget — the
    /// analogue of the paper's failed materialization I/O exceptions.
    MemoryBudgetExceeded {
        /// Tuples the operator tried to hold.
        tuples: usize,
        /// The profile's budget, in tuples.
        budget: usize,
    },
    /// Evaluation exceeded the deadline (the paper interrupts runs after
    /// two hours).
    Timeout {
        /// The configured limit.
        limit: Duration,
    },
    /// A worker thread stopped because a concurrent worker of the same
    /// query already failed. The parallel orchestrator replaces this
    /// with the originating failure before surfacing an error, so
    /// callers normally never observe it.
    Cancelled,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnionTooLarge { terms, limit } => {
                write!(f, "stack depth limit exceeded: union of {terms} terms (limit {limit})")
            }
            EngineError::MemoryBudgetExceeded { tuples, budget } => {
                write!(
                    f,
                    "failed to materialize intermediate result: {tuples} tuples (budget {budget})"
                )
            }
            EngineError::Timeout { limit } => write!(f, "evaluation timed out after {limit:?}"),
            EngineError::Cancelled => write!(f, "evaluation cancelled by a concurrent failure"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = EngineError::UnionTooLarge { terms: 318_096, limit: 2_000 };
        assert!(e.to_string().contains("stack depth"));
        let e = EngineError::MemoryBudgetExceeded { tuples: 10, budget: 5 };
        assert!(e.to_string().contains("materialize"));
        let e = EngineError::Timeout { limit: Duration::from_secs(5) };
        assert!(e.to_string().contains("timed out"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EngineError::UnionTooLarge { terms: 1, limit: 2 },
            EngineError::UnionTooLarge { terms: 1, limit: 2 }
        );
        assert_ne!(
            EngineError::UnionTooLarge { terms: 1, limit: 2 },
            EngineError::Timeout { limit: Duration::from_secs(1) }
        );
    }
}
