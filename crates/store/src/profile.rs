//! Engine profiles: the substitution for DB2 / PostgreSQL / MySQL.
//!
//! The paper's experiments (§5) show that the three RDBMSs differ
//! sharply in how they cope with reformulated queries: DB2 fails on huge
//! UCQs with stack-depth errors, MySQL is catastrophically slow on SCQs
//! (it materializes every derived table and joins without hashing),
//! Postgres sits in between. DESIGN.md §3 documents this substitution:
//! we reproduce the *phenomenon* — engines with different strengths and
//! weaknesses, each needing its own calibrated cost model — with one
//! executor parameterized by a profile.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// The join algorithm used when combining materialized fragment results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinAlgo {
    /// Build a hash table on the smaller input, probe with the larger.
    Hash,
    /// Sort both inputs on the join key, then merge.
    SortMerge,
    /// Nested loop over blocks of the outer input — no auxiliary
    /// structure, quadratic; this is what makes the MySQL-like profile
    /// collapse on SCQ's giant fragment unions.
    BlockNestedLoop,
}

/// Behavioural knobs emulating one RDBMS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Human-readable name used in reports (e.g. `pg-like`).
    pub name: String,
    /// Maximum number of union terms the engine accepts in one query;
    /// beyond this it fails with a stack-depth-style error.
    pub max_union_terms: usize,
    /// Memory budget, in tuples, for any single materialized
    /// intermediate result; beyond this the evaluation aborts.
    pub memory_budget_tuples: usize,
    /// Join algorithm for fragment-level joins (UCQ × UCQ).
    pub fragment_join: JoinAlgo,
    /// If true, every union subquery result is fully copied
    /// (materialized) before use, even the one the paper's model assumes
    /// pipelined — MySQL's derived-table behaviour.
    pub materialize_all_unions: bool,
    /// If true, CQ bodies are evaluated with index-nested-loop joins
    /// against the triple table (all six indexes available); if false,
    /// CQ joins hash fully scanned pattern extents.
    pub index_nested_loop_cq: bool,
    /// Default per-query deadline.
    pub timeout: Duration,
    /// Worker threads for union-member / fragment evaluation and cover
    /// scoring. `1` evaluates strictly sequentially; parallel runs merge
    /// order-stably, so results and counters are identical either way.
    pub parallelism: usize,
    /// If true (the default), the planner factors triple-pattern scans
    /// that several union members share into a plan-wide `SharedScan`
    /// table: each distinct access path is computed once and its
    /// materialized extent is reused by every member referencing it.
    /// Disable to measure the unshared baseline (`BENCH_plan_sharing`).
    #[serde(default = "default_share_scans")]
    pub share_scans: bool,
    /// If true (the default), operators run their batched (vectorized)
    /// kernels: tuples move in [`batch_rows`](Self::batch_rows)-row
    /// chunks with amortized liveness polls and per-batch memory checks.
    /// Rows and counters are bit-identical to the row-at-a-time path;
    /// only the per-tuple dispatch cost changes. `JUCQ_BATCH=0` or
    /// `--batch-size 0` fall back to row-at-a-time.
    #[serde(default = "default_vectorized")]
    pub vectorized: bool,
    /// Rows per batch of the vectorized kernels (ignored when
    /// [`vectorized`](Self::vectorized) is off). Clamped to ≥ 1.
    #[serde(default = "default_batch_rows")]
    pub batch_rows: usize,
    /// If true (the default), multi-fragment plans stage their fragment
    /// evaluation in join order and publish a Bloom filter on each join
    /// key into the plan-wide shared table: downstream fragments' union
    /// members probe it and drop non-joining tuples batches at a time
    /// before they reach the join (sideways information passing).
    /// Answers are unchanged — Bloom false positives are discarded by
    /// the join itself.
    #[serde(default = "default_sip_filters")]
    pub sip_filters: bool,
    /// If true (the default), the planner collapses union members that
    /// differ in exactly one constant whose ids form a contiguous run
    /// into a single `RangeScan` over that id interval (the LiteMat
    /// hierarchy-encoding payoff). The collapse checks actual id
    /// contiguity at plan time, so it is answer-preserving under any
    /// dictionary numbering; without the hierarchical encoding it simply
    /// fires rarely. Disable to measure the pure-UCQ baseline.
    #[serde(default = "default_range_scans")]
    pub range_scans: bool,
    /// If true (the default), the planner matches a query's cover
    /// fragments against the store's materialized-view catalog (when
    /// one is attached) and lowers matches to `ViewScan` nodes: the
    /// fragment's rows come from the catalog when the request's epoch
    /// matches the entry's, and from the embedded fallback union
    /// otherwise. `JUCQ_VIEWS=0` disables matching entirely (plans
    /// never contain `ViewScan`s). Answers are identical either way.
    #[serde(default = "default_view_scans")]
    pub view_scans: bool,
    /// If true (the default), the planner is order-aware: scan leaves
    /// record which permutation index produced them (and therefore the
    /// variable order their rows are sorted by), the interesting-orders
    /// pass picks permutations that feed the next fragment join, and
    /// joins whose inputs already arrive sorted on the key lower to
    /// `MergeJoin` with the sort elided — chosen by cost against the
    /// profile's native algorithm, never forced. `JUCQ_ORDER=0`
    /// disables the whole pass (plans and costs revert to the
    /// order-blind baseline). Answers are identical either way.
    #[serde(default = "default_order_aware")]
    pub order_aware: bool,
}

// Referenced by the `#[serde(default)]` attribute, which only expands
// when the real serde crate replaces the offline shim.
#[allow(dead_code)]
fn default_share_scans() -> bool {
    true
}

#[allow(dead_code)]
fn default_sip_filters() -> bool {
    true
}

#[allow(dead_code)]
fn default_range_scans() -> bool {
    true
}

/// The `JUCQ_VIEWS` environment variable, parsed once per profile
/// construction: unset or any non-zero number keeps view matching on,
/// `0` disables it; an unparsable value warns once through `jucq-obs`
/// and keeps the default. (Numbers above zero double as a tuple budget
/// for the layers that own a catalog; the profile only cares whether
/// matching is enabled.)
pub fn default_view_scans() -> bool {
    match std::env::var("JUCQ_VIEWS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => return n != 0,
            Err(_) => {
                jucq_obs::warn_once(
                    "warn.jucq_views_invalid",
                    &format!("ignoring unparsable JUCQ_VIEWS={v:?}; view matching stays enabled"),
                );
            }
        },
        Err(std::env::VarError::NotPresent) => {}
        Err(std::env::VarError::NotUnicode(_)) => {
            jucq_obs::warn_once(
                "warn.jucq_views_invalid",
                "ignoring non-unicode JUCQ_VIEWS; view matching stays enabled",
            );
        }
    }
    true
}

/// The `JUCQ_ORDER` environment variable, parsed once per profile
/// construction: unset or any non-zero number keeps order-aware
/// planning on, `0` disables it; an unparsable value warns once through
/// `jucq-obs` and keeps the default.
pub fn default_order_aware() -> bool {
    match std::env::var("JUCQ_ORDER") {
        Ok(v) => {
            match v.trim().parse::<usize>() {
                Ok(n) => return n != 0,
                Err(_) => {
                    jucq_obs::warn_once(
                    "warn.jucq_order_invalid",
                    &format!("ignoring unparsable JUCQ_ORDER={v:?}; order-aware planning stays enabled"),
                );
                }
            }
        }
        Err(std::env::VarError::NotPresent) => {}
        Err(std::env::VarError::NotUnicode(_)) => {
            jucq_obs::warn_once(
                "warn.jucq_order_invalid",
                "ignoring non-unicode JUCQ_ORDER; order-aware planning stays enabled",
            );
        }
    }
    true
}

/// The default worker-pool width: the `JUCQ_THREADS` environment
/// variable when set, otherwise the machine's available parallelism.
///
/// `JUCQ_THREADS=0` means strictly sequential (consistent with
/// [`EngineProfile::with_parallelism`], which clamps 0 to 1); an
/// unparsable value warns once through `jucq-obs` and falls back to the
/// hardware width.
pub fn default_parallelism() -> usize {
    match std::env::var("JUCQ_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => {
                jucq_obs::warn_once(
                    "warn.jucq_threads_invalid",
                    &format!("ignoring unparsable JUCQ_THREADS={v:?}; using hardware parallelism"),
                );
            }
        },
        Err(std::env::VarError::NotPresent) => {}
        Err(std::env::VarError::NotUnicode(_)) => {
            jucq_obs::warn_once(
                "warn.jucq_threads_invalid",
                "ignoring non-unicode JUCQ_THREADS; using hardware parallelism",
            );
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Rows per batch when nothing overrides it: the sweet spot where the
/// per-batch bookkeeping amortizes but batches stay cache-resident.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// The `JUCQ_BATCH` environment variable, parsed once per profile
/// construction: unset keeps the defaults (vectorized, 1024 rows),
/// `0` disables vectorized execution entirely (row-at-a-time), any
/// other number sets the batch size; an unparsable value warns once
/// through `jucq-obs` and keeps the defaults.
fn batch_env() -> (bool, usize) {
    match std::env::var("JUCQ_BATCH") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => return (false, DEFAULT_BATCH_ROWS),
            Ok(n) => return (true, n),
            Err(_) => {
                jucq_obs::warn_once(
                    "warn.jucq_batch_invalid",
                    &format!("ignoring unparsable JUCQ_BATCH={v:?}; using batch size {DEFAULT_BATCH_ROWS}"),
                );
            }
        },
        Err(std::env::VarError::NotPresent) => {}
        Err(std::env::VarError::NotUnicode(_)) => {
            jucq_obs::warn_once(
                "warn.jucq_batch_invalid",
                &format!("ignoring non-unicode JUCQ_BATCH; using batch size {DEFAULT_BATCH_ROWS}"),
            );
        }
    }
    (true, DEFAULT_BATCH_ROWS)
}

/// Whether batched kernels run by default: true unless `JUCQ_BATCH=0`.
pub fn default_vectorized() -> bool {
    batch_env().0
}

/// The default batch size: `JUCQ_BATCH` when set to a positive number,
/// otherwise [`DEFAULT_BATCH_ROWS`].
pub fn default_batch_rows() -> usize {
    batch_env().1
}

impl EngineProfile {
    /// PostgreSQL-like: hash joins, pipelined largest union, generous
    /// union limit, moderate memory.
    pub fn pg_like() -> Self {
        EngineProfile {
            name: "pg-like".into(),
            max_union_terms: 100_000,
            memory_budget_tuples: 40_000_000,
            fragment_join: JoinAlgo::Hash,
            materialize_all_unions: false,
            index_nested_loop_cq: true,
            timeout: Duration::from_secs(30),
            parallelism: default_parallelism(),
            share_scans: true,
            vectorized: default_vectorized(),
            batch_rows: default_batch_rows(),
            sip_filters: true,
            range_scans: true,
            view_scans: default_view_scans(),
            order_aware: default_order_aware(),
        }
    }

    /// DB2-like: strong executor (hash joins) but a hard stack-depth
    /// limit on the number of union terms it can plan.
    pub fn db2_like() -> Self {
        EngineProfile {
            name: "db2-like".into(),
            max_union_terms: 2_000,
            memory_budget_tuples: 40_000_000,
            fragment_join: JoinAlgo::Hash,
            materialize_all_unions: false,
            index_nested_loop_cq: true,
            timeout: Duration::from_secs(30),
            parallelism: default_parallelism(),
            share_scans: true,
            vectorized: default_vectorized(),
            batch_rows: default_batch_rows(),
            sip_filters: true,
            range_scans: true,
            view_scans: default_view_scans(),
            order_aware: default_order_aware(),
        }
    }

    /// MySQL-like: materializes every derived union and joins fragments
    /// with block-nested loops; tight memory budget.
    pub fn mysql_like() -> Self {
        EngineProfile {
            name: "mysql-like".into(),
            max_union_terms: 60_000,
            memory_budget_tuples: 25_000_000,
            fragment_join: JoinAlgo::BlockNestedLoop,
            materialize_all_unions: true,
            index_nested_loop_cq: true,
            timeout: Duration::from_secs(30),
            parallelism: default_parallelism(),
            share_scans: true,
            vectorized: default_vectorized(),
            batch_rows: default_batch_rows(),
            sip_filters: true,
            range_scans: true,
            view_scans: default_view_scans(),
            order_aware: default_order_aware(),
        }
    }

    /// Virtuoso-like "native RDF store" used only for the saturation
    /// comparison of Figure 10: same executor as pg-like but without the
    /// per-query connection overhead (modelled in the cost layer) and
    /// with a larger memory budget.
    pub fn native_like() -> Self {
        EngineProfile {
            name: "native-like".into(),
            max_union_terms: 100_000,
            memory_budget_tuples: 80_000_000,
            fragment_join: JoinAlgo::Hash,
            materialize_all_unions: false,
            index_nested_loop_cq: true,
            timeout: Duration::from_secs(30),
            parallelism: default_parallelism(),
            share_scans: true,
            vectorized: default_vectorized(),
            batch_rows: default_batch_rows(),
            sip_filters: true,
            range_scans: true,
            view_scans: default_view_scans(),
            order_aware: default_order_aware(),
        }
    }

    /// All three RDBMS-like profiles, in the order the figures use.
    pub fn rdbms_trio() -> [EngineProfile; 3] {
        [Self::db2_like(), Self::pg_like(), Self::mysql_like()]
    }

    /// Replace the deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Replace the memory budget.
    pub fn with_memory_budget(mut self, tuples: usize) -> Self {
        self.memory_budget_tuples = tuples;
        self
    }

    /// Replace the union-term limit.
    pub fn with_max_union_terms(mut self, terms: usize) -> Self {
        self.max_union_terms = terms;
        self
    }

    /// Replace the worker-pool width (clamped to at least one).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Replace the fragment-level join algorithm.
    pub fn with_fragment_join(mut self, algo: JoinAlgo) -> Self {
        self.fragment_join = algo;
        self
    }

    /// Enable or disable common-scan factoring across union members.
    pub fn with_scan_sharing(mut self, share: bool) -> Self {
        self.share_scans = share;
        self
    }

    /// Enable or disable the batched (vectorized) kernels.
    pub fn with_vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    /// Set the batch size, with the CLI's `--batch-size` semantics:
    /// `0` disables vectorized execution (row-at-a-time), any other
    /// value enables it with that many rows per batch.
    pub fn with_batch_size(mut self, rows: usize) -> Self {
        if rows == 0 {
            self.vectorized = false;
        } else {
            self.vectorized = true;
            self.batch_rows = rows;
        }
        self
    }

    /// Enable or disable cross-fragment sideways information passing.
    pub fn with_sip_filters(mut self, on: bool) -> Self {
        self.sip_filters = on;
        self
    }

    /// Enable or disable collapsing contiguous-id union members into
    /// `RangeScan` nodes.
    pub fn with_range_scans(mut self, on: bool) -> Self {
        self.range_scans = on;
        self
    }

    /// Enable or disable matching cover fragments against the
    /// materialized-view catalog.
    pub fn with_view_scans(mut self, on: bool) -> Self {
        self.view_scans = on;
        self
    }

    /// Enable or disable order-aware planning (interesting orders,
    /// sort-elided merge joins, zero-copy scan handoff).
    pub fn with_order_aware(mut self, on: bool) -> Self {
        self.order_aware = on;
        self
    }

    /// The effective worker count: at least one.
    pub fn effective_parallelism(&self) -> usize {
        self.parallelism.max(1)
    }

    /// The effective rows-per-batch: at least one.
    pub fn effective_batch_rows(&self) -> usize {
        self.batch_rows.max(1)
    }

    /// A cache-key fingerprint of every knob that changes the *plan* or
    /// how a cached plan may be replayed: toggling any of these (e.g.
    /// via `JUCQ_BATCH` or `with_sip_filters`) must miss the plan cache
    /// rather than serve a plan lowered under the old settings. The
    /// name alone is not enough — two profiles can share a name and
    /// differ in knobs (the `set_profile` staleness class).
    pub fn plan_cache_key(&self) -> String {
        format!(
            "{}|join={:?}|mat={}|inlj={}|share={}|vec={}|batch={}|sip={}|range={}|views={}|order={}",
            self.name,
            self.fragment_join,
            self.materialize_all_unions,
            self.index_nested_loop_cq,
            self.share_scans,
            self.vectorized,
            self.effective_batch_rows(),
            self.sip_filters,
            self.range_scans,
            self.view_scans,
            self.order_aware,
        )
    }
}

impl Default for EngineProfile {
    fn default() -> Self {
        Self::pg_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_names() {
        let names: Vec<String> =
            EngineProfile::rdbms_trio().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, vec!["db2-like", "pg-like", "mysql-like"]);
    }

    #[test]
    fn db2_has_tightest_union_limit() {
        let [db2, pg, my] = EngineProfile::rdbms_trio();
        assert!(db2.max_union_terms < pg.max_union_terms);
        assert!(db2.max_union_terms < my.max_union_terms);
    }

    #[test]
    fn mysql_materializes_and_nested_loops() {
        let my = EngineProfile::mysql_like();
        assert!(my.materialize_all_unions);
        assert_eq!(my.fragment_join, JoinAlgo::BlockNestedLoop);
    }

    #[test]
    fn builders_override_fields() {
        let p = EngineProfile::pg_like()
            .with_timeout(Duration::from_millis(5))
            .with_memory_budget(7)
            .with_max_union_terms(3);
        assert_eq!(p.timeout, Duration::from_millis(5));
        assert_eq!(p.memory_budget_tuples, 7);
        assert_eq!(p.max_union_terms, 3);
    }

    #[test]
    fn default_is_pg_like() {
        assert_eq!(EngineProfile::default().name, "pg-like");
    }

    /// Serializes tests that mutate the process environment.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn jucq_threads_zero_means_sequential() {
        let _serial = env_lock();
        std::env::set_var("JUCQ_THREADS", "0");
        assert_eq!(default_parallelism(), 1);
        std::env::set_var("JUCQ_THREADS", "3");
        assert_eq!(default_parallelism(), 3);
        std::env::remove_var("JUCQ_THREADS");
    }

    #[test]
    fn jucq_threads_junk_warns_once_and_falls_back() {
        let _serial = env_lock();
        jucq_obs::warn::reset_for_test();
        std::env::set_var("JUCQ_THREADS", "banana");
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(default_parallelism(), hw);
        assert!(jucq_obs::warn::warned("warn.jucq_threads_invalid"));
        // Second call with junk does not re-print (warn_once dedupes).
        assert_eq!(default_parallelism(), hw);
        std::env::remove_var("JUCQ_THREADS");
        jucq_obs::warn::reset_for_test();
    }

    #[test]
    fn jucq_batch_env_controls_vectorization() {
        let _serial = env_lock();
        std::env::set_var("JUCQ_BATCH", "0");
        assert!(!default_vectorized(), "JUCQ_BATCH=0 means row-at-a-time");
        assert_eq!(default_batch_rows(), DEFAULT_BATCH_ROWS);
        std::env::set_var("JUCQ_BATCH", "256");
        assert!(default_vectorized());
        assert_eq!(default_batch_rows(), 256);
        std::env::remove_var("JUCQ_BATCH");
        assert!(default_vectorized());
        assert_eq!(default_batch_rows(), DEFAULT_BATCH_ROWS);
    }

    #[test]
    fn jucq_batch_junk_warns_once_and_falls_back() {
        let _serial = env_lock();
        jucq_obs::warn::reset_for_test();
        std::env::set_var("JUCQ_BATCH", "huge");
        assert!(default_vectorized());
        assert_eq!(default_batch_rows(), DEFAULT_BATCH_ROWS);
        assert!(jucq_obs::warn::warned("warn.jucq_batch_invalid"));
        std::env::remove_var("JUCQ_BATCH");
        jucq_obs::warn::reset_for_test();
    }

    #[test]
    fn jucq_order_env_controls_order_awareness() {
        let _serial = env_lock();
        std::env::set_var("JUCQ_ORDER", "0");
        assert!(!default_order_aware(), "JUCQ_ORDER=0 disables order-aware planning");
        std::env::set_var("JUCQ_ORDER", "1");
        assert!(default_order_aware());
        std::env::remove_var("JUCQ_ORDER");
        assert!(default_order_aware(), "order-aware planning is on by default");
    }

    #[test]
    fn batch_size_builder_follows_cli_semantics() {
        let p = EngineProfile::pg_like().with_batch_size(0);
        assert!(!p.vectorized, "0 disables batching");
        let p = EngineProfile::pg_like().with_batch_size(333);
        assert!(p.vectorized);
        assert_eq!(p.effective_batch_rows(), 333);
    }

    #[test]
    fn plan_cache_key_distinguishes_batch_and_sip_knobs() {
        let base = EngineProfile::pg_like();
        let keys = [
            base.clone().plan_cache_key(),
            base.clone().with_vectorized(!base.vectorized).plan_cache_key(),
            base.clone().with_sip_filters(!base.sip_filters).plan_cache_key(),
            base.clone().with_scan_sharing(false).plan_cache_key(),
            base.clone().with_batch_size(7).plan_cache_key(),
            base.clone().with_range_scans(!base.range_scans).plan_cache_key(),
            base.clone().with_view_scans(!base.view_scans).plan_cache_key(),
            base.clone().with_order_aware(!base.order_aware).plan_cache_key(),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "knob change must change the key");
            }
        }
        // Knobs that never affect the plan or its replay semantics —
        // timeouts, budgets — keep the key stable (cache stays warm).
        assert_eq!(
            base.clone().with_timeout(Duration::from_secs(1)).plan_cache_key(),
            base.plan_cache_key()
        );
    }

    #[test]
    fn parallelism_clamps_to_one() {
        let p = EngineProfile::pg_like().with_parallelism(0);
        assert_eq!(p.effective_parallelism(), 1);
        let p = EngineProfile::pg_like().with_parallelism(8);
        assert_eq!(p.effective_parallelism(), 8);
        assert!(EngineProfile::pg_like().effective_parallelism() >= 1);
    }
}
