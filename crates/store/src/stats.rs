//! Statistics and cardinality estimation.
//!
//! The cost model of §4.1 "relies on estimated cardinalities of various
//! subqueries of the JUCQ"; GCov spends part of its running time to
//! "obtain the statistics necessary for estimating the number of results
//! of various fragments" (§5.2). This module supplies both:
//!
//! * **exact** triple-pattern cardinalities, read off the permutation
//!   indexes in O(log n);
//! * System-R-style **estimates** for CQs (independence + containment of
//!   value sets), UCQs (sum) and JUCQs (join of fragment estimates).

use jucq_model::{FxHashMap, TermId};

use crate::ir::{StoreCq, StoreJucq, StorePattern, StoreUcq, VarId};
use crate::table::TripleTable;

/// Per-predicate statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of triples with this predicate.
    pub count: usize,
    /// Distinct subjects among them.
    pub distinct_subjects: usize,
    /// Distinct objects among them.
    pub distinct_objects: usize,
}

/// Dataset-level statistics backing cardinality estimation.
#[derive(Debug, Clone)]
pub struct Statistics {
    total: usize,
    predicates: FxHashMap<TermId, PredicateStats>,
    distinct_subjects: usize,
    distinct_objects: usize,
    distinct_predicates: usize,
}

/// Number of maximal equal runs in a pre-sorted stream (= distinct
/// count when the stream is globally sorted on that component).
fn count_runs(values: impl Iterator<Item = TermId>) -> usize {
    let mut n = 0usize;
    let mut last: Option<TermId> = None;
    for v in values {
        if last != Some(v) {
            n += 1;
            last = Some(v);
        }
    }
    n
}

impl Statistics {
    /// Gather statistics from a built table. Near-linear: the PSO index
    /// already groups triples by predicate with subjects sorted inside
    /// each run, and the SPO/OSP indexes give global distinct subject
    /// and object counts by run-counting — no re-sorting pass (this is
    /// also what keeps incremental store maintenance cheap).
    pub fn build(table: &TripleTable) -> Self {
        let mut predicates: FxHashMap<TermId, PredicateStats> = FxHashMap::default();
        let pso = table.by_predicate();
        let mut i = 0usize;
        while i < pso.len() {
            let p = pso[i].p;
            let mut j = i;
            while j < pso.len() && pso[j].p == p {
                j += 1;
            }
            let run = &pso[i..j];
            // Subjects are sorted within a PSO run.
            let distinct_subjects = count_runs(run.iter().map(|t| t.s));
            // Objects are not; sort a raw copy of the run.
            let mut objects: Vec<u32> = run.iter().map(|t| t.o.raw()).collect();
            objects.sort_unstable();
            objects.dedup();
            predicates.insert(
                p,
                PredicateStats {
                    count: run.len(),
                    distinct_subjects,
                    distinct_objects: objects.len(),
                },
            );
            i = j;
        }
        Statistics {
            total: table.len(),
            distinct_predicates: predicates.len(),
            predicates,
            distinct_subjects: count_runs(table.all().iter().map(|t| t.s)),
            distinct_objects: count_runs(table.by_object().iter().map(|t| t.o)),
        }
    }

    /// Total triples.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Statistics for one predicate, if it occurs.
    pub fn predicate(&self, p: TermId) -> Option<&PredicateStats> {
        self.predicates.get(&p)
    }

    /// Number of distinct predicates.
    pub fn distinct_predicates(&self) -> usize {
        self.distinct_predicates
    }

    /// Exact cardinality of a triple pattern (index lookup).
    pub fn pattern_card(&self, table: &TripleTable, p: &StorePattern) -> usize {
        table.count(&p.bound())
    }

    /// Estimated distinct values a variable can take in one pattern,
    /// used as the domain size for join selectivities.
    fn var_domain_f(&self, pattern: &StorePattern, var: VarId, card: f64) -> f64 {
        self.var_domain_inner(pattern, var, card)
    }

    fn var_domain_inner(&self, pattern: &StorePattern, var: VarId, card: f64) -> f64 {
        let positions = pattern.positions();
        let pred = pattern.p.as_const();
        let mut best = f64::MAX;
        for (i, pos) in positions.iter().enumerate() {
            if pos.as_var() != Some(var) {
                continue;
            }
            let d = match (i, pred) {
                (0, Some(p)) => self.predicates.get(&p).map_or(1, |st| st.distinct_subjects),
                (2, Some(p)) => self.predicates.get(&p).map_or(1, |st| st.distinct_objects),
                (0, None) => self.distinct_subjects.max(1),
                (2, None) => self.distinct_objects.max(1),
                (1, _) => self.distinct_predicates.max(1),
                _ => unreachable!("position in 0..3"),
            };
            best = best.min(d as f64);
        }
        // A variable's domain cannot exceed the pattern's extent.
        best.min(card.max(1.0)).max(1.0)
    }

    /// Estimated result cardinality of a CQ body (before projection):
    /// product of exact pattern extents divided per shared variable by
    /// all but the smallest of its per-atom domains (containment of
    /// value sets).
    pub fn est_cq(&self, table: &TripleTable, cq: &StoreCq) -> f64 {
        let cards: Vec<f64> =
            cq.patterns.iter().map(|p| self.pattern_card(table, p) as f64).collect();
        self.est_with_extents(&cq.patterns, &cards)
    }

    /// The [`Statistics::est_cq`] formula with *supplied* per-atom
    /// extents instead of index lookups. This backs the optimizer's
    /// union-overlap-aware fragment estimate: a reformulated fragment's
    /// result is contained in the join of its atoms' *unioned*
    /// reformulation extents, which this estimates (the per-member sum
    /// wildly overcounts the overlap between union members).
    pub fn est_with_extents(&self, atoms: &[StorePattern], extents: &[f64]) -> f64 {
        debug_assert_eq!(atoms.len(), extents.len());
        if atoms.is_empty() {
            return 1.0;
        }
        if extents.contains(&0.0) {
            return 0.0;
        }
        let mut est: f64 = extents.iter().product();
        // Per-variable join selectivity.
        let mut var_occurrences: FxHashMap<VarId, Vec<f64>> = FxHashMap::default();
        for (p, &card) in atoms.iter().zip(extents) {
            for v in p.variables() {
                var_occurrences.entry(v).or_default().push(self.var_domain_f(p, v, card));
            }
        }
        for (_, mut domains) in var_occurrences {
            if domains.len() < 2 {
                continue;
            }
            domains.sort_by(|a, b| a.partial_cmp(b).expect("finite domains"));
            // Divide by every domain except the smallest.
            for d in &domains[1..] {
                est /= d.max(1.0);
            }
        }
        est.max(0.0)
    }

    /// Domain size of `var` within `atoms` (the largest per-atom domain
    /// where it occurs), for join-selectivity reasoning outside this
    /// module; `extents` as in [`Statistics::est_with_extents`].
    pub fn var_domain_in(&self, atoms: &[StorePattern], extents: &[f64], var: VarId) -> f64 {
        let mut best: f64 = 1.0;
        for (p, &card) in atoms.iter().zip(extents) {
            if p.variables().contains(&var) {
                best = best.max(self.var_domain_f(p, var, card));
            }
        }
        best
    }

    /// Estimated cardinality of a UCQ: sum of member estimates (overlap
    /// ignored, as usual for union estimation).
    pub fn est_ucq(&self, table: &TripleTable, ucq: &StoreUcq) -> f64 {
        ucq.cqs.iter().map(|cq| self.est_cq(table, cq)).sum()
    }

    /// Estimated cardinality of a JUCQ: fragment estimates combined with
    /// join selectivities on the variables shared between fragments,
    /// using each shared variable's smallest per-fragment domain.
    pub fn est_jucq(&self, table: &TripleTable, jucq: &StoreJucq) -> f64 {
        if jucq.fragments.is_empty() {
            return 0.0;
        }
        let frag_cards: Vec<f64> = jucq.fragments.iter().map(|u| self.est_ucq(table, u)).collect();
        if frag_cards.contains(&0.0) {
            return 0.0;
        }
        let mut est: f64 = frag_cards.iter().product();
        // Domain of a shared variable within a fragment: the largest
        // per-atom domain over the fragment's members (atoms where it
        // occurs), capped by the fragment estimate. Variables that the
        // reformulation's instantiation rules turned into *constants*
        // in the member heads (class/property variables, paper Example
        // 4) no longer occur in any pattern — their domain there is the
        // number of distinct constants across the members.
        let mut var_domains: FxHashMap<VarId, Vec<f64>> = FxHashMap::default();
        for (frag, &fcard) in jucq.fragments.iter().zip(&frag_cards) {
            let mut per_var: FxHashMap<VarId, f64> = FxHashMap::default();
            let mut head_consts: FxHashMap<VarId, jucq_model::FxHashSet<jucq_model::TermId>> =
                FxHashMap::default();
            for cq in &frag.cqs {
                for p in &cq.patterns {
                    let card = self.pattern_card(table, p);
                    for v in p.variables() {
                        if !frag.head.contains(&v) {
                            continue;
                        }
                        let d = self.var_domain_f(p, v, card as f64);
                        per_var.entry(v).and_modify(|cur| *cur = cur.max(d)).or_insert(d);
                    }
                }
                for (pos, &v) in frag.head.iter().enumerate() {
                    if let Some(c) = cq.head.get(pos).and_then(|t| t.as_const()) {
                        head_consts.entry(v).or_default().insert(c);
                    }
                }
            }
            for (v, consts) in head_consts {
                let d = consts.len() as f64;
                per_var.entry(v).and_modify(|cur| *cur = cur.max(d)).or_insert(d);
            }
            for (v, d) in per_var {
                var_domains.entry(v).or_default().push(d.min(fcard.max(1.0)));
            }
        }
        for (_, mut domains) in var_domains {
            if domains.len() < 2 {
                continue;
            }
            domains.sort_by(|a, b| a.partial_cmp(b).expect("finite domains"));
            for d in &domains[1..] {
                est /= d.max(1.0);
            }
        }
        est.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::PatternTerm;
    use jucq_model::term::TermKind;
    use jucq_model::TripleId;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn setup() -> (TripleTable, Statistics) {
        let table = TripleTable::build(&[
            t(1, 10, 2),
            t(1, 10, 3),
            t(2, 10, 3),
            t(1, 11, 5),
            t(2, 11, 5),
            t(3, 11, 5),
            t(4, 12, 6),
        ]);
        let stats = Statistics::build(&table);
        (table, stats)
    }

    #[test]
    fn predicate_stats_are_exact() {
        let (_, stats) = setup();
        let p10 = stats.predicate(id(10)).unwrap();
        assert_eq!(p10.count, 3);
        assert_eq!(p10.distinct_subjects, 2);
        assert_eq!(p10.distinct_objects, 2);
        let p11 = stats.predicate(id(11)).unwrap();
        assert_eq!(p11.distinct_objects, 1);
        assert!(stats.predicate(id(99)).is_none());
        assert_eq!(stats.total(), 7);
        assert_eq!(stats.distinct_predicates(), 3);
    }

    #[test]
    fn single_pattern_estimate_is_exact() {
        let (table, stats) = setup();
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]);
        assert_eq!(stats.est_cq(&table, &cq), 3.0);
    }

    #[test]
    fn zero_extent_pattern_estimates_zero() {
        let (table, stats) = setup();
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(99), v(1)), StorePattern::new(v(0), c(10), v(2))],
            vec![0],
        );
        assert_eq!(stats.est_cq(&table, &cq), 0.0);
    }

    #[test]
    fn join_estimate_is_reduced_by_selectivity() {
        let (table, stats) = setup();
        // ?x 10 ?y ⋈ ?x 11 ?z: 3 × 3 = 9 before selectivity; shared var
        // x has domains {2, 3} ⇒ divide by 3 ⇒ 3.
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), v(2))],
            vec![0, 1, 2],
        );
        let est = stats.est_cq(&table, &cq);
        assert!(est > 0.0 && est < 9.0, "estimate {est} reduced below cross product");
    }

    #[test]
    fn ucq_estimate_sums_members() {
        let (table, stats) = setup();
        let a = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]);
        let b = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1]);
        let ucq = StoreUcq::new(vec![a, b], vec![0, 1]);
        assert_eq!(stats.est_ucq(&table, &ucq), 6.0);
    }

    #[test]
    fn jucq_estimate_applies_fragment_join_selectivity() {
        let (table, stats) = setup();
        let f1 = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1])],
            vec![0, 1],
        );
        let f2 = StoreUcq::new(
            vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(2))], vec![0, 2])],
            vec![0, 2],
        );
        let jucq = StoreJucq::new(vec![f1, f2], vec![0, 1, 2]);
        let est = stats.est_jucq(&table, &jucq);
        assert!(est > 0.0 && est < 9.0, "estimate {est}");
    }

    #[test]
    fn empty_jucq_estimates_zero() {
        let (table, stats) = setup();
        let jucq = StoreJucq::new(vec![], vec![]);
        assert_eq!(stats.est_jucq(&table, &jucq), 0.0);
    }

    #[test]
    fn empty_cq_estimates_one() {
        let (table, stats) = setup();
        let cq = StoreCq::with_var_head(vec![], vec![]);
        assert_eq!(stats.est_cq(&table, &cq), 1.0);
    }

    #[test]
    fn pattern_card_matches_table_count() {
        let (table, stats) = setup();
        let p = StorePattern::new(v(0), c(11), v(1));
        assert_eq!(stats.pattern_card(&table, &p), 3);
    }
}
