//! Driving a physical [`Plan`]: shared-scan materialization, fragment
//! union evaluation (sequential or parallel — both interpret the same
//! plan), the fragment join tree, and the final projection and
//! duplicate elimination.
//!
//! Plans with sideways-information-passing filters (`plan.sip`
//! non-empty) are executed **staged**: fragments run one at a time in
//! join order, so each join step's accumulated left side exists when
//! its target fragment starts and can publish a Bloom filter the
//! fragment's members probe. Plans without SIP run all fragments
//! up-front (possibly across one worker pool) and then fold the join
//! tree — byte-identical to the pre-SIP driver.
//!
//! Fragment leaves may be [`PlanNode::ViewScan`]s: the executor
//! resolves each through the supplied [`ViewSource`] — epoch-exact, so
//! a catalog entry computed at any other epoch never serves — and
//! copies the materialized rows through a scan-priced kernel (batched
//! or row-at-a-time, matching the profile). A miss, or running with no
//! view source at all, evaluates the embedded fallback union; answers
//! are identical either way.

use crate::error::EngineError;
use crate::exec::{batch, cq, join, parallel, ExecContext};
use crate::plan::node::{Plan, PlanNode};
use crate::profile::JoinAlgo;
use crate::relation::Relation;
use crate::table::TripleTable;
use crate::views::ViewSource;

/// Copy a resolved view's rows into a fresh relation on `ctx`'s
/// counters: charged as a scan (`tuples_scanned`, one `view_hits`
/// resolution), batched when the profile's vectorized kernels are on,
/// row-at-a-time otherwise — the same liveness-poll cadence as any
/// other scan.
///
/// The copy is **positional**: column `k` of the stored relation is the
/// pinning fragment's `k`-th head variable, and the head-aware canonical
/// [`ViewSignature`](crate::views::ViewSignature) numbers head variables
/// first in head order, so any fragment matching the signature binds the
/// same value at head position `k`. VarIds are per-query (the consuming
/// query's `head` generally differs from the pinning query's stored
/// schema), so realigning by VarId would be wrong — only the labels are
/// taken from `head`.
fn copy_view_rows(
    rows: &Relation,
    idx: usize,
    head: &[crate::ir::VarId],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let op = ctx.op_start();
    debug_assert_eq!(rows.vars().len(), head.len(), "view arity checked by resolve_view");
    let mut out = Relation::with_capacity(head.to_vec(), rows.len());
    if ctx.profile().vectorized {
        let batch_rows = ctx.profile().effective_batch_rows();
        let mut done = 0;
        while done < rows.len() {
            let n = batch_rows.min(rows.len() - done);
            for r in done..done + n {
                out.push_row(rows.row(r));
            }
            ctx.tick_n(n as u64)?;
            done += n;
        }
    } else {
        for r in rows.rows() {
            out.push_row(r);
            ctx.tick()?;
        }
    }
    ctx.counters.tuples_scanned += out.len() as u64;
    ctx.counters.view_hits += 1;
    ctx.check_memory(out.len())?;
    ctx.op_finish(op, &format!("fragment[{idx}].view_scan"), out.len() as u64);
    Ok(out)
}

/// Resolve a fragment leaf's view binding, if it has one and the
/// request's epoch matches.
fn resolve_view(
    leaf: &PlanNode,
    plan: &Plan,
    views: Option<&ViewSource<'_>>,
    ctx: &mut ExecContext<'_>,
) -> Result<Option<Relation>, EngineError> {
    if let PlanNode::ViewScan { idx, head, view, .. } = leaf {
        if let Some(src) = views {
            if let Some(rows) = src.resolve(&plan.views[*view].signature) {
                // An arity mismatch can only mean a signature collision
                // (the signature encodes the head arity); treat it as a
                // miss and evaluate the fallback union rather than serve
                // another fragment's rows.
                if rows.vars().len() == head.len() {
                    return Ok(Some(copy_view_rows(&rows, *idx, head, ctx)?));
                }
            }
        }
    }
    Ok(None)
}

/// Execute `plan` against `table` with up to `threads` union workers,
/// resolving [`PlanNode::ViewScan`] leaves through `views` (when given).
pub(crate) fn execute(
    table: &TripleTable,
    plan: &Plan,
    ctx: &mut ExecContext<'_>,
    threads: usize,
    views: Option<&ViewSource<'_>>,
) -> Result<Relation, EngineError> {
    if plan.is_const_empty() {
        return Ok(Relation::empty(plan.head.clone()));
    }

    // Materialize the plan-wide shared scans once, on the driver
    // context: every member referencing one borrows the same extent, so
    // scan counters are charged exactly once per distinct pattern
    // regardless of how many members use it or how many workers run.
    // The held extents are charged against the global memory budget
    // until the query completes.
    let mut shared: Vec<Relation> = Vec::with_capacity(plan.shared.len());
    for (i, def) in plan.shared.iter().enumerate() {
        let op = ctx.op_start();
        let rel = cq::scan_pattern(table, &def.pattern, ctx)?;
        ctx.reserve_memory(rel.len())?;
        ctx.op_finish(op, &format!("shared_scan[{i}]"), rel.len() as u64);
        shared.push(rel);
    }
    let shared_held: usize = shared.iter().map(|r| r.len()).sum();

    let tree = match &plan.root {
        PlanNode::Dedup { input, .. } => match &**input {
            PlanNode::Project { input, .. } => &**input,
            other => other,
        },
        other => other,
    };

    let acc = if plan.sip.is_empty() {
        let leaves = plan.fragment_leaves();
        let mut slots: Vec<Option<Relation>> = leaves.iter().map(|_| None).collect();
        let mut tasks: Vec<parallel::UnionTask<'_>> = Vec::new();
        for leaf in &leaves {
            if let Some(rel) = resolve_view(leaf, plan, views, ctx)? {
                let PlanNode::ViewScan { idx, .. } = leaf else { unreachable!() };
                slots[*idx] = Some(rel);
                continue;
            }
            let union = leaf.fallback_union();
            let (idx, head, members) = union.as_union().expect("fragment leaf wraps a union");
            let est = match union {
                PlanNode::HashUnion { est, .. } => *est,
                _ => None,
            };
            tasks.push(parallel::UnionTask { idx, head, members, est, filter: None });
        }
        let frags = parallel::eval_unions(table, &tasks, &shared, ctx, threads)?;
        for (task, rel) in tasks.iter().zip(frags) {
            slots[task.idx] = Some(rel);
        }

        // All but the pipelined (largest-estimate) fragment are charged
        // as materialized (§4.1: "the largest-result sub-query ... is
        // the one pipelined").
        if slots.len() > 1 {
            for (i, f) in slots.iter().enumerate() {
                let f = f.as_ref().expect("every fragment has a result");
                if Some(i) != plan.pipelined {
                    ctx.counters.tuples_materialized += f.len() as u64;
                    ctx.check_memory(f.len())?;
                }
            }
        }

        fold_joins(tree, &mut slots, ctx)?
    } else {
        execute_staged(table, plan, tree, &shared, ctx, threads, views)?
    };

    let op = ctx.op_start();
    let mut relation = acc.project(&plan.head);
    ctx.counters.tuples_deduped += relation.len() as u64;
    if ctx.profile().vectorized {
        relation.dedup_in_place_hashed();
    } else {
        relation.dedup_in_place();
    }
    ctx.op_finish(op, "dedup", relation.len() as u64);

    ctx.release_memory(shared_held);
    Ok(relation)
}

/// Staged execution of a multi-fragment plan with SIP filters:
/// fragments are evaluated one at a time in join order (each union
/// still fans its members across the worker pool). When a join step has
/// a planned [`SipFilterDef`](crate::plan::SipFilterDef), the
/// accumulated left side is hashed into a Bloom filter first and the
/// right fragment's members probe it as they complete. A view-resolved
/// fragment skips its filter (the filter only prunes work the copy
/// kernel does not do; the join itself discards non-matching rows).
#[allow(clippy::too_many_arguments)]
fn execute_staged(
    table: &TripleTable,
    plan: &Plan,
    tree: &PlanNode,
    shared: &[Relation],
    ctx: &mut ExecContext<'_>,
    threads: usize,
    views: Option<&ViewSource<'_>>,
) -> Result<Relation, EngineError> {
    // Linearize the left-deep join tree into its execution order: the
    // base fragment, then one (algo, opts, step, right-fragment) per
    // join. Merge steps carry the planner's sort-elision flags; every
    // step carries its output estimate for pre-sizing.
    let mut steps: Vec<(JoinAlgo, join::JoinOpts, usize, &PlanNode)> = Vec::new();
    let mut node = tree;
    let base = loop {
        match node {
            PlanNode::HashUnion { .. } | PlanNode::ViewScan { .. } => break node,
            PlanNode::HashJoin { left, right, step: Some(step), est } => {
                let opts = join::JoinOpts { elide: (false, false), est: *est };
                steps.push((JoinAlgo::Hash, opts, *step, right));
                node = left;
            }
            PlanNode::MergeJoin { left, right, step, est, sort_elided } => {
                let opts = join::JoinOpts { elide: *sort_elided, est: *est };
                steps.push((
                    JoinAlgo::SortMerge,
                    opts,
                    step.expect("fragment join has a step"),
                    right,
                ));
                node = left;
            }
            PlanNode::NestedLoopJoin { left, right, step, est } => {
                let opts = join::JoinOpts { elide: (false, false), est: *est };
                steps.push((
                    JoinAlgo::BlockNestedLoop,
                    opts,
                    step.expect("fragment join has a step"),
                    right,
                ));
                node = left;
            }
            other => unreachable!("not a fragment-level node: {other:?}"),
        }
    };
    steps.reverse();

    let eval_fragment = |leaf: &PlanNode,
                         filter: Option<&batch::SipFilter>,
                         ctx: &mut ExecContext<'_>|
     -> Result<Relation, EngineError> {
        if let Some(rel) = resolve_view(leaf, plan, views, ctx)? {
            let PlanNode::ViewScan { idx, .. } = leaf else { unreachable!() };
            if Some(*idx) != plan.pipelined {
                ctx.counters.tuples_materialized += rel.len() as u64;
                ctx.check_memory(rel.len())?;
            }
            return Ok(rel);
        }
        let union = leaf.fallback_union();
        let (idx, head, members) = union.as_union().expect("fragment join input wraps a union");
        let est = match union {
            PlanNode::HashUnion { est, .. } => *est,
            _ => None,
        };
        let task = parallel::UnionTask { idx, head, members, est, filter };
        let mut frags =
            parallel::eval_unions(table, std::slice::from_ref(&task), shared, ctx, threads)?;
        let rel = frags.pop().expect("one task, one result");
        if Some(idx) != plan.pipelined {
            ctx.counters.tuples_materialized += rel.len() as u64;
            ctx.check_memory(rel.len())?;
        }
        Ok(rel)
    };

    let mut acc = eval_fragment(base, None, ctx)?;
    for (algo, opts, step, right_node) in steps {
        let filter = plan.sip.iter().find(|d| d.step == step).map(|d| {
            batch::SipFilter::build(&acc, &d.keys, format!("fragment[{}].sip_filter", d.target))
        });
        let r = eval_fragment(right_node, filter.as_ref(), ctx)?;
        ctx.set_scope(format!("join[{step}]."));
        let out = join::fragment_join(algo, &acc, &r, opts, ctx);
        ctx.set_scope(String::new());
        acc = out?;
    }
    Ok(acc)
}

/// Recursively evaluate the fragment-level join tree, taking each
/// fragment's materialized result out of its slot.
fn fold_joins(
    node: &PlanNode,
    slots: &mut [Option<Relation>],
    ctx: &mut ExecContext<'_>,
) -> Result<Relation, EngineError> {
    let (algo, opts, left, right, step) = match node {
        PlanNode::HashUnion { idx, .. } | PlanNode::ViewScan { idx, .. } => {
            return Ok(slots[*idx].take().expect("each fragment consumed once"));
        }
        PlanNode::HashJoin { left, right, step: Some(step), est } => {
            let opts = join::JoinOpts { elide: (false, false), est: *est };
            (JoinAlgo::Hash, opts, left, right, *step)
        }
        PlanNode::MergeJoin { left, right, step, est, sort_elided } => {
            let opts = join::JoinOpts { elide: *sort_elided, est: *est };
            (JoinAlgo::SortMerge, opts, left, right, step.expect("fragment join has a step"))
        }
        PlanNode::NestedLoopJoin { left, right, step, est } => {
            let opts = join::JoinOpts { elide: (false, false), est: *est };
            (JoinAlgo::BlockNestedLoop, opts, left, right, step.expect("fragment join has a step"))
        }
        other => unreachable!("not a fragment-level node: {other:?}"),
    };
    let l = fold_joins(left, slots, ctx)?;
    let r = fold_joins(right, slots, ctx)?;
    ctx.set_scope(format!("join[{step}]."));
    let out = join::fragment_join(algo, &l, &r, opts, ctx);
    ctx.set_scope(String::new());
    out
}
