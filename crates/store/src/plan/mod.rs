//! The physical plan layer: a typed plan tree, the rewrite-pass
//! planner that lowers logical [`crate::ir::StoreJucq`]s into it, and
//! the executor driving a plan sequentially or in parallel.
//!
//! See `DESIGN.md` §4e for the pass ordering, `SharedScan` semantics
//! and plan-cache keying.

mod node;
mod planner;

pub(crate) mod exec;

pub use node::{Plan, PlanNode, SharedScanDef, SipFilterDef, TermNameResolver};
pub use planner::{collapsible_runs, CollapsibleRun, Planner};
