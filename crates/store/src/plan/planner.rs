//! Lowering `StoreJucq → Plan` through an ordered rewrite-pass pipeline.
//!
//! Passes run in a fixed order, each wrapped in a `jucq-obs` span and
//! reporting before/after node counts to the metrics registry:
//!
//! 1. **prune_empty** — drop union members containing a pattern with an
//!    empty extent (exact index cardinality); a fragment that loses all
//!    members proves the whole JUCQ empty (`∅ ⋈ X = ∅`).
//! 2. **dedup_members** — drop exact-duplicate members, then members
//!    subsumed by another member of the same fragment (same head terms,
//!    body pattern superset): reformulation stamps both out routinely.
//! 3. **factor_scans** — count how often each distinct [`StorePattern`]
//!    is scanned across all members of all fragments (under the INLJ
//!    strategy only each member's leaf atom is a scan; under the hash
//!    strategy every atom is); patterns scanned twice or more become
//!    [`SharedScanDef`]s computed once per query.
//! 4. **join_order** — greedy per-member atom ordering (cheapest exact
//!    extent first, then always a join-connected atom), baked into the
//!    plan instead of re-derived at execution time.
//! 5. **lower** — physical operator choice from the profile (INLJ chain
//!    vs. member hash joins; hash / sort-merge / block-nested-loop
//!    fragment joins), fragment join order (smallest estimate first,
//!    connected-first), the pipelined-fragment choice (largest
//!    estimate, §4.1), and cardinality estimates on every plan node.

use jucq_model::{FxHashMap, FxHashSet};

use crate::exec::join;
use crate::internal_cost::join_step_cost;
use crate::ir::{PatternTerm, StoreCq, StoreJucq, StorePattern, StoreUcq, VarId};
use crate::plan::node::{scan_order, Plan, PlanNode, SharedScanDef, SipFilterDef, ViewBindingDef};
use crate::profile::{EngineProfile, JoinAlgo};
use crate::stats::Statistics;
use crate::table::{Perm, RangePos, TripleTable};
use crate::views::{ViewCatalog, ViewSignature};

/// The O(members²) subsumption sweep is skipped beyond this union width
/// (exact-duplicate elimination still runs; it is linear).
const SUBSUMPTION_MEMBER_LIMIT: usize = 2_000;

/// Lowers logical [`StoreJucq`]s to physical [`Plan`]s for one store.
pub struct Planner<'a> {
    table: &'a TripleTable,
    stats: &'a Statistics,
    profile: &'a EngineProfile,
    views: Option<&'a ViewCatalog>,
}

/// One union member mid-rewrite: the CQ plus its exact per-atom extents
/// and (after the join-order pass) its scan/probe order.
struct DraftMember {
    cq: StoreCq,
    counts: Vec<usize>,
    order: Vec<usize>,
    /// Set by the range-collapse pass: this member stands in for a whole
    /// grid of members whose only differences were the constants at
    /// these atoms' ranged positions. At most one entry per atom.
    ranges: Vec<RangeAtom>,
}

/// One collapsed-interval atom: atom `atom`'s constant at the `ranged`
/// position is replaced by the raw-id interval `[lo, hi)`, which covers
/// exactly the `members` original constants — consecutive raw ids, or
/// runs of them separated by gaps whose extent the index proved empty,
/// so the interval matches no triple the original constants did not.
struct RangeAtom {
    atom: usize,
    ranged: RangePos,
    lo: u32,
    hi: u32,
    members: usize,
}

/// Fixpoint-collapse scratch state for one surviving union member.
struct Scratch {
    ranges: Vec<RangeAtom>,
    alive: bool,
}

/// One fragment mid-rewrite.
struct DraftFragment {
    head: Vec<VarId>,
    members: Vec<DraftMember>,
}

/// Logical node count of the draft (fragments + members + atoms), the
/// unit of the per-pass before/after metrics.
fn draft_nodes(draft: &[DraftFragment]) -> usize {
    draft.iter().map(|f| 1 + f.members.iter().map(|m| 1 + m.cq.patterns.len()).sum::<usize>()).sum()
}

/// First index of the minimum value (ties keep the earliest atom, the
/// same rule `Iterator::min_by_key` applies in the join-order pass).
fn cheapest_atom(counts: &[usize]) -> usize {
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c < counts[best] {
            best = i;
        }
    }
    best
}

/// One collapsible run over a union member list: the members at
/// `members` (indices into the input, ascending by the constant's raw
/// id) differ only in the constant at atom `atom`'s `pos` position, and
/// those constants are exactly the consecutive raw ids `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapsibleRun {
    /// Atom index within each member's pattern list.
    pub atom: usize,
    /// Which position of that atom holds the running constant.
    pub pos: RangePos,
    /// Inclusive lower raw id of the run.
    pub lo: u32,
    /// Exclusive upper raw id of the run.
    pub hi: u32,
    /// Indices of the collapsed members, ascending by raw id.
    pub members: Vec<usize>,
}

/// Find member runs collapsible into single range atoms: maximal groups
/// of ≥ 2 members that share head and body except for one constant — at
/// some atom's predicate or object position — whose raw ids are
/// consecutive. Greedy and non-overlapping (a member joins at most one
/// run), in the planner's deterministic candidate order. This is the
/// *first pass* of [`Planner::plan`]'s fixpoint collapse: the planner
/// performs at least these merges and usually more (later passes treat
/// already-collapsed intervals as mergeable values and bridge raw-id
/// gaps whose index extent is provably empty), so the result is a lower
/// bound. Public so the cost model can price a fragment's collapse
/// opportunity without lowering it.
pub fn collapsible_runs<'c>(members: impl IntoIterator<Item = &'c StoreCq>) -> Vec<CollapsibleRun> {
    let members: Vec<&StoreCq> = members.into_iter().collect();
    // Signature of a (member, slot) candidate: the head, the slot, and
    // the body with the slot's constant masked out. Two members share
    // a signature iff they differ only in that constant.
    type Sig = (Vec<PatternTerm>, usize, RangePos, Vec<StorePattern>);
    let mut groups: FxHashMap<Sig, Vec<(usize, u32)>> = FxHashMap::default();
    let mut order: Vec<Sig> = Vec::new();
    for (mi, cq) in members.iter().enumerate() {
        for (ai, pat) in cq.patterns.iter().enumerate() {
            for (pos, term) in [(RangePos::Predicate, pat.p), (RangePos::Object, pat.o)] {
                let PatternTerm::Const(id) = term else { continue };
                let mut masked = cq.patterns.clone();
                match pos {
                    RangePos::Predicate => masked[ai].p = PatternTerm::Var(VarId::MAX),
                    RangePos::Object => masked[ai].o = PatternTerm::Var(VarId::MAX),
                }
                let sig = (cq.head.clone(), ai, pos, masked);
                let entry = groups.entry(sig.clone()).or_default();
                if entry.is_empty() {
                    order.push(sig);
                }
                entry.push((mi, id.raw()));
            }
        }
    }
    let mut consumed = vec![false; members.len()];
    let mut runs = Vec::new();
    for sig in &order {
        let mut entries: Vec<(usize, u32)> =
            groups[sig].iter().copied().filter(|&(mi, _)| !consumed[mi]).collect();
        if entries.len() < 2 {
            continue;
        }
        entries.sort_unstable_by_key(|&(_, raw)| raw);
        let mut start = 0;
        while start < entries.len() {
            let mut end = start + 1;
            while end < entries.len() && entries[end].1 == entries[end - 1].1 + 1 {
                end += 1;
            }
            if end - start >= 2 {
                for &(mi, _) in &entries[start..end] {
                    consumed[mi] = true;
                }
                runs.push(CollapsibleRun {
                    atom: sig.1,
                    pos: sig.2,
                    lo: entries[start].1,
                    hi: entries[end - 1].1 + 1,
                    members: entries[start..end].iter().map(|&(mi, _)| mi).collect(),
                });
            }
            start = end;
        }
    }
    runs
}

/// `a ⊆ b` over sorted, deduplicated pattern vectors.
fn is_subset(a: &[StorePattern], b: &[StorePattern]) -> bool {
    let mut j = 0;
    for p in a {
        while j < b.len() && b[j] < *p {
            j += 1;
        }
        if j >= b.len() || b[j] != *p {
            return false;
        }
        j += 1;
    }
    true
}

impl<'a> Planner<'a> {
    /// Bind a planner to a store's table, statistics and profile.
    pub fn new(table: &'a TripleTable, stats: &'a Statistics, profile: &'a EngineProfile) -> Self {
        Planner { table, stats, profile, views: None }
    }

    /// Attach a materialized-view catalog: `lower` will match each
    /// fragment's *logical* (pre-rewrite) UCQ signature against it and
    /// wrap matched unions in [`PlanNode::ViewScan`]s. A `None` catalog
    /// or a profile with `view_scans` off plans exactly as before.
    pub fn with_views(mut self, views: Option<&'a ViewCatalog>) -> Self {
        self.views = views;
        self
    }

    /// Lower `q` through the full rewrite pipeline. Infallible:
    /// admission control (union-term limits) happens before planning,
    /// resource limits during execution.
    pub fn plan(&self, q: &StoreJucq) -> Plan {
        jucq_obs::span!("physical_planning");
        let mut draft: Vec<DraftFragment> = q
            .fragments
            .iter()
            .map(|f| DraftFragment {
                head: f.head.clone(),
                members: f
                    .cqs
                    .iter()
                    .map(|cq| DraftMember {
                        counts: cq.patterns.iter().map(|p| self.table.count(&p.bound())).collect(),
                        cq: cq.clone(),
                        order: Vec::new(),
                        ranges: Vec::new(),
                    })
                    .collect(),
            })
            .collect();

        self.prune_empty_members(&mut draft);
        self.dedup_members(&mut draft);
        let range_eligible = self.collapse_ranges(&mut draft);
        let shared = self.factor_common_scans(&draft);
        self.select_join_orders(&mut draft);
        self.lower(q, &draft, shared, range_eligible)
    }

    /// Pass 1: a member containing a zero-extent pattern can never
    /// produce a row — drop it. Fragments are never removed: a fragment
    /// left without members makes the whole plan constant-empty.
    fn prune_empty_members(&self, draft: &mut [DraftFragment]) {
        jucq_obs::span!("plan.prune_empty");
        let before = draft_nodes(draft);
        for frag in draft.iter_mut() {
            frag.members.retain(|m| !m.counts.contains(&0));
        }
        let after = draft_nodes(draft);
        jucq_obs::metrics::counter_add("planner.prune_empty.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.prune_empty.nodes_after", after as u64);
    }

    /// Pass 2: drop exact-duplicate members, then members subsumed by
    /// another member of the same fragment — same head term sequence and
    /// a body pattern set that is a superset of the other's (every
    /// valuation satisfying the superset body satisfies the subset body,
    /// so under set semantics the superset member contributes nothing).
    fn dedup_members(&self, draft: &mut [DraftFragment]) {
        jucq_obs::span!("plan.dedup_members");
        let before = draft_nodes(draft);
        for frag in draft.iter_mut() {
            let mut seen: FxHashSet<StoreCq> = FxHashSet::default();
            let mut kept: Vec<DraftMember> = Vec::with_capacity(frag.members.len());
            for m in std::mem::take(&mut frag.members) {
                if seen.insert(m.cq.clone()) {
                    kept.push(m);
                }
            }
            if kept.len() > 1 && kept.len() <= SUBSUMPTION_MEMBER_LIMIT {
                let sorted: Vec<Vec<StorePattern>> = kept
                    .iter()
                    .map(|m| {
                        let mut v = m.cq.patterns.clone();
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                let mut drop = vec![false; kept.len()];
                for a in 0..kept.len() {
                    for b in 0..kept.len() {
                        if a == b || kept[b].cq.head != kept[a].cq.head {
                            continue;
                        }
                        // Strict subset, or equal sets keeping the first.
                        if is_subset(&sorted[b], &sorted[a])
                            && (sorted[b].len() < sorted[a].len() || b < a)
                        {
                            drop[a] = true;
                            break;
                        }
                    }
                }
                let mut it = drop.iter();
                kept.retain(|_| !*it.next().expect("one flag per member"));
            }
            frag.members = kept;
        }
        let after = draft_nodes(draft);
        jucq_obs::metrics::counter_add("planner.dedup_members.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.dedup_members.nodes_after", after as u64);
    }

    /// Pass 2b: collapse union members that differ only in constants with
    /// contiguous raw ids into single members carrying [`RangeAtom`]
    /// intervals, iterated to a *fixpoint*:
    ///
    /// * every constant is a degenerate interval `[c, c+1)` and every
    ///   already-collapsed slot is its interval, so a second pass can
    ///   merge along another atom once a first pass made the members
    ///   textually equal (a k×m grid of members — a class subtree times a
    ///   property subtree — collapses to *one* member with two intervals);
    /// * two intervals also merge across a raw-id gap when the index
    ///   proves the gap empty for the member's atom template (a
    ///   zero-count `count_value_range` over the gap): ids in the gap
    ///   match no triple, so widening the interval over them adds no row.
    ///   Classes without direct instances no longer split a subtree run.
    ///
    /// The half-open intervals then match exactly the triples the
    /// collapsed constants did, so the rewrite is correct under any
    /// dictionary encoding; the hierarchy-aware encoding merely makes
    /// contiguous runs likely (a class subtree becomes one raw-id block).
    /// An atom carries at most one interval (a scan ranges over one
    /// component).
    ///
    /// Always *detects* eligibility (the returned count of fragments the
    /// fixpoint would shrink feeds telemetry); only *rewrites* when the
    /// profile's `range_scans` knob is on.
    fn collapse_ranges(&self, draft: &mut [DraftFragment]) -> usize {
        jucq_obs::span!("plan.range_collapse");
        let before = draft_nodes(draft);
        let apply = self.profile.range_scans;
        let mut eligible = 0usize;
        let mut collapsed = 0u64;
        for frag in draft.iter_mut() {
            let mut scratch: Vec<Scratch> =
                frag.members.iter().map(|_| Scratch { ranges: Vec::new(), alive: true }).collect();
            if !self.collapse_fixpoint(&frag.members, &mut scratch) {
                continue;
            }
            eligible += 1;
            if !apply {
                continue;
            }
            let orig_len = frag.members.len();
            let old = std::mem::take(&mut frag.members);
            let mut kept: Vec<DraftMember> = Vec::with_capacity(old.len());
            for (s, mut m) in scratch.into_iter().zip(old) {
                if !s.alive {
                    continue;
                }
                for r in &s.ranges {
                    let mut bound = m.cq.patterns[r.atom].bound();
                    match r.ranged {
                        RangePos::Predicate => bound[1] = None,
                        RangePos::Object => bound[2] = None,
                    }
                    m.counts[r.atom] = self.table.count_value_range(&bound, r.ranged, r.lo, r.hi);
                }
                m.ranges = s.ranges;
                kept.push(m);
            }
            collapsed += (orig_len - kept.len()) as u64;
            frag.members = kept;
        }
        let after = draft_nodes(draft);
        jucq_obs::metrics::counter_add("planner.range_collapse.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.range_collapse.nodes_after", after as u64);
        jucq_obs::metrics::counter_add("planner.range_collapse.members_collapsed", collapsed);
        eligible
    }

    /// Run the interval-merge passes over `scratch` until nothing merges;
    /// returns whether any merge happened. Each pass groups the alive
    /// members' candidate slots (constant or already-ranged predicate /
    /// object positions) by a signature masking the slot out of the body
    /// — head, slot coordinates, masked patterns, and the *other* slots'
    /// intervals — then merges every chain of ≥ 2 interval-adjacent (or
    /// provably-empty-gap-separated) entries into the lowest-id member.
    fn collapse_fixpoint(&self, members: &[DraftMember], scratch: &mut [Scratch]) -> bool {
        type Sig = (
            Vec<PatternTerm>,
            usize,
            RangePos,
            Vec<StorePattern>,
            Vec<(usize, RangePos, u32, u32)>,
        );
        fn mask(pats: &mut [StorePattern], atom: usize, pos: RangePos) {
            match pos {
                RangePos::Predicate => pats[atom].p = PatternTerm::Var(VarId::MAX),
                RangePos::Object => pats[atom].o = PatternTerm::Var(VarId::MAX),
            }
        }
        let mut merged_any = false;
        loop {
            let mut changed = false;
            // Entries per signature: (scratch index, lo, hi, constants in
            // the slot's interval so far).
            let mut groups: FxHashMap<Sig, Vec<(usize, u32, u32, usize)>> = FxHashMap::default();
            let mut order: Vec<Sig> = Vec::new();
            for (si, s) in scratch.iter().enumerate() {
                if !s.alive {
                    continue;
                }
                let cq = &members[si].cq;
                for (ai, pat) in cq.patterns.iter().enumerate() {
                    for pos in [RangePos::Predicate, RangePos::Object] {
                        let existing = s.ranges.iter().find(|r| r.atom == ai);
                        let (lo, hi, slot_members) = match existing {
                            Some(r) if r.ranged == pos => (r.lo, r.hi, r.members),
                            // One interval per atom: the other position of
                            // an already-ranged atom is not a candidate.
                            Some(_) => continue,
                            None => {
                                let term = match pos {
                                    RangePos::Predicate => pat.p,
                                    RangePos::Object => pat.o,
                                };
                                let PatternTerm::Const(id) = term else { continue };
                                (id.raw(), id.raw() + 1, 1)
                            }
                        };
                        let mut masked = cq.patterns.clone();
                        mask(&mut masked, ai, pos);
                        let mut others: Vec<(usize, RangePos, u32, u32)> = Vec::new();
                        for r in &s.ranges {
                            if r.atom == ai {
                                continue;
                            }
                            // Other ranged slots: mask the (arbitrary)
                            // template constant, carry the interval in the
                            // signature instead.
                            mask(&mut masked, r.atom, r.ranged);
                            others.push((r.atom, r.ranged, r.lo, r.hi));
                        }
                        others.sort_unstable();
                        let sig = (cq.head.clone(), ai, pos, masked, others);
                        let entry = groups.entry(sig.clone()).or_default();
                        if entry.is_empty() {
                            order.push(sig);
                        }
                        entry.push((si, lo, hi, slot_members));
                    }
                }
            }
            let mut consumed = vec![false; scratch.len()];
            for sig in &order {
                let (ai, pos) = (sig.1, sig.2);
                let mut entries: Vec<(usize, u32, u32, usize)> = groups[sig]
                    .iter()
                    .copied()
                    .filter(|&(si, ..)| scratch[si].alive && !consumed[si])
                    .collect();
                if entries.len() < 2 {
                    continue;
                }
                entries.sort_unstable_by_key(|&(_, lo, hi, _)| (lo, hi));
                let mut start = 0;
                while start < entries.len() {
                    let template = &members[entries[start].0].cq.patterns[ai];
                    let mut end = start + 1;
                    while end < entries.len() {
                        let prev_hi = entries[end - 1].2;
                        let next_lo = entries[end].1;
                        let joins = next_lo == prev_hi
                            || (next_lo > prev_hi
                                && self.gap_is_empty(template, pos, prev_hi, next_lo));
                        if !joins {
                            break;
                        }
                        end += 1;
                    }
                    if end - start >= 2 {
                        let keep = entries[start].0;
                        let (lo, hi) = (entries[start].1, entries[end - 1].2);
                        let total: usize = entries[start..end].iter().map(|e| e.3).sum();
                        for &(si, ..) in &entries[start + 1..end] {
                            scratch[si].alive = false;
                            consumed[si] = true;
                        }
                        consumed[keep] = true;
                        scratch[keep].ranges.retain(|r| r.atom != ai);
                        scratch[keep].ranges.push(RangeAtom {
                            atom: ai,
                            ranged: pos,
                            lo,
                            hi,
                            members: total,
                        });
                        changed = true;
                        merged_any = true;
                    }
                    start = end;
                }
            }
            if !changed {
                break;
            }
        }
        merged_any
    }

    /// Does the index hold *no* triple matching `pat`'s template with its
    /// `pos` component in `[lo, hi)`? Variables (and the ranged slot
    /// itself) relax to unbound, so a zero count is conservative: the gap
    /// is empty for every binding the member could produce.
    fn gap_is_empty(&self, pat: &StorePattern, pos: RangePos, lo: u32, hi: u32) -> bool {
        let mut bound = pat.bound();
        match pos {
            RangePos::Predicate => bound[1] = None,
            RangePos::Object => bound[2] = None,
        }
        self.table.count_value_range(&bound, pos, lo, hi) == 0
    }

    /// Pass 3: factor the scans several members share. A scan position
    /// is each member's leaf atom under the INLJ strategy (later atoms
    /// are index probes, not extent scans) and every atom under the hash
    /// strategy; the leaf prediction uses the same first-minimum rule as
    /// the join-order pass, so the factored set matches the lowered plan
    /// exactly.
    fn factor_common_scans(&self, draft: &[DraftFragment]) -> Vec<SharedScanDef> {
        jucq_obs::span!("plan.factor_scans");
        let before = draft_nodes(draft);
        let mut defs: Vec<SharedScanDef> = Vec::new();
        if self.profile.share_scans {
            let mut uses: FxHashMap<StorePattern, usize> = FxHashMap::default();
            let mut order: Vec<StorePattern> = Vec::new();
            let mut count_use = |p: StorePattern| {
                let n = uses.entry(p).or_insert(0);
                if *n == 0 {
                    order.push(p);
                }
                *n += 1;
            };
            for frag in draft {
                for m in &frag.members {
                    if m.cq.patterns.is_empty() {
                        continue;
                    }
                    if self.profile.index_nested_loop_cq {
                        // A ranged leaf is a RangeScan (never shareable
                        // as a plain extent).
                        let leaf = cheapest_atom(&m.counts);
                        if !m.ranges.iter().any(|r| r.atom == leaf) {
                            count_use(m.cq.patterns[leaf]);
                        }
                    } else {
                        for (i, p) in m.cq.patterns.iter().enumerate() {
                            if m.ranges.iter().any(|r| r.atom == i) {
                                continue;
                            }
                            count_use(*p);
                        }
                    }
                }
            }
            defs = order
                .into_iter()
                .filter(|p| uses[p] >= 2)
                .map(|p| SharedScanDef {
                    pattern: p,
                    uses: uses[&p],
                    est: Some(self.table.count(&p.bound()) as f64),
                })
                .collect();
        }
        let saved: usize = defs.iter().map(|d| d.uses - 1).sum();
        jucq_obs::metrics::counter_add("planner.factor_scans.nodes_before", before as u64);
        jucq_obs::metrics::counter_add(
            "planner.factor_scans.nodes_after",
            (before + defs.len()) as u64,
        );
        jucq_obs::metrics::counter_add("planner.factor_scans.shared_defs", defs.len() as u64);
        jucq_obs::metrics::counter_add("planner.factor_scans.scan_uses_saved", saved as u64);
        defs
    }

    /// Pass 4: greedy per-member atom order — cheapest exact extent
    /// first, then repeatedly the connected atom (sharing a variable
    /// with the bound set) of smallest extent, falling back to the
    /// globally smallest remaining atom for disconnected bodies.
    fn select_join_orders(&self, draft: &mut [DraftFragment]) {
        jucq_obs::span!("plan.join_order");
        let before = draft_nodes(draft);
        for frag in draft.iter_mut() {
            for m in &mut frag.members {
                // Ranged atoms need no special seeding: an interval can
                // be the leaf (RangeScan) *or* probed per binding row
                // (RangeProbe), so the cheapest atom leads as usual.
                m.order = atom_order(&m.cq.patterns, &m.counts);
            }
        }
        jucq_obs::metrics::counter_add("planner.join_order.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.join_order.nodes_after", before as u64);
    }

    /// Pass 5: physical lowering — see the module docs for the choices
    /// made here.
    fn lower(
        &self,
        q: &StoreJucq,
        draft: &[DraftFragment],
        shared: Vec<SharedScanDef>,
        range_eligible: usize,
    ) -> Plan {
        jucq_obs::span!("plan.lower");
        let before = draft_nodes(draft) + shared.len();
        let range_scans =
            draft.iter().flat_map(|f| &f.members).map(|m| m.ranges.len()).sum::<usize>();

        if draft.is_empty() || draft.iter().any(|f| f.members.is_empty()) {
            let plan = Plan {
                root: PlanNode::Empty { head: q.head.clone() },
                shared: Vec::new(),
                head: q.head.clone(),
                pipelined: None,
                estimates: Vec::new(),
                sip: Vec::new(),
                range_eligible,
                range_scans: 0,
                views: Vec::new(),
            };
            jucq_obs::metrics::counter_add("planner.lower.nodes_before", before as u64);
            jucq_obs::metrics::counter_add("planner.lower.nodes_after", plan.node_count() as u64);
            return plan;
        }

        let shared_ix: FxHashMap<StorePattern, usize> =
            shared.iter().enumerate().map(|(i, d)| (d.pattern, i)).collect();
        let mut estimates: Vec<(String, f64)> = Vec::new();
        for (i, def) in shared.iter().enumerate() {
            estimates.push((format!("shared_scan[{i}]"), def.est.unwrap_or(0.0)));
        }

        // Estimates over the *rewritten* members (what actually runs).
        let pruned_ucqs: Vec<StoreUcq> = draft
            .iter()
            .map(|f| {
                StoreUcq::new(f.members.iter().map(|m| m.cq.clone()).collect(), f.head.clone())
            })
            .collect();
        let frag_est: Vec<f64> =
            pruned_ucqs.iter().map(|u| self.stats.est_ucq(self.table, u)).collect();
        for (i, est) in frag_est.iter().enumerate() {
            estimates.push((format!("fragment[{i}].union"), *est));
        }

        // Interesting orders: the fragment join order depends only on
        // estimates and heads, so the join key each fragment will be
        // merged on is known *before* member lowering. Lowering passes
        // it down so leaf scans can pick the permutation index whose
        // key order feeds a sort-elided merge join.
        let desired = if self.profile.order_aware {
            interesting_orders(draft, &frag_est)
        } else {
            vec![Vec::new(); draft.len()]
        };

        let mut union_nodes: Vec<Option<PlanNode>> = draft
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let members: Vec<PlanNode> = f
                    .members
                    .iter()
                    .map(|m| self.lower_member(m, &f.head, &shared_ix, &desired[i]))
                    .collect();
                Some(PlanNode::HashUnion {
                    idx: i,
                    head: f.head.clone(),
                    members,
                    est: Some(frag_est[i]),
                })
            })
            .collect();

        // View matching: a fragment whose *logical* (pre-rewrite) UCQ —
        // the same shape the materializer keyed its entry by — has a
        // current-epoch catalog entry is wrapped in a `ViewScan` over
        // its lowered union. The signature travels in the plan; the
        // rows never do (resolution is epoch-exact at evaluation time).
        let mut views: Vec<ViewBindingDef> = Vec::new();
        if let Some(catalog) = self.views.filter(|_| self.profile.view_scans) {
            for (i, slot) in union_nodes.iter_mut().enumerate() {
                let signature = ViewSignature::of(&q.fragments[i]);
                if let Some(tuples) = catalog.contains_current(&signature) {
                    let fallback = slot.take().expect("union lowered exactly once");
                    estimates.push((format!("fragment[{i}].view_scan"), tuples as f64));
                    *slot = Some(PlanNode::ViewScan {
                        idx: i,
                        head: draft[i].head.clone(),
                        view: views.len(),
                        est: Some(tuples as f64),
                        fallback: Box::new(fallback),
                    });
                    views.push(ViewBindingDef { signature, tuples });
                }
            }
        }

        // §4.1: the largest-result fragment is the one pipelined.
        let pipelined = if draft.len() > 1 {
            frag_est.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i)
        } else {
            None
        };

        // Fragment join order: smallest estimate first, then always a
        // fragment connected (sharing a head variable) to the schema
        // accumulated so far; disconnected inputs fall back to the
        // smallest remaining (cartesian product).
        let algo = self.profile.fragment_join;
        let mut remaining: Vec<usize> = (0..draft.len()).collect();
        remaining.sort_by(|&a, &b| frag_est[a].total_cmp(&frag_est[b]));
        let first = remaining.remove(0);
        let mut acc_vars: Vec<VarId> = draft[first].head.clone();
        let mut tree = union_nodes[first].take().expect("each fragment lowered once");
        let mut acc_est = frag_est[first];
        let mut joined: Vec<usize> = vec![first];
        let mut sip: Vec<SipFilterDef> = Vec::new();
        let mut step = 0usize;
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&i| draft[i].head.iter().any(|v| acc_vars.contains(v)))
                .unwrap_or(0);
            let next = remaining.remove(pos);
            joined.push(next);
            if self.profile.sip_filters {
                // The filter keys are exactly the join keys of this
                // step: head variables of the incoming fragment already
                // bound by the accumulated schema. A disconnected
                // fragment (cartesian product) gets no filter.
                let keys: Vec<VarId> =
                    draft[next].head.iter().copied().filter(|v| acc_vars.contains(v)).collect();
                if !keys.is_empty() {
                    sip.push(SipFilterDef { step, target: next, keys });
                }
            }
            for &v in &draft[next].head {
                if !acc_vars.contains(&v) {
                    acc_vars.push(v);
                }
            }
            // Estimate the JUCQ over exactly the fragments joined so far
            // — the same node the join output materializes.
            let sub = StoreJucq::new(
                joined.iter().map(|&i| pruned_ucqs[i].clone()).collect(),
                q.head.clone(),
            );
            let est = self.stats.est_jucq(self.table, &sub);
            let right = union_nodes[next].take().expect("each fragment lowered once");
            // Order-aware step choice: when the inputs' order properties
            // make a (possibly sort-elided) merge cheaper than the
            // profile's algorithm on this step's input estimates, lower
            // to a merge join — chosen by cost, not forced.
            let (step_algo, elided) = if self.profile.order_aware {
                choose_join_algo(algo, &tree, &right, acc_est, frag_est[next])
            } else {
                (algo, (false, false))
            };
            estimates.push((format!("join[{step}].{}", join::op_name(step_algo)), est));
            tree = make_join(step_algo, tree, right, step, est, elided);
            acc_est = est;
            step += 1;
        }

        let final_est =
            self.stats.est_jucq(self.table, &StoreJucq::new(pruned_ucqs, q.head.clone()));
        estimates.push(("dedup".to_string(), final_est));
        let root = PlanNode::Dedup {
            input: Box::new(PlanNode::Project {
                input: Box::new(tree),
                head: q.head.iter().map(|&v| PatternTerm::Var(v)).collect(),
                out_vars: q.head.clone(),
            }),
            est: Some(final_est),
        };
        let plan = Plan {
            root,
            shared,
            head: q.head.clone(),
            pipelined,
            estimates,
            sip,
            range_eligible,
            range_scans,
            views,
        };
        jucq_obs::metrics::counter_add("planner.lower.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.lower.nodes_after", plan.node_count() as u64);
        plan
    }

    /// Lower one union member to its access chain: a leaf scan (shared
    /// or private, filtered when the pattern repeats a variable) extended
    /// by INLJ probes, or member-internal hash joins of scanned extents,
    /// topped by the head projection.
    fn lower_member(
        &self,
        m: &DraftMember,
        frag_head: &[VarId],
        shared_ix: &FxHashMap<StorePattern, usize>,
        desired: &[VarId],
    ) -> PlanNode {
        if m.cq.patterns.is_empty() {
            return PlanNode::TrueRow { out_vars: frag_head.to_vec() };
        }
        let leaf = |pi: usize| -> PlanNode {
            let p = m.cq.patterns[pi];
            if let Some(r) = m.ranges.iter().find(|r| r.atom == pi) {
                let scan = PlanNode::RangeScan {
                    pattern: p,
                    ranged: r.ranged,
                    lo: r.lo,
                    hi: r.hi,
                    members: r.members,
                    est: Some(m.counts[pi] as f64),
                };
                return if p.has_repeated_var() {
                    PlanNode::Filter { pattern: p, input: Box::new(scan) }
                } else {
                    scan
                };
            }
            match shared_ix.get(&p) {
                Some(&id) => {
                    PlanNode::SharedScan { id, pattern: p, est: Some(m.counts[pi] as f64) }
                }
                None => {
                    let perm = if self.profile.order_aware { pick_perm(&p, desired) } else { None };
                    let scan =
                        PlanNode::IndexScan { pattern: p, perm, est: Some(m.counts[pi] as f64) };
                    if p.has_repeated_var() {
                        PlanNode::Filter { pattern: p, input: Box::new(scan) }
                    } else {
                        scan
                    }
                }
            }
        };
        let mut node = leaf(m.order[0]);
        for &pi in &m.order[1..] {
            node = if self.profile.index_nested_loop_cq {
                if let Some(r) = m.ranges.iter().find(|r| r.atom == pi) {
                    PlanNode::RangeProbe {
                        input: Box::new(node),
                        pattern: m.cq.patterns[pi],
                        ranged: r.ranged,
                        lo: r.lo,
                        hi: r.hi,
                        members: r.members,
                    }
                } else {
                    PlanNode::Inlj { input: Box::new(node), pattern: m.cq.patterns[pi] }
                }
            } else {
                PlanNode::HashJoin {
                    left: Box::new(node),
                    right: Box::new(leaf(pi)),
                    step: None,
                    est: None,
                }
            };
        }
        PlanNode::Project {
            input: Box::new(node),
            head: m.cq.head.clone(),
            out_vars: frag_head.to_vec(),
        }
    }
}

/// Greedy atom ordering over precomputed exact extents: start from the
/// smallest atom; repeatedly append the connected atom (sharing a
/// variable with the bound set) of smallest extent; fall back to the
/// globally smallest remaining atom when the body is disconnected.
fn atom_order(patterns: &[StorePattern], counts: &[usize]) -> Vec<usize> {
    if patterns.is_empty() {
        return Vec::new();
    }
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    let mut bound_vars: Vec<VarId> = Vec::new();

    let first = remaining.iter().copied().min_by_key(|&i| counts[i]).expect("non-empty body");
    order.push(first);
    bound_vars.extend(patterns[first].variables());
    remaining.retain(|&i| i != first);

    while !remaining.is_empty() {
        let connected = remaining
            .iter()
            .copied()
            .filter(|&i| patterns[i].variables().iter().any(|v| bound_vars.contains(v)))
            .min_by_key(|&i| counts[i]);
        let next = connected.unwrap_or_else(|| {
            remaining.iter().copied().min_by_key(|&i| counts[i]).expect("remaining non-empty")
        });
        order.push(next);
        for v in patterns[next].variables() {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        remaining.retain(|&i| i != next);
    }
    order
}

/// Build the fragment-level join node matching `algo`. `elided` marks
/// which merge-join inputs already arrive sorted on the join key (only
/// meaningful for [`JoinAlgo::SortMerge`]).
fn make_join(
    algo: JoinAlgo,
    left: PlanNode,
    right: PlanNode,
    step: usize,
    est: f64,
    elided: (bool, bool),
) -> PlanNode {
    let (left, right, step, est) = (Box::new(left), Box::new(right), Some(step), Some(est));
    match algo {
        JoinAlgo::Hash => PlanNode::HashJoin { left, right, step, est },
        JoinAlgo::SortMerge => PlanNode::MergeJoin { left, right, step, est, sort_elided: elided },
        JoinAlgo::BlockNestedLoop => PlanNode::NestedLoopJoin { left, right, step, est },
    }
}

/// The interesting-orders pass: replay the fragment join order (which
/// depends only on estimates and heads — the same greedy loop `lower`
/// runs) and record, per fragment, the join-key sequence it will be
/// merged on. The base fragment inherits the first step's key (it is
/// the left side of that merge); every other fragment gets the key of
/// the step where it joins. Fragments joined by cartesian product keep
/// an empty desired order.
fn interesting_orders(draft: &[DraftFragment], frag_est: &[f64]) -> Vec<Vec<VarId>> {
    let mut desired: Vec<Vec<VarId>> = vec![Vec::new(); draft.len()];
    if draft.len() < 2 {
        return desired;
    }
    let mut remaining: Vec<usize> = (0..draft.len()).collect();
    remaining.sort_by(|&a, &b| frag_est[a].total_cmp(&frag_est[b]));
    let first = remaining.remove(0);
    let mut acc_vars: Vec<VarId> = draft[first].head.clone();
    let mut step = 0usize;
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|&i| draft[i].head.iter().any(|v| acc_vars.contains(v)))
            .unwrap_or(0);
        let next = remaining.remove(pos);
        // The join key in accumulated-schema order — exactly what
        // `PlanNode::join_key` will compute for this step.
        let key: Vec<VarId> =
            acc_vars.iter().copied().filter(|v| draft[next].head.contains(v)).collect();
        desired[next] = key.clone();
        if step == 0 {
            desired[first] = key;
        }
        for &v in &draft[next].head {
            if !acc_vars.contains(&v) {
                acc_vars.push(v);
            }
        }
        step += 1;
    }
    desired
}

/// Pick the permutation index for a leaf scan of `p`: among every
/// candidate whose bound prefix covers the pattern's constants, the one
/// whose output order matches the longest prefix of `desired` (the join
/// key the planner wants this scan sorted on). `None` keeps the default
/// bound-prefix choice — candidates are tried in declaration order with
/// the default first, so a tie never deviates from it.
fn pick_perm(p: &StorePattern, desired: &[VarId]) -> Option<Perm> {
    if desired.is_empty() {
        return None;
    }
    let bound = p.bound();
    let default = Perm::for_bound(&bound);
    let score = |perm: Perm| -> usize {
        scan_order(p, perm).iter().zip(desired).take_while(|(a, b)| a == b).count()
    };
    let mut best = default;
    let mut best_score = score(default);
    for perm in Perm::candidates_for_bound(&bound) {
        let s = score(perm);
        if s > best_score {
            best = perm;
            best_score = s;
        }
    }
    (best != default).then_some(best)
}

/// Order-aware join-step choice: compute the step's join key and which
/// inputs already arrive sorted on it, then price the profile's
/// algorithm against the (possibly sort-elided) merge on the inputs'
/// estimated sizes. Merge wins only when strictly cheaper — or when the
/// profile forces it anyway, in which case the elision flags are a free
/// improvement.
fn choose_join_algo(
    profile_algo: JoinAlgo,
    left: &PlanNode,
    right: &PlanNode,
    l_est: f64,
    r_est: f64,
) -> (JoinAlgo, (bool, bool)) {
    if matches!(profile_algo, JoinAlgo::BlockNestedLoop) {
        // The MySQL-like profile's quadratic join is a modeled weakness
        // of that engine, not a cost-model oversight — don't rescue it.
        return (profile_algo, (false, false));
    }
    let key = PlanNode::join_key(left, right);
    if key.is_empty() {
        // Cartesian product: a merge degenerates and order buys nothing.
        return (profile_algo, (false, false));
    }
    let elide = (left.order().starts_with(&key), right.order().starts_with(&key));
    if matches!(profile_algo, JoinAlgo::SortMerge) {
        return (JoinAlgo::SortMerge, elide);
    }
    let base = join_step_cost(profile_algo, l_est, r_est, (false, false));
    let merge = join_step_cost(JoinAlgo::SortMerge, l_est, r_est, elide);
    if merge < base {
        (JoinAlgo::SortMerge, elide)
    } else {
        (profile_algo, (false, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn table() -> TripleTable {
        TripleTable::build(&[
            t(1, 10, 2),
            t(2, 10, 3),
            t(3, 10, 1),
            t(1, 11, 100),
            t(2, 11, 101),
            t(4, 10, 4),
        ])
    }

    fn plan_of(q: &StoreJucq, profile: &EngineProfile) -> Plan {
        let table = table();
        let stats = Statistics::build(&table);
        Planner::new(&table, &stats, profile).plan(q)
    }

    fn one_pattern_member(p: StorePattern, head: Vec<VarId>) -> StoreCq {
        StoreCq::with_var_head(vec![p], head)
    }

    #[test]
    fn order_starts_from_cheapest_atom() {
        let patterns = vec![
            StorePattern::new(v(0), c(10), v(1)),   // 4 matches
            StorePattern::new(v(0), c(11), c(100)), // 1 match
        ];
        let counts = vec![4, 1];
        let order = atom_order(&patterns, &counts);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn order_prefers_connected_atoms() {
        // The connected atom (?0 10 ?1, 4 matches) beats the cheaper
        // but disconnected (?2 11 101, 1 match): connectivity trumps
        // extent size once a variable is bound.
        let patterns = vec![
            StorePattern::new(v(0), c(11), c(100)), // 1 match, binds ?0
            StorePattern::new(v(0), c(10), v(1)),   // 4 matches, connected
            StorePattern::new(v(2), c(11), c(101)), // 1 match, disconnected
        ];
        let counts = vec![1, 4, 1];
        let order = atom_order(&patterns, &counts);
        assert_eq!(order, vec![0, 1, 2], "connected beats cheaper disconnected");
    }

    #[test]
    fn empty_extent_member_is_pruned_to_const_empty_plan() {
        let frag = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(99), v(1)), vec![0])],
            vec![0],
        );
        let plan = plan_of(&StoreJucq::new(vec![frag], vec![0]), &EngineProfile::pg_like());
        assert!(plan.is_const_empty());
        assert!(plan.estimates.is_empty());
    }

    #[test]
    fn duplicate_and_subsumed_members_are_dropped() {
        let narrow = one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![0, 1]);
        let superset = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), c(100))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![narrow.clone(), narrow.clone(), superset], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 1, "duplicate and subsumed members dropped");
    }

    #[test]
    fn subsumption_requires_equal_heads() {
        let a = one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![0, 1]);
        // Same body superset but a constant head: different output.
        let b = StoreCq::new(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), c(100))],
            vec![PatternTerm::Var(0), PatternTerm::Const(id(7))],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 2, "different heads are never subsumed");
    }

    #[test]
    fn common_leaf_scans_are_factored() {
        // Two members whose cheapest atom is the same pattern.
        let shared_leaf = StorePattern::new(v(0), c(11), c(100)); // 1 match
        let a = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let b = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        assert_eq!(plan.shared.len(), 1);
        assert_eq!(plan.shared[0].pattern, shared_leaf);
        assert_eq!(plan.shared[0].uses, 2);
        assert!(plan.estimates.iter().any(|(l, _)| l == "shared_scan[0]"));
    }

    #[test]
    fn scan_sharing_can_be_disabled() {
        let shared_leaf = StorePattern::new(v(0), c(11), c(100));
        let a = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let b = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let profile = EngineProfile::pg_like().with_scan_sharing(false);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &profile);
        assert!(plan.shared.is_empty());
    }

    #[test]
    fn hash_strategy_factors_all_scan_positions() {
        // Neither member's pattern set contains the other's, so both
        // survive the subsumption pass and both scan `pat`.
        let pat = StorePattern::new(v(0), c(10), v(1));
        let a = StoreCq::with_var_head(vec![pat, StorePattern::new(v(0), c(11), v(3))], vec![0, 1]);
        let b = StoreCq::with_var_head(vec![pat, StorePattern::new(v(1), c(11), v(2))], vec![0, 1]);
        let mut profile = EngineProfile::pg_like();
        profile.index_nested_loop_cq = false;
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &profile);
        assert_eq!(plan.shared.len(), 1, "(?0 #u10 ?1) scanned by both members");
        // Member b's plan contains a member-internal hash join.
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        let has_member_join = members.iter().any(|m| {
            matches!(
                m,
                PlanNode::Project { input, .. }
                    if matches!(**input, PlanNode::HashJoin { step: None, .. })
            )
        });
        assert!(has_member_join, "hash strategy lowers member joins");
    }

    #[test]
    fn fragment_join_algo_follows_profile() {
        let fa = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![0, 1])],
            vec![0, 1],
        );
        let fb = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(11), v(2)), vec![0, 2])],
            vec![0, 2],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1, 2]);
        let hash = plan_of(&q, &EngineProfile::pg_like().with_order_aware(false));
        let bnl = plan_of(&q, &EngineProfile::mysql_like());
        let top_join = |p: &Plan| match &p.root {
            PlanNode::Dedup { input, .. } => match &**input {
                PlanNode::Project { input, .. } => (**input).clone(),
                other => other.clone(),
            },
            other => other.clone(),
        };
        assert!(matches!(top_join(&hash), PlanNode::HashJoin { step: Some(0), .. }));
        // The MySQL-like profile's weak join is never rescued by the
        // order-aware pass, even with the knob on.
        assert!(matches!(top_join(&bnl), PlanNode::NestedLoopJoin { step: Some(0), .. }));
        assert!(hash.pipelined.is_some());
        assert!(hash.estimates.iter().any(|(l, _)| l == "join[0].hash_join"));
        assert!(bnl.estimates.iter().any(|(l, _)| l == "join[0].block_nested_loop_join"));
    }

    #[test]
    fn order_aware_planner_elides_merge_sorts_by_cost() {
        // Two single-member fragments joining on ?0: both leaf scans can
        // emit in ?0-first order, so the fully elided merge undercuts
        // the hash join and wins on cost despite the hash-join profile.
        let fa = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![0, 1])],
            vec![0, 1],
        );
        let fb = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(11), v(2)), vec![0, 2])],
            vec![0, 2],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1, 2]);
        let plan = plan_of(&q, &EngineProfile::pg_like());
        let top_join = |p: &Plan| match &p.root {
            PlanNode::Dedup { input, .. } => match &**input {
                PlanNode::Project { input, .. } => (**input).clone(),
                other => other.clone(),
            },
            other => other.clone(),
        };
        let join = top_join(&plan);
        assert!(
            matches!(join, PlanNode::MergeJoin { step: Some(0), sort_elided: (true, true), .. }),
            "{join:?}"
        );
        assert!(plan.estimates.iter().any(|(l, _)| l == "join[0].sort_merge_join"));
        // The chosen merge is genuinely ordered: both inputs' order
        // properties start with the join key.
        if let PlanNode::MergeJoin { left, right, .. } = &join {
            let key = PlanNode::join_key(left, right);
            assert!(!key.is_empty());
            assert!(left.order().starts_with(&key));
            assert!(right.order().starts_with(&key));
        }
    }

    #[test]
    fn interesting_orders_steer_leaf_permutation_choice() {
        // Fragment heads join on ?1 — the *object* of fragment a's
        // pattern. The default perm for a p-bound pattern (Pso) emits in
        // subject order; the order-aware planner must flip that leaf to
        // an object-first permutation so the merge key leads.
        let fa = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![1])],
            vec![1],
        );
        let fb = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(1), c(11), v(2)), vec![1, 2])],
            vec![1, 2],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![1, 2]);
        let plan = plan_of(&q, &EngineProfile::pg_like());
        let mut saw_pos = false;
        for u in plan.unions() {
            let Some((_, head, members)) = u.as_union() else { continue };
            if head != [1] {
                continue;
            }
            for m in members {
                if let PlanNode::Project { input, .. } = m {
                    if let PlanNode::IndexScan { perm, .. } = &**input {
                        assert_eq!(*perm, Some(Perm::Pos), "object-first perm");
                        saw_pos = true;
                    }
                }
            }
        }
        assert!(saw_pos, "fragment a's leaf scan was lowered with a perm override");
    }

    #[test]
    fn repeated_var_scan_gets_a_filter_node() {
        let frag = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(10), v(0)), vec![0])],
            vec![0],
        );
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert!(matches!(
            &members[0],
            PlanNode::Project { input, .. } if matches!(**input, PlanNode::Filter { .. })
        ));
    }

    #[test]
    fn consecutive_object_constants_collapse_into_a_range_scan() {
        // Members (?0 #u10 #uC) for C ∈ {1, 2, 3}: same head, same shape,
        // consecutive object ids ⇒ one RangeScan o∈[1, 4).
        let members: Vec<StoreCq> = [1u32, 2, 3]
            .iter()
            .map(|&o| one_pattern_member(StorePattern::new(v(0), c(10), c(o)), vec![0]))
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        assert_eq!(plan.range_eligible, 1);
        assert_eq!(plan.range_scans, 1);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 1, "three members collapsed into one");
        match &members[0] {
            PlanNode::Project { input, .. } => match &**input {
                PlanNode::RangeScan { ranged, lo, hi, members, .. } => {
                    assert_eq!(*ranged, crate::table::RangePos::Object);
                    assert_eq!((*lo, *hi), (1, 4));
                    assert_eq!(*members, 3);
                }
                other => panic!("expected RangeScan leaf, got {other:?}"),
            },
            other => panic!("expected Project member, got {other:?}"),
        }
    }

    #[test]
    fn non_consecutive_constants_do_not_collapse() {
        // Objects 1 and 3 are not adjacent raw ids: no run, no rewrite.
        let members: Vec<StoreCq> = [1u32, 3]
            .iter()
            .map(|&o| one_pattern_member(StorePattern::new(v(0), c(10), c(o)), vec![0]))
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        assert_eq!(plan.range_eligible, 0);
        assert_eq!(plan.range_scans, 0);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn range_knob_off_keeps_the_union_but_reports_eligibility() {
        let members: Vec<StoreCq> = [1u32, 2, 3]
            .iter()
            .map(|&o| one_pattern_member(StorePattern::new(v(0), c(10), c(o)), vec![0]))
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let profile = EngineProfile::pg_like().with_range_scans(false);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &profile);
        assert_eq!(plan.range_eligible, 1, "eligibility is detected even when off");
        assert_eq!(plan.range_scans, 0);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 3, "knob off: plain UCQ member per constant");
    }

    #[test]
    fn consecutive_predicate_constants_collapse_in_predicate_position() {
        // Members (?0 #uP ?1) for P ∈ {10, 11}: consecutive predicates.
        let members: Vec<StoreCq> = [10u32, 11]
            .iter()
            .map(|&p| one_pattern_member(StorePattern::new(v(0), c(p), v(1)), vec![0, 1]))
            .collect();
        let frag = StoreUcq::new(members, vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        assert_eq!(plan.range_scans, 1);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        match &members[0] {
            PlanNode::Project { input, .. } => match &**input {
                PlanNode::RangeScan { ranged, lo, hi, .. } => {
                    assert_eq!(*ranged, crate::table::RangePos::Predicate);
                    assert_eq!((*lo, *hi), (10, 12));
                }
                other => panic!("expected RangeScan leaf, got {other:?}"),
            },
            other => panic!("expected Project member, got {other:?}"),
        }
    }

    #[test]
    fn ranged_atoms_off_the_leaf_become_range_probes() {
        // Two-atom members differing in the first atom's object const:
        // the second atom's 1-row extent leads, and the collapsed
        // interval is probed per binding row instead of being pinned at
        // the leaf (the old behavior, which conserved all probe work).
        let members: Vec<StoreCq> = [2u32, 3]
            .iter()
            .map(|&o| {
                StoreCq::with_var_head(
                    vec![
                        StorePattern::new(v(0), c(10), c(o)),
                        StorePattern::new(v(0), c(11), c(100)), // 1 match
                    ],
                    vec![0],
                )
            })
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        assert_eq!(plan.range_scans, 1);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 1);
        match &members[0] {
            PlanNode::Project { input, .. } => match &**input {
                PlanNode::RangeProbe { input, ranged, lo, hi, members, .. } => {
                    assert_eq!(*ranged, crate::table::RangePos::Object);
                    assert_eq!((*lo, *hi), (2, 4));
                    assert_eq!(*members, 2);
                    assert!(
                        matches!(**input, PlanNode::IndexScan { .. }),
                        "the selective atom stays the leaf"
                    );
                }
                other => panic!("expected RangeProbe over IndexScan, got {other:?}"),
            },
            other => panic!("expected Project member, got {other:?}"),
        }
    }

    #[test]
    fn single_atom_grids_collapse_one_slot_per_atom() {
        // Members (?0 #uP #uO) for P ∈ {10, 11}, O ∈ {2, 3}: the
        // predicate runs merge (one per object), and since an atom
        // carries at most one interval the object slot of the merged
        // atoms stays constant — 4 members become 2, each p∈[10, 12).
        let table = TripleTable::build(&[t(1, 10, 2), t(2, 10, 3), t(3, 11, 2), t(4, 11, 3)]);
        let members: Vec<StoreCq> = [(10u32, 2u32), (10, 3), (11, 2), (11, 3)]
            .iter()
            .map(|&(p, o)| one_pattern_member(StorePattern::new(v(0), c(p), c(o)), vec![0]))
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let q = StoreJucq::from_ucq(frag);
        let stats = Statistics::build(&table);
        let profile = EngineProfile::pg_like();
        let plan = Planner::new(&table, &stats, &profile).plan(&q);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 2, "one member per object, predicates collapsed");
        assert_eq!(plan.range_scans, 2);
    }

    #[test]
    fn fixpoint_collapses_a_grid_across_two_atoms() {
        // Q23's shape: (?0 #uP #u100) ⋈ (?0 #u11 #uC) for P ∈ {10, 11}...
        // predicates here must not overlap the type predicate, so use
        // P ∈ {10, 11} on atom 0 and objects C ∈ {100, 101} on a second
        // atom with fixed predicate. 2×2 = 4 members fix down to ONE
        // member with an interval on each atom.
        let table = TripleTable::build(&[t(1, 10, 5), t(2, 11, 5), t(1, 12, 100), t(2, 12, 101)]);
        let members: Vec<StoreCq> = [(10u32, 100u32), (10, 101), (11, 100), (11, 101)]
            .iter()
            .map(|&(p, o)| {
                StoreCq::with_var_head(
                    vec![StorePattern::new(v(0), c(p), c(5)), StorePattern::new(v(0), c(12), c(o))],
                    vec![0],
                )
            })
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let q = StoreJucq::from_ucq(frag);
        let stats = Statistics::build(&table);
        let profile = EngineProfile::pg_like();
        let plan = Planner::new(&table, &stats, &profile).plan(&q);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 1, "2x2 grid fixes down to one member");
        assert_eq!(plan.range_scans, 2, "one interval per atom");
    }

    #[test]
    fn empty_gaps_between_interval_runs_are_bridged() {
        // Objects 5 and 7 are not adjacent, but no triple matches
        // (?s #u10 #u6): the gap is provably empty, so the interval
        // widens over it — o∈[5, 8) — without adding a row.
        let table = TripleTable::build(&[t(1, 10, 5), t(2, 10, 7), t(3, 11, 6)]);
        let members: Vec<StoreCq> = [5u32, 7]
            .iter()
            .map(|&o| one_pattern_member(StorePattern::new(v(0), c(10), c(o)), vec![0]))
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let q = StoreJucq::from_ucq(frag);
        let stats = Statistics::build(&table);
        let profile = EngineProfile::pg_like();
        let plan = Planner::new(&table, &stats, &profile).plan(&q);
        assert_eq!(plan.range_eligible, 1);
        assert_eq!(plan.range_scans, 1);
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 1);
        match &members[0] {
            PlanNode::Project { input, .. } => match &**input {
                PlanNode::RangeScan { lo, hi, members, .. } => {
                    assert_eq!((*lo, *hi), (5, 8));
                    assert_eq!(*members, 2);
                }
                other => panic!("expected RangeScan leaf, got {other:?}"),
            },
            other => panic!("expected Project member, got {other:?}"),
        }
    }

    #[test]
    fn range_probe_plans_return_the_same_rows_as_ucq() {
        use crate::engine::Store;
        // Two-atom members where the collapsed interval rides a probe:
        // every (knob × vectorized) combination must agree row-for-row.
        let members: Vec<StoreCq> = [1u32, 2, 3]
            .iter()
            .map(|&o| {
                StoreCq::with_var_head(
                    vec![
                        StorePattern::new(v(0), c(10), c(o)),
                        StorePattern::new(v(0), c(11), v(1)),
                    ],
                    vec![0, 1],
                )
            })
            .collect();
        let frag = StoreUcq::new(members, vec![0, 1]);
        let q = StoreJucq::from_ucq(frag);
        let triples: Vec<TripleId> =
            vec![t(1, 10, 2), t(2, 10, 3), t(3, 10, 1), t(1, 11, 100), t(2, 11, 101), t(4, 10, 4)];
        let mut rows_by_mode = Vec::new();
        for on in [true, false] {
            for vectorized in [true, false] {
                let mut profile = EngineProfile::pg_like().with_range_scans(on);
                profile.vectorized = vectorized;
                let s = Store::from_triples(&triples, profile);
                let out = s.eval_jucq(&q).expect("evaluation succeeds");
                let mut r = out.relation;
                r.sort();
                if on {
                    assert!(
                        out.counters.range_scans > 0,
                        "collapsed plan exercises a range kernel (vectorized={vectorized})"
                    );
                }
                rows_by_mode.push(r.to_rows());
            }
        }
        for w in rows_by_mode.windows(2) {
            assert_eq!(w[0], w[1], "range-probe and UCQ plans are row-identical");
        }
    }

    #[test]
    fn collapsed_plans_return_the_same_rows() {
        use crate::engine::Store;
        let members: Vec<StoreCq> = [1u32, 2, 3]
            .iter()
            .map(|&o| one_pattern_member(StorePattern::new(v(0), c(10), c(o)), vec![0]))
            .collect();
        let frag = StoreUcq::new(members, vec![0]);
        let q = StoreJucq::from_ucq(frag);
        let triples: Vec<TripleId> =
            vec![t(1, 10, 2), t(2, 10, 3), t(3, 10, 1), t(1, 11, 100), t(2, 11, 101), t(4, 10, 4)];
        let mut rows_by_mode = Vec::new();
        for on in [true, false] {
            for vectorized in [true, false] {
                let mut profile = EngineProfile::pg_like().with_range_scans(on);
                profile.vectorized = vectorized;
                let s = Store::from_triples(&triples, profile);
                let out = s.eval_jucq(&q).expect("evaluation succeeds");
                let mut r = out.relation;
                r.sort();
                assert_eq!(
                    out.counters.range_scans,
                    u64::from(on),
                    "range_scans counter tracks the knob (vectorized={vectorized})"
                );
                rows_by_mode.push(r.to_rows());
            }
        }
        for w in rows_by_mode.windows(2) {
            assert_eq!(w[0], w[1], "range and UCQ plans are row-identical");
        }
    }

    #[test]
    fn render_shows_shared_table_and_tree() {
        let shared_leaf = StorePattern::new(v(0), c(11), c(100));
        let a = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let b = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let text = plan.render(3);
        assert!(text.contains("Shared scans:"), "{text}");
        assert!(text.contains("SharedScan #0"), "{text}");
        assert!(text.contains("Dedup"), "{text}");
        assert!(text.contains("HashUnion fragment[0]"), "{text}");
        assert!(text.contains("Inlj probe"), "{text}");
    }
}
