//! Lowering `StoreJucq → Plan` through an ordered rewrite-pass pipeline.
//!
//! Passes run in a fixed order, each wrapped in a `jucq-obs` span and
//! reporting before/after node counts to the metrics registry:
//!
//! 1. **prune_empty** — drop union members containing a pattern with an
//!    empty extent (exact index cardinality); a fragment that loses all
//!    members proves the whole JUCQ empty (`∅ ⋈ X = ∅`).
//! 2. **dedup_members** — drop exact-duplicate members, then members
//!    subsumed by another member of the same fragment (same head terms,
//!    body pattern superset): reformulation stamps both out routinely.
//! 3. **factor_scans** — count how often each distinct [`StorePattern`]
//!    is scanned across all members of all fragments (under the INLJ
//!    strategy only each member's leaf atom is a scan; under the hash
//!    strategy every atom is); patterns scanned twice or more become
//!    [`SharedScanDef`]s computed once per query.
//! 4. **join_order** — greedy per-member atom ordering (cheapest exact
//!    extent first, then always a join-connected atom), baked into the
//!    plan instead of re-derived at execution time.
//! 5. **lower** — physical operator choice from the profile (INLJ chain
//!    vs. member hash joins; hash / sort-merge / block-nested-loop
//!    fragment joins), fragment join order (smallest estimate first,
//!    connected-first), the pipelined-fragment choice (largest
//!    estimate, §4.1), and cardinality estimates on every plan node.

use jucq_model::{FxHashMap, FxHashSet};

use crate::exec::join;
use crate::ir::{PatternTerm, StoreCq, StoreJucq, StorePattern, StoreUcq, VarId};
use crate::plan::node::{Plan, PlanNode, SharedScanDef, SipFilterDef};
use crate::profile::{EngineProfile, JoinAlgo};
use crate::stats::Statistics;
use crate::table::TripleTable;

/// The O(members²) subsumption sweep is skipped beyond this union width
/// (exact-duplicate elimination still runs; it is linear).
const SUBSUMPTION_MEMBER_LIMIT: usize = 2_000;

/// Lowers logical [`StoreJucq`]s to physical [`Plan`]s for one store.
pub struct Planner<'a> {
    table: &'a TripleTable,
    stats: &'a Statistics,
    profile: &'a EngineProfile,
}

/// One union member mid-rewrite: the CQ plus its exact per-atom extents
/// and (after the join-order pass) its scan/probe order.
struct DraftMember {
    cq: StoreCq,
    counts: Vec<usize>,
    order: Vec<usize>,
}

/// One fragment mid-rewrite.
struct DraftFragment {
    head: Vec<VarId>,
    members: Vec<DraftMember>,
}

/// Logical node count of the draft (fragments + members + atoms), the
/// unit of the per-pass before/after metrics.
fn draft_nodes(draft: &[DraftFragment]) -> usize {
    draft.iter().map(|f| 1 + f.members.iter().map(|m| 1 + m.cq.patterns.len()).sum::<usize>()).sum()
}

/// First index of the minimum value (ties keep the earliest atom, the
/// same rule `Iterator::min_by_key` applies in the join-order pass).
fn cheapest_atom(counts: &[usize]) -> usize {
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c < counts[best] {
            best = i;
        }
    }
    best
}

/// `a ⊆ b` over sorted, deduplicated pattern vectors.
fn is_subset(a: &[StorePattern], b: &[StorePattern]) -> bool {
    let mut j = 0;
    for p in a {
        while j < b.len() && b[j] < *p {
            j += 1;
        }
        if j >= b.len() || b[j] != *p {
            return false;
        }
        j += 1;
    }
    true
}

impl<'a> Planner<'a> {
    /// Bind a planner to a store's table, statistics and profile.
    pub fn new(table: &'a TripleTable, stats: &'a Statistics, profile: &'a EngineProfile) -> Self {
        Planner { table, stats, profile }
    }

    /// Lower `q` through the full rewrite pipeline. Infallible:
    /// admission control (union-term limits) happens before planning,
    /// resource limits during execution.
    pub fn plan(&self, q: &StoreJucq) -> Plan {
        jucq_obs::span!("physical_planning");
        let mut draft: Vec<DraftFragment> = q
            .fragments
            .iter()
            .map(|f| DraftFragment {
                head: f.head.clone(),
                members: f
                    .cqs
                    .iter()
                    .map(|cq| DraftMember {
                        counts: cq.patterns.iter().map(|p| self.table.count(&p.bound())).collect(),
                        cq: cq.clone(),
                        order: Vec::new(),
                    })
                    .collect(),
            })
            .collect();

        self.prune_empty_members(&mut draft);
        self.dedup_members(&mut draft);
        let shared = self.factor_common_scans(&draft);
        self.select_join_orders(&mut draft);
        self.lower(q, &draft, shared)
    }

    /// Pass 1: a member containing a zero-extent pattern can never
    /// produce a row — drop it. Fragments are never removed: a fragment
    /// left without members makes the whole plan constant-empty.
    fn prune_empty_members(&self, draft: &mut [DraftFragment]) {
        jucq_obs::span!("plan.prune_empty");
        let before = draft_nodes(draft);
        for frag in draft.iter_mut() {
            frag.members.retain(|m| !m.counts.contains(&0));
        }
        let after = draft_nodes(draft);
        jucq_obs::metrics::counter_add("planner.prune_empty.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.prune_empty.nodes_after", after as u64);
    }

    /// Pass 2: drop exact-duplicate members, then members subsumed by
    /// another member of the same fragment — same head term sequence and
    /// a body pattern set that is a superset of the other's (every
    /// valuation satisfying the superset body satisfies the subset body,
    /// so under set semantics the superset member contributes nothing).
    fn dedup_members(&self, draft: &mut [DraftFragment]) {
        jucq_obs::span!("plan.dedup_members");
        let before = draft_nodes(draft);
        for frag in draft.iter_mut() {
            let mut seen: FxHashSet<StoreCq> = FxHashSet::default();
            let mut kept: Vec<DraftMember> = Vec::with_capacity(frag.members.len());
            for m in std::mem::take(&mut frag.members) {
                if seen.insert(m.cq.clone()) {
                    kept.push(m);
                }
            }
            if kept.len() > 1 && kept.len() <= SUBSUMPTION_MEMBER_LIMIT {
                let sorted: Vec<Vec<StorePattern>> = kept
                    .iter()
                    .map(|m| {
                        let mut v = m.cq.patterns.clone();
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                let mut drop = vec![false; kept.len()];
                for a in 0..kept.len() {
                    for b in 0..kept.len() {
                        if a == b || kept[b].cq.head != kept[a].cq.head {
                            continue;
                        }
                        // Strict subset, or equal sets keeping the first.
                        if is_subset(&sorted[b], &sorted[a])
                            && (sorted[b].len() < sorted[a].len() || b < a)
                        {
                            drop[a] = true;
                            break;
                        }
                    }
                }
                let mut it = drop.iter();
                kept.retain(|_| !*it.next().expect("one flag per member"));
            }
            frag.members = kept;
        }
        let after = draft_nodes(draft);
        jucq_obs::metrics::counter_add("planner.dedup_members.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.dedup_members.nodes_after", after as u64);
    }

    /// Pass 3: factor the scans several members share. A scan position
    /// is each member's leaf atom under the INLJ strategy (later atoms
    /// are index probes, not extent scans) and every atom under the hash
    /// strategy; the leaf prediction uses the same first-minimum rule as
    /// the join-order pass, so the factored set matches the lowered plan
    /// exactly.
    fn factor_common_scans(&self, draft: &[DraftFragment]) -> Vec<SharedScanDef> {
        jucq_obs::span!("plan.factor_scans");
        let before = draft_nodes(draft);
        let mut defs: Vec<SharedScanDef> = Vec::new();
        if self.profile.share_scans {
            let mut uses: FxHashMap<StorePattern, usize> = FxHashMap::default();
            let mut order: Vec<StorePattern> = Vec::new();
            let mut count_use = |p: StorePattern| {
                let n = uses.entry(p).or_insert(0);
                if *n == 0 {
                    order.push(p);
                }
                *n += 1;
            };
            for frag in draft {
                for m in &frag.members {
                    if m.cq.patterns.is_empty() {
                        continue;
                    }
                    if self.profile.index_nested_loop_cq {
                        count_use(m.cq.patterns[cheapest_atom(&m.counts)]);
                    } else {
                        for p in &m.cq.patterns {
                            count_use(*p);
                        }
                    }
                }
            }
            defs = order
                .into_iter()
                .filter(|p| uses[p] >= 2)
                .map(|p| SharedScanDef {
                    pattern: p,
                    uses: uses[&p],
                    est: Some(self.table.count(&p.bound()) as f64),
                })
                .collect();
        }
        let saved: usize = defs.iter().map(|d| d.uses - 1).sum();
        jucq_obs::metrics::counter_add("planner.factor_scans.nodes_before", before as u64);
        jucq_obs::metrics::counter_add(
            "planner.factor_scans.nodes_after",
            (before + defs.len()) as u64,
        );
        jucq_obs::metrics::counter_add("planner.factor_scans.shared_defs", defs.len() as u64);
        jucq_obs::metrics::counter_add("planner.factor_scans.scan_uses_saved", saved as u64);
        defs
    }

    /// Pass 4: greedy per-member atom order — cheapest exact extent
    /// first, then repeatedly the connected atom (sharing a variable
    /// with the bound set) of smallest extent, falling back to the
    /// globally smallest remaining atom for disconnected bodies.
    fn select_join_orders(&self, draft: &mut [DraftFragment]) {
        jucq_obs::span!("plan.join_order");
        let before = draft_nodes(draft);
        for frag in draft.iter_mut() {
            for m in &mut frag.members {
                m.order = atom_order(&m.cq.patterns, &m.counts);
            }
        }
        jucq_obs::metrics::counter_add("planner.join_order.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.join_order.nodes_after", before as u64);
    }

    /// Pass 5: physical lowering — see the module docs for the choices
    /// made here.
    fn lower(&self, q: &StoreJucq, draft: &[DraftFragment], shared: Vec<SharedScanDef>) -> Plan {
        jucq_obs::span!("plan.lower");
        let before = draft_nodes(draft) + shared.len();

        if draft.is_empty() || draft.iter().any(|f| f.members.is_empty()) {
            let plan = Plan {
                root: PlanNode::Empty { head: q.head.clone() },
                shared: Vec::new(),
                head: q.head.clone(),
                pipelined: None,
                estimates: Vec::new(),
                sip: Vec::new(),
            };
            jucq_obs::metrics::counter_add("planner.lower.nodes_before", before as u64);
            jucq_obs::metrics::counter_add("planner.lower.nodes_after", plan.node_count() as u64);
            return plan;
        }

        let shared_ix: FxHashMap<StorePattern, usize> =
            shared.iter().enumerate().map(|(i, d)| (d.pattern, i)).collect();
        let mut estimates: Vec<(String, f64)> = Vec::new();
        for (i, def) in shared.iter().enumerate() {
            estimates.push((format!("shared_scan[{i}]"), def.est.unwrap_or(0.0)));
        }

        // Estimates over the *rewritten* members (what actually runs).
        let pruned_ucqs: Vec<StoreUcq> = draft
            .iter()
            .map(|f| {
                StoreUcq::new(f.members.iter().map(|m| m.cq.clone()).collect(), f.head.clone())
            })
            .collect();
        let frag_est: Vec<f64> =
            pruned_ucqs.iter().map(|u| self.stats.est_ucq(self.table, u)).collect();
        for (i, est) in frag_est.iter().enumerate() {
            estimates.push((format!("fragment[{i}].union"), *est));
        }

        let mut union_nodes: Vec<Option<PlanNode>> = draft
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let members: Vec<PlanNode> =
                    f.members.iter().map(|m| self.lower_member(m, &f.head, &shared_ix)).collect();
                Some(PlanNode::HashUnion {
                    idx: i,
                    head: f.head.clone(),
                    members,
                    est: Some(frag_est[i]),
                })
            })
            .collect();

        // §4.1: the largest-result fragment is the one pipelined.
        let pipelined = if draft.len() > 1 {
            frag_est.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i)
        } else {
            None
        };

        // Fragment join order: smallest estimate first, then always a
        // fragment connected (sharing a head variable) to the schema
        // accumulated so far; disconnected inputs fall back to the
        // smallest remaining (cartesian product).
        let algo = self.profile.fragment_join;
        let mut remaining: Vec<usize> = (0..draft.len()).collect();
        remaining.sort_by(|&a, &b| frag_est[a].total_cmp(&frag_est[b]));
        let first = remaining.remove(0);
        let mut acc_vars: Vec<VarId> = draft[first].head.clone();
        let mut tree = union_nodes[first].take().expect("each fragment lowered once");
        let mut joined: Vec<usize> = vec![first];
        let mut sip: Vec<SipFilterDef> = Vec::new();
        let mut step = 0usize;
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&i| draft[i].head.iter().any(|v| acc_vars.contains(v)))
                .unwrap_or(0);
            let next = remaining.remove(pos);
            joined.push(next);
            if self.profile.sip_filters {
                // The filter keys are exactly the join keys of this
                // step: head variables of the incoming fragment already
                // bound by the accumulated schema. A disconnected
                // fragment (cartesian product) gets no filter.
                let keys: Vec<VarId> =
                    draft[next].head.iter().copied().filter(|v| acc_vars.contains(v)).collect();
                if !keys.is_empty() {
                    sip.push(SipFilterDef { step, target: next, keys });
                }
            }
            for &v in &draft[next].head {
                if !acc_vars.contains(&v) {
                    acc_vars.push(v);
                }
            }
            // Estimate the JUCQ over exactly the fragments joined so far
            // — the same node the join output materializes.
            let sub = StoreJucq::new(
                joined.iter().map(|&i| pruned_ucqs[i].clone()).collect(),
                q.head.clone(),
            );
            let est = self.stats.est_jucq(self.table, &sub);
            estimates.push((format!("join[{step}].{}", join::op_name(algo)), est));
            let right = union_nodes[next].take().expect("each fragment lowered once");
            tree = make_join(algo, tree, right, step, est);
            step += 1;
        }

        let final_est =
            self.stats.est_jucq(self.table, &StoreJucq::new(pruned_ucqs, q.head.clone()));
        estimates.push(("dedup".to_string(), final_est));
        let root = PlanNode::Dedup {
            input: Box::new(PlanNode::Project {
                input: Box::new(tree),
                head: q.head.iter().map(|&v| PatternTerm::Var(v)).collect(),
                out_vars: q.head.clone(),
            }),
            est: Some(final_est),
        };
        let plan = Plan { root, shared, head: q.head.clone(), pipelined, estimates, sip };
        jucq_obs::metrics::counter_add("planner.lower.nodes_before", before as u64);
        jucq_obs::metrics::counter_add("planner.lower.nodes_after", plan.node_count() as u64);
        plan
    }

    /// Lower one union member to its access chain: a leaf scan (shared
    /// or private, filtered when the pattern repeats a variable) extended
    /// by INLJ probes, or member-internal hash joins of scanned extents,
    /// topped by the head projection.
    fn lower_member(
        &self,
        m: &DraftMember,
        frag_head: &[VarId],
        shared_ix: &FxHashMap<StorePattern, usize>,
    ) -> PlanNode {
        if m.cq.patterns.is_empty() {
            return PlanNode::TrueRow { out_vars: frag_head.to_vec() };
        }
        let leaf = |pi: usize| -> PlanNode {
            let p = m.cq.patterns[pi];
            match shared_ix.get(&p) {
                Some(&id) => {
                    PlanNode::SharedScan { id, pattern: p, est: Some(m.counts[pi] as f64) }
                }
                None => {
                    let scan = PlanNode::IndexScan { pattern: p, est: Some(m.counts[pi] as f64) };
                    if p.has_repeated_var() {
                        PlanNode::Filter { pattern: p, input: Box::new(scan) }
                    } else {
                        scan
                    }
                }
            }
        };
        let mut node = leaf(m.order[0]);
        for &pi in &m.order[1..] {
            node = if self.profile.index_nested_loop_cq {
                PlanNode::Inlj { input: Box::new(node), pattern: m.cq.patterns[pi] }
            } else {
                PlanNode::HashJoin {
                    left: Box::new(node),
                    right: Box::new(leaf(pi)),
                    step: None,
                    est: None,
                }
            };
        }
        PlanNode::Project {
            input: Box::new(node),
            head: m.cq.head.clone(),
            out_vars: frag_head.to_vec(),
        }
    }
}

/// Greedy atom ordering over precomputed exact extents: start from the
/// smallest atom; repeatedly append the connected atom (sharing a
/// variable with the bound set) of smallest extent; fall back to the
/// globally smallest remaining atom when the body is disconnected.
fn atom_order(patterns: &[StorePattern], counts: &[usize]) -> Vec<usize> {
    if patterns.is_empty() {
        return Vec::new();
    }
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    let mut bound_vars: Vec<VarId> = Vec::new();

    let first = remaining.iter().copied().min_by_key(|&i| counts[i]).expect("non-empty body");
    order.push(first);
    bound_vars.extend(patterns[first].variables());
    remaining.retain(|&i| i != first);

    while !remaining.is_empty() {
        let connected = remaining
            .iter()
            .copied()
            .filter(|&i| patterns[i].variables().iter().any(|v| bound_vars.contains(v)))
            .min_by_key(|&i| counts[i]);
        let next = connected.unwrap_or_else(|| {
            remaining.iter().copied().min_by_key(|&i| counts[i]).expect("remaining non-empty")
        });
        order.push(next);
        for v in patterns[next].variables() {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        remaining.retain(|&i| i != next);
    }
    order
}

/// Build the fragment-level join node matching `algo`.
fn make_join(algo: JoinAlgo, left: PlanNode, right: PlanNode, step: usize, est: f64) -> PlanNode {
    let (left, right, step, est) = (Box::new(left), Box::new(right), Some(step), Some(est));
    match algo {
        JoinAlgo::Hash => PlanNode::HashJoin { left, right, step, est },
        JoinAlgo::SortMerge => PlanNode::MergeJoin { left, right, step, est },
        JoinAlgo::BlockNestedLoop => PlanNode::NestedLoopJoin { left, right, step, est },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineProfile;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn table() -> TripleTable {
        TripleTable::build(&[
            t(1, 10, 2),
            t(2, 10, 3),
            t(3, 10, 1),
            t(1, 11, 100),
            t(2, 11, 101),
            t(4, 10, 4),
        ])
    }

    fn plan_of(q: &StoreJucq, profile: &EngineProfile) -> Plan {
        let table = table();
        let stats = Statistics::build(&table);
        Planner::new(&table, &stats, profile).plan(q)
    }

    fn one_pattern_member(p: StorePattern, head: Vec<VarId>) -> StoreCq {
        StoreCq::with_var_head(vec![p], head)
    }

    #[test]
    fn order_starts_from_cheapest_atom() {
        let patterns = vec![
            StorePattern::new(v(0), c(10), v(1)),   // 4 matches
            StorePattern::new(v(0), c(11), c(100)), // 1 match
        ];
        let counts = vec![4, 1];
        let order = atom_order(&patterns, &counts);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn order_prefers_connected_atoms() {
        // The connected atom (?0 10 ?1, 4 matches) beats the cheaper
        // but disconnected (?2 11 101, 1 match): connectivity trumps
        // extent size once a variable is bound.
        let patterns = vec![
            StorePattern::new(v(0), c(11), c(100)), // 1 match, binds ?0
            StorePattern::new(v(0), c(10), v(1)),   // 4 matches, connected
            StorePattern::new(v(2), c(11), c(101)), // 1 match, disconnected
        ];
        let counts = vec![1, 4, 1];
        let order = atom_order(&patterns, &counts);
        assert_eq!(order, vec![0, 1, 2], "connected beats cheaper disconnected");
    }

    #[test]
    fn empty_extent_member_is_pruned_to_const_empty_plan() {
        let frag = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(99), v(1)), vec![0])],
            vec![0],
        );
        let plan = plan_of(&StoreJucq::new(vec![frag], vec![0]), &EngineProfile::pg_like());
        assert!(plan.is_const_empty());
        assert!(plan.estimates.is_empty());
    }

    #[test]
    fn duplicate_and_subsumed_members_are_dropped() {
        let narrow = one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![0, 1]);
        let superset = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), c(100))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![narrow.clone(), narrow.clone(), superset], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 1, "duplicate and subsumed members dropped");
    }

    #[test]
    fn subsumption_requires_equal_heads() {
        let a = one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![0, 1]);
        // Same body superset but a constant head: different output.
        let b = StoreCq::new(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), c(100))],
            vec![PatternTerm::Var(0), PatternTerm::Const(id(7))],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert_eq!(members.len(), 2, "different heads are never subsumed");
    }

    #[test]
    fn common_leaf_scans_are_factored() {
        // Two members whose cheapest atom is the same pattern.
        let shared_leaf = StorePattern::new(v(0), c(11), c(100)); // 1 match
        let a = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let b = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        assert_eq!(plan.shared.len(), 1);
        assert_eq!(plan.shared[0].pattern, shared_leaf);
        assert_eq!(plan.shared[0].uses, 2);
        assert!(plan.estimates.iter().any(|(l, _)| l == "shared_scan[0]"));
    }

    #[test]
    fn scan_sharing_can_be_disabled() {
        let shared_leaf = StorePattern::new(v(0), c(11), c(100));
        let a = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let b = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let profile = EngineProfile::pg_like().with_scan_sharing(false);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &profile);
        assert!(plan.shared.is_empty());
    }

    #[test]
    fn hash_strategy_factors_all_scan_positions() {
        // Neither member's pattern set contains the other's, so both
        // survive the subsumption pass and both scan `pat`.
        let pat = StorePattern::new(v(0), c(10), v(1));
        let a = StoreCq::with_var_head(vec![pat, StorePattern::new(v(0), c(11), v(3))], vec![0, 1]);
        let b = StoreCq::with_var_head(vec![pat, StorePattern::new(v(1), c(11), v(2))], vec![0, 1]);
        let mut profile = EngineProfile::pg_like();
        profile.index_nested_loop_cq = false;
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &profile);
        assert_eq!(plan.shared.len(), 1, "(?0 #u10 ?1) scanned by both members");
        // Member b's plan contains a member-internal hash join.
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        let has_member_join = members.iter().any(|m| {
            matches!(
                m,
                PlanNode::Project { input, .. }
                    if matches!(**input, PlanNode::HashJoin { step: None, .. })
            )
        });
        assert!(has_member_join, "hash strategy lowers member joins");
    }

    #[test]
    fn fragment_join_algo_follows_profile() {
        let fa = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(10), v(1)), vec![0, 1])],
            vec![0, 1],
        );
        let fb = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(11), v(2)), vec![0, 2])],
            vec![0, 2],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0, 1, 2]);
        let hash = plan_of(&q, &EngineProfile::pg_like());
        let bnl = plan_of(&q, &EngineProfile::mysql_like());
        let top_join = |p: &Plan| match &p.root {
            PlanNode::Dedup { input, .. } => match &**input {
                PlanNode::Project { input, .. } => (**input).clone(),
                other => other.clone(),
            },
            other => other.clone(),
        };
        assert!(matches!(top_join(&hash), PlanNode::HashJoin { step: Some(0), .. }));
        assert!(matches!(top_join(&bnl), PlanNode::NestedLoopJoin { step: Some(0), .. }));
        assert!(hash.pipelined.is_some());
        assert!(hash.estimates.iter().any(|(l, _)| l == "join[0].hash_join"));
        assert!(bnl.estimates.iter().any(|(l, _)| l == "join[0].block_nested_loop_join"));
    }

    #[test]
    fn repeated_var_scan_gets_a_filter_node() {
        let frag = StoreUcq::new(
            vec![one_pattern_member(StorePattern::new(v(0), c(10), v(0)), vec![0])],
            vec![0],
        );
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let unions = plan.unions();
        let (_, _, members) = unions[0].as_union().unwrap();
        assert!(matches!(
            &members[0],
            PlanNode::Project { input, .. } if matches!(**input, PlanNode::Filter { .. })
        ));
    }

    #[test]
    fn render_shows_shared_table_and_tree() {
        let shared_leaf = StorePattern::new(v(0), c(11), c(100));
        let a = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(0), c(10), v(1))],
            vec![0, 1],
        );
        let b = StoreCq::with_var_head(
            vec![shared_leaf, StorePattern::new(v(1), c(10), v(0))],
            vec![0, 1],
        );
        let frag = StoreUcq::new(vec![a, b], vec![0, 1]);
        let plan = plan_of(&StoreJucq::from_ucq(frag), &EngineProfile::pg_like());
        let text = plan.render(3);
        assert!(text.contains("Shared scans:"), "{text}");
        assert!(text.contains("SharedScan #0"), "{text}");
        assert!(text.contains("Dedup"), "{text}");
        assert!(text.contains("HashUnion fragment[0]"), "{text}");
        assert!(text.contains("Inlj probe"), "{text}");
    }
}
