//! The typed physical plan tree.
//!
//! A [`Plan`] is what the [`Planner`](crate::plan::Planner) lowers a
//! [`StoreJucq`](crate::ir::StoreJucq) into and what the executor
//! interprets: a tree of physical operators plus a plan-wide table of
//! factored [`SharedScanDef`]s. The same plan drives the sequential and
//! the parallel execution path, `explain` rendering, and the per-node
//! estimate column of `explain_analyze`.

use std::fmt::Write as _;

use crate::ir::{PatternTerm, StorePattern, VarId};
use crate::table::{Perm, RangePos};
use crate::views::ViewSignature;

/// One physical operator node.
///
/// Shape invariants maintained by the planner (the executor relies on
/// them):
/// * the root is [`PlanNode::Empty`], or [`PlanNode::Dedup`] over a
///   [`PlanNode::Project`] over a left-deep tree of fragment-level join
///   nodes (`step: Some(_)`) whose leaves are [`PlanNode::HashUnion`]s;
/// * every union member is a [`PlanNode::Project`] (or
///   [`PlanNode::TrueRow`] for an empty body) over an access chain of
///   scans, [`PlanNode::Inlj`] probes and member-internal hash joins
///   (`step: None`).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan one triple pattern's extent off the best permutation index.
    IndexScan {
        /// The pattern scanned.
        pattern: StorePattern,
        /// The permutation index to scan, when the interesting-orders
        /// pass picked one deliberately (it must cover the pattern's
        /// bound positions); `None` scans [`Perm::for_bound`]'s default.
        /// Either way the extent is the same triple set — only the
        /// physical row order differs.
        perm: Option<Perm>,
        /// Exact extent cardinality (index lookup at plan time).
        est: Option<f64>,
    },
    /// Scan one *interval* of triple patterns off the permutation index
    /// that sorts the ranged component contiguously: all triples matching
    /// `pattern` with its ranged position's constant replaced by any raw
    /// URI id in `[lo, hi)`. Produced by the planner's collapse pass when
    /// `members` union members differ only in one contiguous-id constant
    /// (typically a hierarchically-encoded class or property subtree).
    RangeScan {
        /// The pattern template: the first collapsed member's pattern,
        /// with its original constant still at the ranged position (the
        /// variables, bound positions and repeated-variable structure are
        /// shared by every collapsed member).
        pattern: StorePattern,
        /// Which component the interval ranges over.
        ranged: RangePos,
        /// Inclusive lower raw URI id.
        lo: u32,
        /// Exclusive upper raw URI id.
        hi: u32,
        /// How many union members this one scan replaces.
        members: usize,
        /// Exact extent cardinality (index lookup at plan time).
        est: Option<f64>,
    },
    /// Reference entry `id` of the plan's shared-scan table: the extent
    /// is materialized once per query and reused by every referencing
    /// member.
    SharedScan {
        /// Index into [`Plan::shared`].
        id: usize,
        /// The pattern (duplicated here for rendering).
        pattern: StorePattern,
        /// Exact extent cardinality.
        est: Option<f64>,
    },
    /// Equality filter for a repeated-variable pattern (`?x p ?x`),
    /// fused into the scan beneath it at execution time.
    Filter {
        /// The repeated-variable pattern whose equality is enforced.
        pattern: StorePattern,
        /// The scan being filtered.
        input: Box<PlanNode>,
    },
    /// Index-nested-loop step: probe `pattern`'s best index once per
    /// input row, binding the pattern's variables already present in the
    /// input (repeated-variable consistency is checked in the probe).
    Inlj {
        /// The binding relation being extended.
        input: Box<PlanNode>,
        /// The probed pattern.
        pattern: StorePattern,
    },
    /// Index-nested-loop step over a collapsed interval: like
    /// [`PlanNode::Inlj`], but the probed pattern's `ranged` position
    /// matches any raw URI id in `[lo, hi)` — one contiguous index probe
    /// per input row where the uncollapsed union needed one probe per
    /// collapsed member. This is what lets a collapsed member keep a
    /// selective atom at the leaf instead of pinning the interval there.
    RangeProbe {
        /// The binding relation being extended.
        input: Box<PlanNode>,
        /// The probed pattern template (first collapsed member's pattern).
        pattern: StorePattern,
        /// Which component the interval ranges over.
        ranged: RangePos,
        /// Inclusive lower raw URI id.
        lo: u32,
        /// Exclusive upper raw URI id.
        hi: u32,
        /// How many union members this probe's interval replaces.
        members: usize,
    },
    /// Hash join. `step: Some(k)` marks fragment-level join step `k`
    /// (recorded as the `join[k].hash_join` node); `None` marks a
    /// member-internal join of scanned extents.
    HashJoin {
        /// Left (accumulated) input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Fragment-level join step, if any.
        step: Option<usize>,
        /// Estimated output rows (fragment-level joins only).
        est: Option<f64>,
    },
    /// Sort-merge join of two fragment results.
    MergeJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Fragment-level join step.
        step: Option<usize>,
        /// Estimated output rows.
        est: Option<f64>,
        /// Which inputs (left, right) already arrive sorted on the join
        /// key — their sort is elided at execution time. Set by the
        /// order-aware planner from the inputs' order properties; the
        /// kernels verify cheaply and fall back to sorting if an input
        /// turns out unsorted (e.g. a view-served fragment).
        sort_elided: (bool, bool),
    },
    /// Block-nested-loop join of two fragment results (the MySQL-like
    /// profile's deliberately weak algorithm).
    NestedLoopJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Fragment-level join step.
        step: Option<usize>,
        /// Estimated output rows.
        est: Option<f64>,
    },
    /// Projection onto a head of variables and constants. At the top of
    /// every union member; also (all-variable) directly under the root
    /// [`PlanNode::Dedup`].
    Project {
        /// The projected input.
        input: Box<PlanNode>,
        /// Output terms, positionally aligned with `out_vars`.
        head: Vec<PatternTerm>,
        /// The output schema.
        out_vars: Vec<VarId>,
    },
    /// The always-true zero-pattern member: one empty row when the
    /// output schema is empty, no rows otherwise.
    TrueRow {
        /// The output schema.
        out_vars: Vec<VarId>,
    },
    /// A fragment whose union matched the materialized-view catalog at
    /// plan time. The node carries **no rows** — only an index into
    /// [`Plan::views`] naming the signature; the executor resolves the
    /// rows through the catalog with the *request's* epoch at
    /// evaluation time and evaluates the embedded `fallback` union
    /// subtree on any mismatch. Plans are therefore safe to cache and
    /// share across epochs: a stale entry simply stops resolving.
    ViewScan {
        /// The fragment index (same numbering as the fallback union).
        idx: usize,
        /// The output schema (the fragment head).
        head: Vec<VarId>,
        /// Index into [`Plan::views`].
        view: usize,
        /// Estimated output rows (the catalog entry's tuple count at
        /// plan time).
        est: Option<f64>,
        /// The full union subtree evaluated when the view does not
        /// resolve at the request's epoch.
        fallback: Box<PlanNode>,
    },
    /// Streaming hash-deduplicating union of member results — one per
    /// JUCQ fragment.
    HashUnion {
        /// The fragment index (drives the `fragment[i].` node scope).
        idx: usize,
        /// The union's output schema (the fragment head).
        head: Vec<VarId>,
        /// Member plans, in member order.
        members: Vec<PlanNode>,
        /// Estimated output rows.
        est: Option<f64>,
    },
    /// Final duplicate elimination (set semantics) over the projected
    /// join of fragments.
    Dedup {
        /// The input (a [`PlanNode::Project`]).
        input: Box<PlanNode>,
        /// Estimated output rows.
        est: Option<f64>,
    },
    /// A plan proven empty at plan time (a fragment lost every member to
    /// empty-extent pruning, or the query has no fragments).
    Empty {
        /// The output schema.
        head: Vec<VarId>,
    },
}

impl PlanNode {
    /// Number of nodes in this subtree (the rewrite passes' metric).
    pub fn node_count(&self) -> usize {
        1 + match self {
            PlanNode::Filter { input, .. }
            | PlanNode::Inlj { input, .. }
            | PlanNode::RangeProbe { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Dedup { input, .. } => input.node_count(),
            PlanNode::HashJoin { left, right, .. }
            | PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NestedLoopJoin { left, right, .. } => {
                left.node_count() + right.node_count()
            }
            PlanNode::HashUnion { members, .. } => members.iter().map(PlanNode::node_count).sum(),
            PlanNode::ViewScan { fallback, .. } => fallback.node_count(),
            PlanNode::IndexScan { .. }
            | PlanNode::RangeScan { .. }
            | PlanNode::SharedScan { .. }
            | PlanNode::TrueRow { .. }
            | PlanNode::Empty { .. } => 0,
        }
    }

    /// The output variables of this node, in executor column order:
    /// mirrors how each operator actually lays out its result (scans
    /// bind a pattern's distinct variables, probes and joins append the
    /// right side's new variables after the left's).
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            PlanNode::IndexScan { pattern, .. }
            | PlanNode::RangeScan { pattern, .. }
            | PlanNode::SharedScan { pattern, .. } => pattern.variables().to_vec(),
            PlanNode::Filter { input, .. } | PlanNode::Dedup { input, .. } => input.vars(),
            PlanNode::Inlj { input, pattern } | PlanNode::RangeProbe { input, pattern, .. } => {
                let mut out = input.vars();
                for v in pattern.variables() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
                out
            }
            PlanNode::HashJoin { left, right, .. }
            | PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NestedLoopJoin { left, right, .. } => {
                let mut out = left.vars();
                for v in right.vars() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
                out
            }
            PlanNode::Project { out_vars, .. } | PlanNode::TrueRow { out_vars } => out_vars.clone(),
            PlanNode::ViewScan { head, .. }
            | PlanNode::HashUnion { head, .. }
            | PlanNode::Empty { head } => head.clone(),
        }
    }

    /// The physical order property: the variable sequence this node's
    /// rows are sorted by (non-decreasing under lexicographic comparison
    /// of those variables' values), or empty when no order is
    /// guaranteed. Seeded at scan leaves from the permutation index's
    /// key order restricted to variable positions; a node sorted by
    /// `[a, b, c]` is also sorted by any prefix.
    pub fn order(&self) -> Vec<VarId> {
        match self {
            PlanNode::IndexScan { pattern, perm, .. } => {
                let perm = perm.unwrap_or_else(|| Perm::for_bound(&pattern.bound()));
                scan_order(pattern, perm)
            }
            // A RangeScan's rows are sorted first by the *ranged*
            // component, which varies over `[lo, hi)` and is not an
            // output column — the variable positions are only sorted
            // within each run, so no global order survives.
            PlanNode::RangeScan { .. } => Vec::new(),
            PlanNode::SharedScan { pattern, .. } => {
                scan_order(pattern, Perm::for_bound(&pattern.bound()))
            }
            PlanNode::Filter { input, .. } | PlanNode::Dedup { input, .. } => input.order(),
            // A probe extends each input row in place, so the input's
            // order stays the major order of the output.
            PlanNode::Inlj { input, .. } | PlanNode::RangeProbe { input, .. } => input.order(),
            PlanNode::HashJoin { .. } | PlanNode::NestedLoopJoin { .. } => Vec::new(),
            // The merge emits key groups in ascending key order.
            PlanNode::MergeJoin { left, right, .. } => Self::join_key(left, right),
            PlanNode::Project { input, out_vars, .. } => {
                let mut ord = input.order();
                if let Some(cut) = ord.iter().position(|v| !out_vars.contains(v)) {
                    ord.truncate(cut);
                }
                ord
            }
            // View resolution order depends on the catalog entry, not
            // the fallback plan.
            PlanNode::TrueRow { .. } | PlanNode::Empty { .. } | PlanNode::ViewScan { .. } => {
                Vec::new()
            }
            // The streaming union concatenates members (dropping
            // duplicates, which preserves sortedness), so only a
            // single-member union keeps its member's order.
            PlanNode::HashUnion { members, .. } => {
                if members.len() == 1 {
                    members[0].order()
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// True when this member plan provably emits **distinct** rows, so
    /// a single-member union can skip its dedup accumulator and borrow
    /// the member result as-is (the zero-copy path, counted as
    /// `scan_rows_borrowed`).
    ///
    /// The proof obligation: a single-pattern scan binds every triple
    /// component to either a constant or an output variable, so two
    /// extent triples with equal variable bindings would be the *same*
    /// triple — scans emit distinct rows. A repeated-variable filter
    /// only drops rows; a projection keeps distinctness iff it keeps
    /// every input variable (it is then a column permutation). A
    /// [`PlanNode::RangeScan`] does **not** qualify: its ranged
    /// component is not an output column, so two triples in the
    /// interval can collapse onto one row.
    pub fn distinct_by_construction(&self) -> bool {
        match self {
            PlanNode::IndexScan { .. } | PlanNode::SharedScan { .. } => true,
            PlanNode::TrueRow { .. } => true,
            PlanNode::Filter { input, .. } => input.distinct_by_construction(),
            PlanNode::Project { input, out_vars, .. } => {
                input.distinct_by_construction()
                    && input.vars().iter().all(|v| out_vars.contains(v))
            }
            _ => false,
        }
    }

    /// The join-key variable sequence of a fragment join of `left` and
    /// `right`: their shared variables, in left-schema order — exactly
    /// the key [`join::plan`](crate::exec::join) derives at execution
    /// time, so an input whose order starts with this sequence can have
    /// its merge-sort elided.
    pub fn join_key(left: &PlanNode, right: &PlanNode) -> Vec<VarId> {
        let rv = right.vars();
        left.vars().into_iter().filter(|v| rv.contains(v)).collect()
    }

    /// The fragment-union view of a [`PlanNode::HashUnion`] node.
    pub fn as_union(&self) -> Option<(usize, &[VarId], &[PlanNode])> {
        match self {
            PlanNode::HashUnion { idx, head, members, .. } => Some((*idx, head, members)),
            _ => None,
        }
    }

    /// The union subtree a fragment leaf evaluates when no view
    /// resolves: the fallback for a [`PlanNode::ViewScan`], the node
    /// itself for a [`PlanNode::HashUnion`].
    pub fn fallback_union(&self) -> &PlanNode {
        match self {
            PlanNode::ViewScan { fallback, .. } => fallback,
            other => other,
        }
    }

    fn collect_unions<'a>(&'a self, out: &mut Vec<&'a PlanNode>) {
        match self {
            PlanNode::HashUnion { .. } => out.push(self),
            PlanNode::ViewScan { fallback, .. } => fallback.collect_unions(out),
            PlanNode::Filter { input, .. }
            | PlanNode::Inlj { input, .. }
            | PlanNode::RangeProbe { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Dedup { input, .. } => input.collect_unions(out),
            PlanNode::HashJoin { left, right, .. }
            | PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NestedLoopJoin { left, right, .. } => {
                left.collect_unions(out);
                right.collect_unions(out);
            }
            _ => {}
        }
    }

    fn render_into(
        &self,
        out: &mut String,
        indent: usize,
        max_members: usize,
        names: Option<&TermNameResolver<'_>>,
    ) {
        let pad = "  ".repeat(indent);
        let est = |e: &Option<f64>| e.map(|e| format!(" (est {e:.1})")).unwrap_or_default();
        match self {
            PlanNode::IndexScan { pattern, perm, est: e } => {
                let via = perm.map(|p| format!(" via {p:?}")).unwrap_or_default();
                let _ = writeln!(out, "{pad}IndexScan {pattern}{via}{}", est(e));
            }
            PlanNode::RangeScan { pattern, ranged, lo, hi, members, est: e } => {
                let pos = match ranged {
                    RangePos::Predicate => 'p',
                    RangePos::Object => 'o',
                };
                let width = hi - lo;
                let name =
                    names.and_then(|f| f(*lo)).map(|n| format!(" ({n})")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{pad}RangeScan {pattern} {pos}∈[#u{lo}, #u{lo}+{width}){name} — \
                     {members} members{}",
                    est(e)
                );
            }
            PlanNode::SharedScan { id, pattern, est: e } => {
                let _ = writeln!(out, "{pad}SharedScan #{id} {pattern}{}", est(e));
            }
            PlanNode::Filter { pattern, input } => {
                let _ = writeln!(out, "{pad}Filter repeated-vars {pattern}");
                input.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::Inlj { input, pattern } => {
                let _ = writeln!(out, "{pad}Inlj probe {pattern}");
                input.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::RangeProbe { input, pattern, ranged, lo, hi, members } => {
                let pos = match ranged {
                    RangePos::Predicate => 'p',
                    RangePos::Object => 'o',
                };
                let width = hi - lo;
                let name =
                    names.and_then(|f| f(*lo)).map(|n| format!(" ({n})")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{pad}RangeProbe {pattern} {pos}∈[#u{lo}, #u{lo}+{width}){name} — \
                     {members} members"
                );
                input.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::HashJoin { left, right, step, est: e } => {
                let tag = step.map(|k| format!(" join[{k}]")).unwrap_or_default();
                let _ = writeln!(out, "{pad}HashJoin{tag}{}", est(e));
                left.render_into(out, indent + 1, max_members, names);
                right.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::MergeJoin { left, right, step, est: e, sort_elided } => {
                let tag = step.map(|k| format!(" join[{k}]")).unwrap_or_default();
                let mut notes: Vec<&str> = Vec::new();
                match sort_elided {
                    (true, true) => notes.push("sort elided"),
                    (true, false) => notes.push("sort elided: left"),
                    (false, true) => notes.push("sort elided: right"),
                    (false, false) => {}
                }
                // Gallop eligibility is decided at run time from actual
                // input sizes; annotate when the estimates already show
                // the ≥8× skew the kernel looks for.
                if let (Some(l), Some(r)) = (fragment_est(left), fragment_est(right)) {
                    if l >= 8.0 * r || r >= 8.0 * l {
                        notes.push("gallop");
                    }
                }
                let ann = if notes.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", notes.join(", "))
                };
                let _ = writeln!(out, "{pad}MergeJoin{tag}{ann}{}", est(e));
                left.render_into(out, indent + 1, max_members, names);
                right.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::NestedLoopJoin { left, right, step, est: e } => {
                let tag = step.map(|k| format!(" join[{k}]")).unwrap_or_default();
                let _ = writeln!(out, "{pad}NestedLoopJoin{tag}{}", est(e));
                left.render_into(out, indent + 1, max_members, names);
                right.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::Project { input, head, .. } => {
                let cols: Vec<String> = head.iter().map(|t| t.to_string()).collect();
                let _ = writeln!(out, "{pad}Project [{}]", cols.join(", "));
                input.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::TrueRow { .. } => {
                let _ = writeln!(out, "{pad}TrueRow");
            }
            PlanNode::HashUnion { idx, members, est: e, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}HashUnion fragment[{idx}] — {} member{}{}",
                    members.len(),
                    if members.len() == 1 { "" } else { "s" },
                    est(e)
                );
                for m in members.iter().take(max_members) {
                    m.render_into(out, indent + 1, max_members, names);
                }
                if members.len() > max_members {
                    let _ = writeln!(
                        out,
                        "{}… {} more members",
                        "  ".repeat(indent + 1),
                        members.len() - max_members
                    );
                }
            }
            PlanNode::ViewScan { idx, view, est: e, fallback, .. } => {
                let _ = writeln!(out, "{pad}ViewScan fragment[{idx}] view#{view}{}", est(e));
                let _ = writeln!(out, "{}fallback:", "  ".repeat(indent + 1));
                fallback.render_into(out, indent + 2, max_members, names);
            }
            PlanNode::Dedup { input, est: e } => {
                let _ = writeln!(out, "{pad}Dedup{}", est(e));
                input.render_into(out, indent + 1, max_members, names);
            }
            PlanNode::Empty { .. } => {
                let _ = writeln!(out, "{pad}Empty");
            }
        }
    }
}

/// The permutation key order of a scan, restricted to the pattern's
/// variable positions: the variable sequence the emitted relation's
/// rows are sorted by. Constants in the key prefix are equal across the
/// slice (skipped); a repeated variable contributes once — after the
/// repeated-variable filter its occurrences are equal, so sorting by
/// the first key occurrence is sorting by the variable.
pub(crate) fn scan_order(pattern: &StorePattern, perm: Perm) -> Vec<VarId> {
    let positions = pattern.positions();
    let mut out = Vec::new();
    for i in perm.key_positions() {
        if let Some(v) = positions[i].as_var() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

/// A node's row estimate, when it carries one (fragment leaves and
/// joins do).
fn fragment_est(node: &PlanNode) -> Option<f64> {
    match node {
        PlanNode::IndexScan { est, .. }
        | PlanNode::RangeScan { est, .. }
        | PlanNode::SharedScan { est, .. }
        | PlanNode::HashJoin { est, .. }
        | PlanNode::MergeJoin { est, .. }
        | PlanNode::NestedLoopJoin { est, .. }
        | PlanNode::ViewScan { est, .. }
        | PlanNode::HashUnion { est, .. }
        | PlanNode::Dedup { est, .. } => *est,
        _ => None,
    }
}

/// Resolves a raw term id to a printable name for plan rendering.
///
/// The store has no dictionary, so decoded names (e.g. the class behind
/// a `RangeScan` interval) are injected by the layer that owns one; the
/// store-only renderer prints raw `#uN` ids.
pub type TermNameResolver<'a> = dyn Fn(u32) -> Option<String> + 'a;

/// One factored common scan: a distinct [`StorePattern`] access path
/// referenced by two or more scan positions across the plan's union
/// members. The executor materializes it once (charging `tuples_scanned`
/// once) before fragment evaluation begins.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedScanDef {
    /// The factored pattern.
    pub pattern: StorePattern,
    /// How many scan positions reference it.
    pub uses: usize,
    /// Exact extent cardinality.
    pub est: Option<f64>,
}

/// One planned sideways-information-passing filter: after fragment join
/// step `step`'s left (accumulated) input is complete, a Bloom filter
/// over `keys` is built from it and fragment `target`'s union members
/// are probed against it before they reach the join. Planned only when
/// the profile's `sip_filters` knob is on and the target fragment
/// shares at least one head variable with the accumulated schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SipFilterDef {
    /// The fragment join step whose accumulated left side feeds the
    /// filter.
    pub step: usize,
    /// The fragment whose members probe the filter.
    pub target: usize,
    /// The join-key variables the filter covers.
    pub keys: Vec<VarId>,
}

/// One view binding of a plan: the canonical signature a
/// [`PlanNode::ViewScan`] resolves through the catalog at evaluation
/// time, plus the entry's tuple count at plan time (estimate only —
/// resolution is epoch-exact regardless).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewBindingDef {
    /// The canonical fragment signature.
    pub signature: ViewSignature,
    /// The matched entry's tuple count when the plan was lowered.
    pub tuples: usize,
}

/// A complete physical plan for one [`StoreJucq`](crate::ir::StoreJucq).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The operator tree (see [`PlanNode`] for the shape invariants).
    pub root: PlanNode,
    /// The plan-wide table of factored common scans.
    pub shared: Vec<SharedScanDef>,
    /// The query's output variables.
    pub head: Vec<VarId>,
    /// The fragment index whose union result is pipelined into the first
    /// join (every other fragment is charged as materialized); `None`
    /// with fewer than two fragments.
    pub pipelined: Option<usize>,
    /// Per-node cardinality estimates keyed by the executor's node
    /// labels (`fragment[i].union`, `join[k].hash_join`, `dedup`,
    /// `shared_scan[i]`), paired with measured rows by
    /// `explain_analyze`.
    pub estimates: Vec<(String, f64)>,
    /// Planned sideways-information-passing filters, in join-step
    /// order; empty when `sip_filters` is off or the plan has a single
    /// fragment. Non-empty plans are executed *staged* (fragments in
    /// join order) so each filter's build side exists before its target
    /// fragment runs.
    pub sip: Vec<SipFilterDef>,
    /// How many fragments had at least one collapsible run of members
    /// (consecutive-id constants), whether or not the profile's
    /// `range_scans` knob let the planner rewrite them. Feeds the query
    /// log's range-eligibility field.
    pub range_eligible: usize,
    /// How many [`PlanNode::RangeScan`] nodes the plan contains (one per
    /// collapsed member).
    pub range_scans: usize,
    /// The plan's view bindings, indexed by
    /// [`PlanNode::ViewScan`]`::view`. Empty unless the planner matched
    /// fragments against a catalog.
    pub views: Vec<ViewBindingDef>,
}

impl Plan {
    /// True iff the plan was proven empty at plan time.
    pub fn is_const_empty(&self) -> bool {
        matches!(self.root, PlanNode::Empty { .. })
    }

    /// The fragment [`PlanNode::HashUnion`] nodes, in fragment order
    /// (descending through [`PlanNode::ViewScan`] fallbacks).
    pub fn unions(&self) -> Vec<&PlanNode> {
        let mut out = Vec::new();
        self.root.collect_unions(&mut out);
        out.sort_by_key(|n| n.as_union().map(|(i, _, _)| i).unwrap_or(usize::MAX));
        out
    }

    /// The fragment leaves of the join tree, in fragment order: each is
    /// a [`PlanNode::ViewScan`] (for matched fragments) or a
    /// [`PlanNode::HashUnion`].
    pub fn fragment_leaves(&self) -> Vec<&PlanNode> {
        fn walk<'a>(node: &'a PlanNode, out: &mut Vec<&'a PlanNode>) {
            match node {
                PlanNode::HashUnion { .. } | PlanNode::ViewScan { .. } => out.push(node),
                PlanNode::Filter { input, .. }
                | PlanNode::Inlj { input, .. }
                | PlanNode::RangeProbe { input, .. }
                | PlanNode::Project { input, .. }
                | PlanNode::Dedup { input, .. } => walk(input, out),
                PlanNode::HashJoin { left, right, .. }
                | PlanNode::MergeJoin { left, right, .. }
                | PlanNode::NestedLoopJoin { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out.sort_by_key(|n| match n {
            PlanNode::HashUnion { idx, .. } | PlanNode::ViewScan { idx, .. } => *idx,
            _ => usize::MAX,
        });
        out
    }

    /// How many fragments the plan serves as [`PlanNode::ViewScan`]s.
    pub fn view_scans(&self) -> usize {
        self.views.len()
    }

    /// Total plan size: tree nodes plus shared-scan table entries.
    pub fn node_count(&self) -> usize {
        self.root.node_count() + self.shared.len()
    }

    /// Render the plan as an indented operator tree, truncating each
    /// union to its first `max_members` members.
    pub fn render(&self, max_members: usize) -> String {
        self.render_with(max_members, None)
    }

    /// [`Plan::render`] with a term-name resolver: `RangeScan` nodes
    /// additionally print the decoded name of their interval's low
    /// endpoint (the subtree root, e.g. `(Student)`).
    pub fn render_with(&self, max_members: usize, names: Option<&TermNameResolver<'_>>) -> String {
        let mut out = String::new();
        if !self.shared.is_empty() {
            out.push_str("Shared scans:\n");
            for (i, def) in self.shared.iter().enumerate() {
                let est = def.est.map(|e| format!(", est {e:.1}")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  [{i}] {} — {} use{}{est}",
                    def.pattern,
                    def.uses,
                    if def.uses == 1 { "" } else { "s" }
                );
            }
        }
        if let Some(i) = self.pipelined {
            let _ = writeln!(out, "Pipelined fragment: {i}");
        }
        if !self.sip.is_empty() {
            out.push_str("SIP filters:\n");
            for def in &self.sip {
                let keys: Vec<String> = def.keys.iter().map(|v| format!("?{v}")).collect();
                let _ = writeln!(
                    out,
                    "  join[{}] build → fragment[{}] probe on [{}]",
                    def.step,
                    def.target,
                    keys.join(", ")
                );
            }
        }
        self.root.render_into(&mut out, 0, max_members, names);
        out
    }
}
