//! # jucq-store — the relational evaluation engine substrate
//!
//! The paper evaluates reformulated queries by handing them "to a query
//! evaluation engine, which can be an RDBMS, a dedicated RDF storage and
//! query processing engine, or more generally any system capable of
//! evaluating selections, projections, joins and unions" (§1). Its
//! experiments run on PostgreSQL, DB2 and MySQL over a dictionary-encoded
//! `Triples(s,p,o)` table "indexed by all permutations of the s,p,o
//! columns, leading to a total of 6 indexes" (§5.1).
//!
//! This crate is that substrate, built from scratch:
//!
//! * [`table::TripleTable`] — the triples table plus its six clustered
//!   permutation indexes; triple-pattern scans are binary-search prefix
//!   ranges and pattern cardinalities are **exact** and O(log n);
//! * [`ir`] — a minimal relational IR: triple patterns, conjunctive
//!   queries (σ/π/⋈ over the table), unions thereof, and joins of unions
//!   (the shapes UCQ / SCQ / JUCQ reformulations compile to);
//! * [`exec`] — the executor: index-nested-loop and hash CQ pipelines,
//!   hash / sort-merge / block-nested-loop joins of materialized
//!   relations, unions, duplicate elimination;
//! * [`stats::Statistics`] — per-predicate statistics and System-R-style
//!   cardinality estimation for CQs/UCQs/JUCQs;
//! * [`profile::EngineProfile`] — knobs emulating the behavioural
//!   differences between the paper's three RDBMSs (join algorithm,
//!   materialization policy, union-size limits, memory budget);
//! * [`plan`] — the physical plan layer: a typed plan tree
//!   ([`plan::Plan`]) produced by the rewrite-pass [`plan::Planner`]
//!   (empty-member pruning, member dedup/subsumption, common-scan
//!   factoring, join-order selection, operator choice), interpreted by
//!   the executor;
//! * [`engine::Store`] — the facade: load a graph, plan and evaluate
//!   queries under a deadline, expose failures (`stack depth`-style
//!   errors, memory exhaustion, timeouts) as typed
//!   [`error::EngineError`]s so the experiment harness can render the
//!   paper's "missing bars";
//! * [`internal_cost`] — the engine's *own* cost estimator, playing the
//!   role of "the RDBMS's internal cost estimation function" that
//!   Figure 9 compares against the paper's analytic model.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod internal_cost;
pub mod ir;
pub mod plan;
pub mod profile;
pub mod relation;
pub mod stats;
pub mod table;
pub mod views;

pub use engine::{ExecProfile, PlanNodeReport, Store};
pub use error::EngineError;
pub use exec::Counters;
pub use ir::{PatternTerm, StoreCq, StoreJucq, StorePattern, StoreUcq, VarId};
pub use plan::{
    collapsible_runs, CollapsibleRun, Plan, PlanNode, Planner, SharedScanDef, TermNameResolver,
};
pub use profile::{default_parallelism, EngineProfile, JoinAlgo};
pub use relation::Relation;
pub use stats::Statistics;
pub use table::{RangePos, TripleTable};
pub use views::{
    DeltaFootprint, ViewCatalog, ViewCatalogStats, ViewFootprint, ViewSignature, ViewSource,
};
