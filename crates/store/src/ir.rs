//! The relational intermediate representation handed to the engine.
//!
//! Reformulated queries reach the engine in one of three shapes (§3 of
//! the paper): a UCQ (one fragment), an SCQ (one single-pattern fragment
//! per triple) or a general JUCQ (a join of cover-fragment UCQs). All
//! three compile to a [`StoreJucq`]; a plain CQ is a one-CQ UCQ inside a
//! one-fragment JUCQ.
//!
//! Variables are identified by dense [`VarId`]s scoped to the whole
//! JUCQ, so fragments join simply on shared ids.

use std::fmt;

use jucq_model::TermId;
use serde::{Deserialize, Serialize};

/// A query variable, dense within one [`StoreJucq`].
pub type VarId = u16;

/// The distinct variables of one triple pattern, held inline.
///
/// A pattern has at most three variable positions, so the planner's hot
/// loops (join ordering, scan factoring, connectivity checks) never need
/// a heap allocation to look at them. Derefs to `&[VarId]` and iterates
/// by value, so it drops into most places a `Vec<VarId>` used to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternVars {
    vars: [VarId; 3],
    len: u8,
}

impl PatternVars {
    /// An empty variable list.
    pub const EMPTY: PatternVars = PatternVars { vars: [0; 3], len: 0 };

    /// Append a variable if it is not already present.
    fn push_dedup(&mut self, v: VarId) {
        if !self.as_slice().contains(&v) {
            self.vars[self.len as usize] = v;
            self.len += 1;
        }
    }

    /// The variables as a slice, in first-occurrence position order.
    pub fn as_slice(&self) -> &[VarId] {
        &self.vars[..self.len as usize]
    }

    /// Copy into an owned `Vec` (for APIs that store the list).
    pub fn to_vec(&self) -> Vec<VarId> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for PatternVars {
    type Target = [VarId];

    fn deref(&self) -> &[VarId] {
        self.as_slice()
    }
}

impl IntoIterator for PatternVars {
    type Item = VarId;
    type IntoIter = std::iter::Take<std::array::IntoIter<VarId, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.vars.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a PatternVars {
    type Item = VarId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, VarId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

/// One position of a triple pattern: a constant or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PatternTerm {
    /// A dictionary-encoded constant.
    Const(TermId),
    /// A variable.
    Var(VarId),
}

impl PatternTerm {
    /// The constant, if this position is bound.
    pub fn as_const(self) -> Option<TermId> {
        match self {
            PatternTerm::Const(id) => Some(id),
            PatternTerm::Var(_) => None,
        }
    }

    /// The variable, if this position is free.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Const(id) => write!(f, "{id:?}"),
            PatternTerm::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A triple pattern over the `Triples(s,p,o)` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StorePattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Property position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl StorePattern {
    /// Build a pattern from its three positions.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        StorePattern { s, p, o }
    }

    /// The three positions in `(s, p, o)` order.
    pub fn positions(&self) -> [PatternTerm; 3] {
        [self.s, self.p, self.o]
    }

    /// The distinct variables of the pattern, in position order. Stack
    /// allocated: calling this in a planning loop costs nothing.
    pub fn variables(&self) -> PatternVars {
        let mut out = PatternVars::EMPTY;
        for pos in self.positions() {
            if let PatternTerm::Var(v) = pos {
                out.push_dedup(v);
            }
        }
        out
    }

    /// The constants of the pattern as an index-lookup key
    /// `[s?, p?, o?]`.
    pub fn bound(&self) -> [Option<TermId>; 3] {
        [self.s.as_const(), self.p.as_const(), self.o.as_const()]
    }

    /// True iff some variable occurs twice (e.g. `?x p ?x`), requiring a
    /// post-scan equality filter.
    pub fn has_repeated_var(&self) -> bool {
        let free = self.positions().iter().filter(|p| p.as_var().is_some()).count();
        free > self.variables().len()
    }
}

impl fmt::Display for StorePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.s, self.p, self.o)
    }
}

/// A conjunctive query: a join of triple patterns projected onto `head`.
///
/// Head positions may be **constants**: the variable-instantiation
/// reformulation rules substitute a head variable by a class/property
/// (paper Example 4 item (1): `q(x, Book):- x rdf:type Book`), so a
/// member of a reformulated union can output a constant column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StoreCq {
    /// The body patterns (joined on shared variables).
    pub patterns: Vec<StorePattern>,
    /// The output terms, positionally aligned with the enclosing UCQ's
    /// head variables.
    pub head: Vec<PatternTerm>,
}

impl StoreCq {
    /// Build a CQ with an arbitrary head.
    pub fn new(patterns: Vec<StorePattern>, head: Vec<PatternTerm>) -> Self {
        StoreCq { patterns, head }
    }

    /// Build a CQ whose head is all variables (the common case).
    pub fn with_var_head(patterns: Vec<StorePattern>, head: Vec<VarId>) -> Self {
        StoreCq { patterns, head: head.into_iter().map(PatternTerm::Var).collect() }
    }

    /// The head variables (skipping constant positions).
    pub fn head_vars(&self) -> Vec<VarId> {
        self.head.iter().filter_map(|t| t.as_var()).collect()
    }

    /// All distinct variables occurring in the body, in first-occurrence
    /// order.
    ///
    /// The outer collection is unbounded (bodies can be arbitrarily
    /// long) so it stays a `Vec`, but the inner per-pattern walk goes
    /// through the allocation-free [`StorePattern::variables`]. Callers
    /// that only need to *visit* the variables should prefer
    /// [`StoreCq::body_var_iter`].
    pub fn body_variables(&self) -> Vec<VarId> {
        let mut out = Vec::with_capacity(self.patterns.len() + 1);
        for v in self.body_var_iter() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Every variable occurrence in the body, in position order and
    /// **without** cross-pattern deduplication — zero allocation.
    pub fn body_var_iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.patterns.iter().flat_map(|p| p.variables())
    }
}

/// A union of conjunctive queries; all members share the same head.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StoreUcq {
    /// The union members.
    pub cqs: Vec<StoreCq>,
    /// The common head (column order of the result).
    pub head: Vec<VarId>,
}

impl StoreUcq {
    /// Build a UCQ; every member's head must align positionally with
    /// `head` (same arity; members may bind positions to constants).
    ///
    /// # Panics
    /// Panics (debug) if a member's head arity differs.
    pub fn new(cqs: Vec<StoreCq>, head: Vec<VarId>) -> Self {
        debug_assert!(
            cqs.iter().all(|cq| cq.head.len() == head.len()),
            "UCQ members must share the head arity"
        );
        StoreUcq { cqs, head }
    }

    /// Number of union terms (the paper's `|q_ref|`).
    pub fn len(&self) -> usize {
        self.cqs.len()
    }

    /// True iff the union has no members (empty result).
    pub fn is_empty(&self) -> bool {
        self.cqs.is_empty()
    }
}

/// A join of UCQ fragments projected onto `head` — the engine-level form
/// of a JUCQ reformulation (Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StoreJucq {
    /// The fragments, joined pairwise on shared head variables.
    pub fragments: Vec<StoreUcq>,
    /// The final output variables.
    pub head: Vec<VarId>,
}

impl StoreJucq {
    /// Build a JUCQ.
    pub fn new(fragments: Vec<StoreUcq>, head: Vec<VarId>) -> Self {
        StoreJucq { fragments, head }
    }

    /// Wrap a single UCQ (the classical reformulation shape).
    pub fn from_ucq(ucq: StoreUcq) -> Self {
        let head = ucq.head.clone();
        StoreJucq { fragments: vec![ucq], head }
    }

    /// Total number of union terms across fragments.
    pub fn union_terms(&self) -> usize {
        self.fragments.iter().map(StoreUcq::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(TermId::new(TermKind::Uri, i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    #[test]
    fn pattern_variables_are_deduped_in_order() {
        let p = StorePattern::new(v(2), c(0), v(1));
        assert_eq!(p.variables().as_slice(), &[2, 1]);
        let q = StorePattern::new(v(3), v(3), v(3));
        assert_eq!(q.variables().as_slice(), &[3]);
        assert_eq!(q.variables().into_iter().collect::<Vec<_>>(), vec![3]);
        assert!(StorePattern::new(c(0), c(1), c(2)).variables().is_empty());
    }

    #[test]
    fn repeated_var_detection() {
        assert!(StorePattern::new(v(0), c(1), v(0)).has_repeated_var());
        assert!(StorePattern::new(v(0), v(0), c(1)).has_repeated_var());
        assert!(!StorePattern::new(v(0), c(1), v(1)).has_repeated_var());
        assert!(!StorePattern::new(c(0), c(1), c(2)).has_repeated_var());
    }

    #[test]
    fn bound_key_extraction() {
        let p = StorePattern::new(v(0), c(5), v(1));
        let [s, pp, o] = p.bound();
        assert!(s.is_none() && o.is_none());
        assert_eq!(pp, Some(TermId::new(TermKind::Uri, 5)));
    }

    #[test]
    fn cq_body_variables() {
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(1), c(2), v(2))],
            vec![0, 2],
        );
        assert_eq!(cq.body_variables(), vec![0, 1, 2]);
    }

    #[test]
    fn jucq_union_terms() {
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(1), v(1))], vec![0, 1]);
        let ucq = StoreUcq::new(vec![cq.clone(), cq.clone()], vec![0, 1]);
        let jucq = StoreJucq::new(vec![ucq.clone(), ucq], vec![0, 1]);
        assert_eq!(jucq.union_terms(), 4);
    }

    #[test]
    fn from_ucq_preserves_head() {
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(4), c(1), v(7))], vec![7, 4]);
        let jucq = StoreJucq::from_ucq(StoreUcq::new(vec![cq], vec![7, 4]));
        assert_eq!(jucq.head, vec![7, 4]);
        assert_eq!(jucq.fragments.len(), 1);
    }

    #[test]
    fn display_forms() {
        let p = StorePattern::new(v(0), c(1), v(1));
        assert_eq!(p.to_string(), "(?0 #u1 ?1)");
    }
}
