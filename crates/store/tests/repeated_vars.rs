//! Repeated-variable patterns (`?x p ?x`) across the whole execution
//! matrix: every engine profile, every fragment-join algorithm, both CQ
//! strategies (index-nested-loop and hash), parallelism 1/2/8, and scan
//! sharing on/off. A repeated variable constrains a single scan (the
//! planner inserts a `Filter` node over the scan) and also the INLJ
//! probe path (`repeated_vars_consistent`); every configuration must
//! produce the same set-semantics answer.

use jucq_model::term::TermKind;
use jucq_model::{TermId, TripleId};
use jucq_store::{
    EngineProfile, JoinAlgo, PatternTerm, Relation, Store, StoreCq, StoreJucq, StorePattern,
    StoreUcq, VarId,
};

fn id(i: u32) -> TermId {
    TermId::new(TermKind::Uri, i)
}

fn t(s: u32, p: u32, o: u32) -> TripleId {
    TripleId::new(id(s), id(p), id(o))
}

fn c(i: u32) -> PatternTerm {
    PatternTerm::Const(id(i))
}

fn v(i: VarId) -> PatternTerm {
    PatternTerm::Var(i)
}

/// Self-loops on predicates 10 and 11, a chain on 10, and fan-out on 12.
fn sample_triples() -> Vec<TripleId> {
    let mut data = Vec::new();
    for i in 0..5 {
        data.push(t(i, 10, i)); // self-loops 0..5 on p10
    }
    for i in 0..10 {
        data.push(t(i, 10, i + 1)); // chain (never a self-loop)
    }
    for i in (0..8).step_by(2) {
        data.push(t(i, 11, i)); // self-loops 0,2,4,6 on p11
    }
    for i in 0..10 {
        data.push(t(i, 12, i % 3));
        data.push(t(i, 12, (i + 1) % 3));
    }
    data
}

/// Fragment A: x is a self-loop subject on p10 OR on p11 (both members
/// are `?0 p ?0` scans). Fragment B: `(?0 12 ?1) ⋈ (?0 10 ?0)` — the
/// repeated variable also exercised in probe/join position.
fn query() -> StoreJucq {
    let frag_a = StoreUcq::new(
        vec![
            StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(0))], vec![0]),
            StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(0))], vec![0]),
        ],
        vec![0],
    );
    let frag_b = StoreUcq::new(
        vec![StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(12), v(1)), StorePattern::new(v(0), c(10), v(0))],
            vec![0, 1],
        )],
        vec![0, 1],
    );
    StoreJucq::new(vec![frag_a, frag_b], vec![0, 1])
}

/// The expected answer, computed brute-force from the raw triples.
fn expected_rows() -> Vec<Vec<TermId>> {
    let data = sample_triples();
    let loop10: Vec<u32> = (0..20).filter(|&x| data.contains(&t(x, 10, x))).collect();
    let loop11: Vec<u32> = (0..20).filter(|&x| data.contains(&t(x, 11, x))).collect();
    let mut rows: Vec<Vec<TermId>> = Vec::new();
    for x in 0..20u32 {
        let in_a = loop10.contains(&x) || loop11.contains(&x);
        if !in_a || !loop10.contains(&x) {
            continue;
        }
        for y in 0..20u32 {
            if data.contains(&t(x, 12, y)) && !rows.contains(&vec![id(x), id(y)]) {
                rows.push(vec![id(x), id(y)]);
            }
        }
    }
    rows.sort();
    rows
}

fn sorted_rows(r: &Relation) -> Vec<Vec<TermId>> {
    let mut rows: Vec<Vec<TermId>> = r.rows().map(|row| row.to_vec()).collect();
    rows.sort();
    rows
}

#[test]
fn repeated_vars_agree_across_the_full_execution_matrix() {
    let data = sample_triples();
    let expected = expected_rows();
    assert!(!expected.is_empty(), "the fixture must produce answers");

    let bases: [fn() -> EngineProfile; 4] = [
        EngineProfile::pg_like,
        EngineProfile::db2_like,
        EngineProfile::mysql_like,
        EngineProfile::native_like,
    ];
    let algos = [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::BlockNestedLoop];
    for base in bases {
        for algo in algos {
            for threads in [1usize, 2, 8] {
                for inlj in [true, false] {
                    for share in [true, false] {
                        let mut profile = base()
                            .with_fragment_join(algo)
                            .with_parallelism(threads)
                            .with_scan_sharing(share);
                        profile.index_nested_loop_cq = inlj;
                        let label = format!(
                            "{} algo={algo:?} threads={threads} inlj={inlj} share={share}",
                            profile.name
                        );
                        let store = Store::from_triples(&data, profile);
                        let out = store
                            .eval_jucq(&query())
                            .unwrap_or_else(|e| panic!("{label}: evaluation failed: {e}"));
                        assert_eq!(sorted_rows(&out.relation), expected, "{label}");
                    }
                }
            }
        }
    }
}

#[test]
fn repeated_var_scan_matches_unfiltered_scan_plus_filter() {
    // Sanity on the scan level: `?0 10 ?0` returns exactly the p10
    // self-loops, under both CQ strategies.
    let data = sample_triples();
    for inlj in [true, false] {
        let mut profile = EngineProfile::pg_like();
        profile.index_nested_loop_cq = inlj;
        let store = Store::from_triples(&data, profile);
        let cq = StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(0))], vec![0]);
        let out = store.eval_cq(&cq).unwrap();
        let got = sorted_rows(&out.relation);
        let want: Vec<Vec<TermId>> = (0..5u32).map(|i| vec![id(i)]).collect();
        assert_eq!(got, want, "inlj={inlj}");
    }
}

#[test]
fn all_three_join_algorithms_agree_on_counters_free_answers() {
    // The three fragment-join algorithms must agree row-for-row on the
    // repeated-variable query even though their counters differ.
    let data = sample_triples();
    let reference = {
        let store = Store::from_triples(&data, EngineProfile::pg_like().with_parallelism(1));
        sorted_rows(&store.eval_jucq(&query()).unwrap().relation)
    };
    for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::BlockNestedLoop] {
        let store = Store::from_triples(
            &data,
            EngineProfile::pg_like().with_fragment_join(algo).with_parallelism(1),
        );
        assert_eq!(
            sorted_rows(&store.eval_jucq(&query()).unwrap().relation),
            reference,
            "{algo:?}"
        );
    }
}
