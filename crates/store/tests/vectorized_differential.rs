//! Vectorized-execution differential matrix: the batched kernels and
//! the sideways-information-passing (SIP) Bloom filters must be pure
//! performance features. Across batch on/off, SIP on/off, every engine
//! profile, and 1/2/8 worker threads, the answer multiset is identical;
//! with SIP fixed, batch on/off additionally reports *identical*
//! counters (scanned/joined/materialized/deduped and SIP probe/drop
//! totals), so the batched operators are observably the row-at-a-time
//! operators, just faster.

use jucq_model::term::TermKind;
use jucq_model::{TermId, TripleId};
use jucq_store::{
    EngineError, EngineProfile, PatternTerm, Relation, Store, StoreCq, StoreJucq, StorePattern,
    StoreUcq, VarId,
};

fn id(i: u32) -> TermId {
    TermId::new(TermKind::Uri, i)
}

fn t(s: u32, p: u32, o: u32) -> TripleId {
    TripleId::new(id(s), id(p), id(o))
}

fn c(i: u32) -> PatternTerm {
    PatternTerm::Const(id(i))
}

fn v(i: VarId) -> PatternTerm {
    PatternTerm::Var(i)
}

/// A chain on p10, fan-out on p11 and p12, and self-loops on p13 — big
/// enough that 1024-row batches are partially filled and a 3-row batch
/// size crosses many batch boundaries, small enough for a full matrix.
fn sample_triples() -> Vec<TripleId> {
    let mut data = Vec::new();
    for i in 0..40 {
        data.push(t(i, 10, i + 1));
    }
    for i in 0..40 {
        data.push(t(i, 11, i % 7));
        data.push(t(i, 11, (i + 3) % 7));
    }
    for i in 0..20 {
        data.push(t(i % 7, 12, i));
    }
    for i in (0..40).step_by(3) {
        data.push(t(i, 13, i));
    }
    data
}

/// Three joined fragments (so the planner places SIP filters on two
/// join steps) with a two-member union in the middle fragment.
fn query() -> StoreJucq {
    let fa = StoreUcq::new(
        vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1])],
        vec![0, 1],
    );
    let fb = StoreUcq::new(
        vec![
            StoreCq::with_var_head(vec![StorePattern::new(v(1), c(10), v(2))], vec![1, 2]),
            StoreCq::with_var_head(vec![StorePattern::new(v(1), c(13), v(2))], vec![1, 2]),
        ],
        vec![1, 2],
    );
    let fc = StoreUcq::new(
        vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(11), v(3))], vec![0, 3])],
        vec![0, 3],
    );
    StoreJucq::new(vec![fa, fb, fc], vec![0, 1, 2, 3])
}

fn sorted_rows(r: &Relation) -> Vec<Vec<TermId>> {
    let mut rows: Vec<Vec<TermId>> = r.rows().map(|row| row.to_vec()).collect();
    rows.sort();
    rows
}

/// Every (batch, sip, profile, threads) cell answers identically, and
/// within one (sip, profile, threads) cell the three batch settings
/// (off / tiny / default) report identical counters.
#[test]
fn batch_and_sip_matrix_is_differentially_identical() {
    let data = sample_triples();
    let q = query();

    let baseline = {
        let profile =
            EngineProfile::pg_like().with_batch_size(0).with_sip_filters(false).with_parallelism(1);
        let store = Store::from_triples(&data, profile);
        sorted_rows(&store.eval_jucq(&q).unwrap().relation)
    };
    assert!(!baseline.is_empty(), "the fixture must produce answers");

    let bases: [fn() -> EngineProfile; 4] = [
        EngineProfile::pg_like,
        EngineProfile::db2_like,
        EngineProfile::mysql_like,
        EngineProfile::native_like,
    ];
    // batch_rows = 0 disables vectorization; 3 forces many partial
    // batches; 1024 is the default target.
    let batch_sizes = [0usize, 3, 1024];
    for base in bases {
        for sip in [true, false] {
            for threads in [1usize, 2, 8] {
                let mut counters = Vec::new();
                for batch in batch_sizes {
                    let profile = base()
                        .with_batch_size(batch)
                        .with_sip_filters(sip)
                        .with_parallelism(threads);
                    let label =
                        format!("{} batch={batch} sip={sip} threads={threads}", profile.name);
                    let store = Store::from_triples(&data, profile);
                    let out = store
                        .eval_jucq(&q)
                        .unwrap_or_else(|e| panic!("{label}: evaluation failed: {e}"));
                    assert_eq!(sorted_rows(&out.relation), baseline, "{label}");
                    counters.push((label, out.counters));
                }
                // Batch on/off is counter-identical at fixed SIP: same
                // tuples scanned, joined, materialized, deduped, and
                // the same SIP probe/drop totals.
                let (ref_label, reference) = &counters[0];
                for (label, got) in &counters[1..] {
                    assert_eq!(got, reference, "{label} counters diverge from {ref_label}");
                }
            }
        }
    }
}

/// SIP filters only ever drop rows the join would discard anyway, and
/// on this fixture they provably drop some: probe/drop counters are
/// live when the knob is on and zero when it is off.
#[test]
fn sip_filters_drop_tuples_without_changing_answers() {
    let data = sample_triples();
    let q = query();
    let on = Store::from_triples(&data, EngineProfile::pg_like()).eval_jucq(&q).unwrap();
    let off = Store::from_triples(&data, EngineProfile::pg_like().with_sip_filters(false))
        .eval_jucq(&q)
        .unwrap();
    assert_eq!(sorted_rows(&on.relation), sorted_rows(&off.relation));
    assert!(on.counters.sip_probes > 0, "filters ran: {:?}", on.counters);
    assert!(on.counters.sip_drops > 0, "fixture is selective: {:?}", on.counters);
    assert!(on.counters.sip_drops <= on.counters.sip_probes);
    assert_eq!(off.counters.sip_probes, 0, "knob off probes nothing");
    assert_eq!(off.counters.sip_drops, 0);
    // The filters shrink the join inputs, which the join counter sees.
    assert!(
        on.counters.tuples_joined <= off.counters.tuples_joined,
        "SIP must not inflate join work: on={:?} off={:?}",
        on.counters,
        off.counters
    );
}

/// A memory-budget breach on one worker still aborts the whole query
/// with the originating error when the breach happens mid-batch under
/// batched parallel execution.
#[test]
fn budget_breach_aborts_batched_parallel_runs() {
    let data = sample_triples();
    let q = query();
    for batch in [3usize, 1024] {
        for threads in [1usize, 4] {
            let profile = EngineProfile::pg_like()
                .with_batch_size(batch)
                .with_parallelism(threads)
                .with_memory_budget(10);
            let err = Store::from_triples(&data, profile)
                .eval_jucq(&q)
                .expect_err("a 10-tuple budget cannot hold this query");
            assert!(
                matches!(err, EngineError::MemoryBudgetExceeded { .. }),
                "batch={batch} threads={threads}: expected a budget breach, got {err:?}"
            );
        }
    }
}
