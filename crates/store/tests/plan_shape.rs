//! Plan-shape snapshots: the exact rendered physical plan for a set of
//! fixed queries over a fixed micro-dataset. These pin the planner's
//! observable output — pass ordering, shared-scan factoring, pipelining
//! choice, operator selection — so an accidental behaviour change shows
//! up as a readable diff, not a silent perf regression.

use jucq_model::term::TermKind;
use jucq_model::{TermId, TripleId};
use jucq_store::{
    EngineProfile, JoinAlgo, PatternTerm, Store, StoreCq, StoreJucq, StorePattern, StoreUcq, VarId,
};

fn id(i: u32) -> TermId {
    TermId::new(TermKind::Uri, i)
}

fn t(s: u32, p: u32, o: u32) -> TripleId {
    TripleId::new(id(s), id(p), id(o))
}

fn c(i: u32) -> PatternTerm {
    PatternTerm::Const(id(i))
}

fn v(i: VarId) -> PatternTerm {
    PatternTerm::Var(i)
}

/// A p10 chain, two p11 self-loops, and p12 fan-out.
fn store(profile: EngineProfile) -> Store {
    let mut data = Vec::new();
    for i in 0..6 {
        data.push(t(i, 10, i + 1));
    }
    data.push(t(0, 11, 0));
    data.push(t(2, 11, 2));
    for i in 0..6 {
        data.push(t(i, 12, i % 2));
    }
    Store::from_triples(&data, profile)
}

fn member(patterns: Vec<StorePattern>, head: Vec<VarId>) -> StoreCq {
    StoreCq::with_var_head(patterns, head)
}

fn render(q: &StoreJucq, profile: EngineProfile) -> String {
    let s = store(profile);
    s.plan_jucq(q).expect("admitted").render(10)
}

/// Two members of one fragment share the cheap (?0 #u11 ?1) leaf: the
/// factoring pass lifts it into the shared-scan table and both members
/// reference entry #0.
#[test]
fn shared_scan_factoring_snapshot() {
    let frag = StoreUcq::new(
        vec![
            member(
                vec![StorePattern::new(v(0), c(11), v(2)), StorePattern::new(v(0), c(10), v(1))],
                vec![0, 1],
            ),
            member(
                vec![StorePattern::new(v(0), c(11), v(2)), StorePattern::new(v(1), c(10), v(0))],
                vec![0, 1],
            ),
        ],
        vec![0, 1],
    );
    let q = StoreJucq::from_ucq(frag);
    let got = render(&q, EngineProfile::pg_like());
    let want = "\
Shared scans:
  [0] (?0 #u11 ?2) — 2 uses, est 2.0
Dedup (est 4.0)
  Project [?0, ?1]
    HashUnion fragment[0] — 2 members (est 4.0)
      Project [?0, ?1]
        Inlj probe (?0 #u10 ?1)
          SharedScan #0 (?0 #u11 ?2) (est 2.0)
      Project [?0, ?1]
        Inlj probe (?1 #u10 ?0)
          SharedScan #0 (?0 #u11 ?2) (est 2.0)
";
    assert_eq!(got, want, "got:\n{got}");
}

/// Disabling scan sharing produces the same tree with plain index
/// scans and no shared table.
#[test]
fn unshared_baseline_snapshot() {
    let frag = StoreUcq::new(
        vec![
            member(
                vec![StorePattern::new(v(0), c(11), v(2)), StorePattern::new(v(0), c(10), v(1))],
                vec![0, 1],
            ),
            member(
                vec![StorePattern::new(v(0), c(11), v(2)), StorePattern::new(v(1), c(10), v(0))],
                vec![0, 1],
            ),
        ],
        vec![0, 1],
    );
    let q = StoreJucq::from_ucq(frag);
    let got = render(&q, EngineProfile::pg_like().with_scan_sharing(false));
    let want = "\
Dedup (est 4.0)
  Project [?0, ?1]
    HashUnion fragment[0] — 2 members (est 4.0)
      Project [?0, ?1]
        Inlj probe (?0 #u10 ?1)
          IndexScan (?0 #u11 ?2) (est 2.0)
      Project [?0, ?1]
        Inlj probe (?1 #u10 ?0)
          IndexScan (?0 #u11 ?2) (est 2.0)
";
    assert_eq!(got, want, "got:\n{got}");
}

/// Two fragments: the larger-estimate fragment is pipelined, the other
/// materialized; the fragment-level join follows the profile (hash for
/// pg-like, block-nested-loop for mysql-like).
#[test]
fn two_fragment_join_snapshot_pg_vs_mysql() {
    let fa = StoreUcq::new(
        vec![member(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1])],
        vec![0, 1],
    );
    let fb = StoreUcq::new(
        vec![member(vec![StorePattern::new(v(0), c(11), v(2))], vec![0, 2])],
        vec![0, 2],
    );
    let q = StoreJucq::new(vec![fa, fb], vec![0, 1, 2]);

    // Both single-member fragments emit in join-key order, so the
    // order-aware pass costs the fully sort-elided merge below the
    // profile's hash join and lowers a MergeJoin instead.
    let pg = render(&q, EngineProfile::pg_like());
    let want_pg = "\
Pipelined fragment: 0
SIP filters:
  join[0] build → fragment[0] probe on [?0]
Dedup (est 2.0)
  Project [?0, ?1, ?2]
    MergeJoin join[0] (sort elided) (est 2.0)
      HashUnion fragment[1] — 1 member (est 2.0)
        Project [?0, ?2]
          IndexScan (?0 #u11 ?2) (est 2.0)
      HashUnion fragment[0] — 1 member (est 6.0)
        Project [?0, ?1]
          IndexScan (?0 #u10 ?1) (est 6.0)
";
    assert_eq!(pg, want_pg, "got:\n{pg}");

    // With order-awareness off the profile's hash join is kept.
    let flat = render(&q, EngineProfile::pg_like().with_order_aware(false));
    assert!(flat.contains("HashJoin join[0] (est 2.0)"), "knob off keeps hash:\n{flat}");

    // mysql-like swaps the join algorithm; its derived-table copies are
    // charged per union at execution time (`finish_union`), so the
    // join-level pipelining choice is rendered the same way.
    let my = render(&q, EngineProfile::mysql_like());
    assert!(my.contains("NestedLoopJoin join[0]"), "mysql uses BNL:\n{my}");
    assert!(my.contains("Pipelined fragment: 0"), "{my}");
}

/// SIP filter placement: a planned filter targets the fragment joined
/// in at each step, keyed on the step's shared variables, and renders
/// in its own plan section; turning the knob off removes the section,
/// and a disconnected (cartesian) join step plans no filter.
#[test]
fn sip_filter_placement_snapshot() {
    let fa = StoreUcq::new(
        vec![member(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1])],
        vec![0, 1],
    );
    let fb = StoreUcq::new(
        vec![member(vec![StorePattern::new(v(0), c(11), v(2))], vec![0, 2])],
        vec![0, 2],
    );
    let fc = StoreUcq::new(
        vec![member(vec![StorePattern::new(v(1), c(12), v(3))], vec![1, 3])],
        vec![1, 3],
    );
    let q = StoreJucq::new(vec![fa.clone(), fb.clone(), fc], vec![0, 1, 2, 3]);
    let got = render(&q, EngineProfile::pg_like());
    let sip_section = "\
SIP filters:
  join[0] build → fragment[0] probe on [?0]
  join[1] build → fragment[2] probe on [?1]
";
    assert!(got.contains(sip_section), "got:\n{got}");

    let off = render(&q, EngineProfile::pg_like().with_sip_filters(false));
    assert!(!off.contains("SIP filters:"), "knob off removes the section:\n{off}");

    // Disconnected fragments (no shared head variable) join as a
    // cartesian product — no key, no filter.
    let fd = StoreUcq::new(
        vec![member(vec![StorePattern::new(v(5), c(12), v(6))], vec![5, 6])],
        vec![5, 6],
    );
    let disconnected = StoreJucq::new(vec![fa, fd], vec![0, 1, 5, 6]);
    let got = render(&disconnected, EngineProfile::pg_like());
    assert!(!got.contains("SIP filters:"), "cartesian step plans no filter:\n{got}");
}

/// Duplicate members and empty-extent members disappear from the plan;
/// a repeated-variable pattern gets its Filter node.
#[test]
fn rewrite_passes_snapshot() {
    let keep = member(vec![StorePattern::new(v(0), c(11), v(0))], vec![0]);
    let dup = keep.clone();
    let empty = member(vec![StorePattern::new(v(0), c(99), v(0))], vec![0]);
    let q = StoreJucq::from_ucq(StoreUcq::new(vec![keep, dup, empty], vec![0]));
    let got = render(&q, EngineProfile::pg_like());
    // The estimator does not model repeated-variable selectivity, so
    // the union estimate stays at the scan extent (2.0).
    let want = "\
Dedup (est 2.0)
  Project [?0]
    HashUnion fragment[0] — 1 member (est 2.0)
      Project [?0]
        Filter repeated-vars (?0 #u11 ?0)
          IndexScan (?0 #u11 ?0) (est 2.0)
";
    assert_eq!(got, want, "got:\n{got}");
}

/// The hash CQ strategy lowers member-internal joins instead of Inlj
/// probes; sort-merge fragment joins render as MergeJoin.
#[test]
fn hash_members_and_merge_join_snapshot() {
    let fa = StoreUcq::new(
        vec![member(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(1), c(12), v(2))],
            vec![0, 1],
        )],
        vec![0, 1],
    );
    let fb = StoreUcq::new(
        vec![member(vec![StorePattern::new(v(0), c(11), v(3))], vec![0, 3])],
        vec![0, 3],
    );
    let q = StoreJucq::new(vec![fa, fb], vec![0, 1, 3]);
    let mut profile = EngineProfile::pg_like().with_fragment_join(JoinAlgo::SortMerge);
    profile.index_nested_loop_cq = false;
    let got = render(&q, profile);
    assert!(got.contains("MergeJoin join[0]"), "{got}");
    assert!(
        got.contains("HashJoin\n") || got.contains("HashJoin (est"),
        "member-internal join:\n{got}"
    );
}
