//! Property tests of the engine substrate: index scans agree with
//! brute-force filtering, the three join algorithms agree with each
//! other, and relation operators respect set-semantics invariants.

use proptest::prelude::*;

use jucq_model::term::TermKind;
use jucq_model::{FxHashSet, TermId, TripleId};
use jucq_store::exec::{join, ExecContext};
use jucq_store::{EngineProfile, Relation, TripleTable};

fn id(i: u32) -> TermId {
    TermId::new(TermKind::Uri, i)
}

fn random_triples() -> impl Strategy<Value = Vec<TripleId>> {
    proptest::collection::vec((0u32..12, 0u32..6, 0u32..12), 0..60)
        .prop_map(|v| v.into_iter().map(|(s, p, o)| TripleId::new(id(s), id(p), id(o))).collect())
}

fn random_mask() -> impl Strategy<Value = [Option<u32>; 3]> {
    (proptest::option::of(0u32..12), proptest::option::of(0u32..6), proptest::option::of(0u32..12))
        .prop_map(|(s, p, o)| [s, p, o])
}

fn random_relation(vars: Vec<u16>) -> impl Strategy<Value = Relation> {
    let width = vars.len();
    proptest::collection::vec(proptest::collection::vec(0u32..8, width..=width), 0..40).prop_map(
        move |rows| {
            let mut r = Relation::empty(vars.clone());
            for row in rows {
                let ids: Vec<TermId> = row.into_iter().map(id).collect();
                r.push_row(&ids);
            }
            r
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn scans_agree_with_brute_force(triples in random_triples(), mask in random_mask()) {
        // Deduplicate: tables are built over set-semantics graphs.
        let set: FxHashSet<TripleId> = triples.iter().copied().collect();
        let triples: Vec<TripleId> = set.into_iter().collect();
        let table = TripleTable::build(&triples);
        let bound = [mask[0].map(id), mask[1].map(id), mask[2].map(id)];
        let scanned: FxHashSet<TripleId> = table.scan(&bound).iter().copied().collect();
        let brute: FxHashSet<TripleId> = triples
            .iter()
            .filter(|t| {
                bound[0].is_none_or(|s| t.s == s)
                    && bound[1].is_none_or(|p| t.p == p)
                    && bound[2].is_none_or(|o| t.o == o)
            })
            .copied()
            .collect();
        prop_assert_eq!(scanned, brute);
    }

    #[test]
    fn apply_delta_agrees_with_rebuild(
        base in random_triples(),
        ins in random_triples(),
        del_mask in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let base_set: FxHashSet<TripleId> = base.iter().copied().collect();
        let base: Vec<TripleId> = base_set.iter().copied().collect();
        let table = TripleTable::build(&base);
        let deletes: FxHashSet<TripleId> = base
            .iter()
            .zip(&del_mask)
            .filter(|(_, &d)| d)
            .map(|(t, _)| *t)
            .collect();
        let ins_set: FxHashSet<TripleId> = ins.iter().copied().collect();
        let ins: Vec<TripleId> = ins_set.into_iter().collect();
        let merged = table.apply_delta(&ins, &deletes);
        let mut expect: FxHashSet<TripleId> = base_set
            .difference(&deletes)
            .copied()
            .collect();
        for t in &ins {
            if !deletes.contains(t) {
                expect.insert(*t);
            }
        }
        let got: FxHashSet<TripleId> = merged.all().iter().copied().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(merged.len(), merged.all().len());
    }

    #[test]
    fn join_algorithms_agree(
        left in random_relation(vec![0, 1]),
        right in random_relation(vec![1, 2]),
    ) {
        let profile = EngineProfile::pg_like();
        let sorted = |mut r: Relation| {
            r.sort();
            r.to_rows()
        };
        let mut ctx = ExecContext::new(&profile);
        let h = sorted(join::hash_join(&left, &right, &mut ctx).unwrap());
        let mut ctx = ExecContext::new(&profile);
        let m = sorted(join::sort_merge_join(&left, &right, &mut ctx).unwrap());
        let mut ctx = ExecContext::new(&profile);
        let b = sorted(join::block_nested_loop_join(&left, &right, &mut ctx).unwrap());
        prop_assert_eq!(&h, &m);
        prop_assert_eq!(&h, &b);
    }

    #[test]
    fn dedup_is_idempotent_and_shrinking(r in random_relation(vec![0, 1, 2])) {
        let mut once = r.clone();
        let removed = once.dedup_in_place();
        prop_assert_eq!(once.len() + removed, r.len());
        let mut twice = once.clone();
        prop_assert_eq!(twice.dedup_in_place(), 0, "idempotent");
        // Every surviving row was in the original.
        let original: Vec<Vec<TermId>> = r.to_rows();
        for row in once.to_rows() {
            prop_assert!(original.contains(&row));
        }
    }

    #[test]
    fn projection_preserves_row_count_and_values(r in random_relation(vec![0, 1, 2])) {
        let p = r.project(&[2, 0]);
        prop_assert_eq!(p.len(), r.len());
        for (orig, proj) in r.rows().zip(p.rows()) {
            prop_assert_eq!(proj[0], orig[2]);
            prop_assert_eq!(proj[1], orig[0]);
        }
    }

    #[test]
    fn sort_is_a_permutation(r in random_relation(vec![0, 1])) {
        let mut sorted = r.clone();
        sorted.sort();
        let mut a = r.to_rows();
        let mut b = sorted.to_rows();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
