//! Order-aware-execution differential matrix: sort elision, galloping
//! seeks and zero-copy scan borrows must be pure performance features.
//! Across order-awareness on/off, both fragment-join algorithms, every
//! engine profile, 1/8 worker threads, and batch on/off, the answer
//! multiset is identical; with the knob off every ordering counter is
//! zero (the baseline leg of the `order_merge` bench really is a
//! pre-ordering engine), and on the right fixture the knob-on counters
//! are provably live.

use jucq_model::term::TermKind;
use jucq_model::{TermId, TripleId};
use jucq_store::{
    EngineProfile, JoinAlgo, PatternTerm, Relation, Store, StoreCq, StoreJucq, StorePattern,
    StoreUcq, VarId,
};

fn id(i: u32) -> TermId {
    TermId::new(TermKind::Uri, i)
}

fn t(s: u32, p: u32, o: u32) -> TripleId {
    TripleId::new(id(s), id(p), id(o))
}

fn c(i: u32) -> PatternTerm {
    PatternTerm::Const(id(i))
}

fn v(i: VarId) -> PatternTerm {
    PatternTerm::Var(i)
}

/// A chain on p10, a two-member-union feeder on p13, and a skewed pair
/// p14/p15: p14 fans 25 subjects out to 12 objects each (300 rows)
/// while p15 touches 6 of those subjects once — past the 8× gallop
/// threshold when they merge.
fn sample_triples() -> Vec<TripleId> {
    let mut data = Vec::new();
    for i in 0..40 {
        data.push(t(i, 10, i + 1));
    }
    for i in (0..40).step_by(3) {
        data.push(t(i, 13, i));
    }
    for s in 0..25 {
        for o in 0..12 {
            data.push(t(s, 14, 100 + (s * 7 + o * 11) % 60));
        }
    }
    for s in 0..6 {
        data.push(t(s * 4, 15, 200 + s));
    }
    data
}

/// Three joined fragments: two single-member (borrow candidates) and a
/// two-member union in the middle whose output order is unknown, so
/// elision must stay partial on this shape.
fn chain_query() -> StoreJucq {
    let fa = StoreUcq::new(
        vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1])],
        vec![0, 1],
    );
    let fb = StoreUcq::new(
        vec![
            StoreCq::with_var_head(vec![StorePattern::new(v(1), c(10), v(2))], vec![1, 2]),
            StoreCq::with_var_head(vec![StorePattern::new(v(1), c(13), v(2))], vec![1, 2]),
        ],
        vec![1, 2],
    );
    let fc = StoreUcq::new(
        vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(14), v(3))], vec![0, 3])],
        vec![0, 3],
    );
    StoreJucq::new(vec![fa, fb, fc], vec![0, 1, 2, 3])
}

/// Two single-member fragments over the skewed predicates: both scans
/// can be steered to subject order, so a SortMerge fragment join can
/// elide both sorts and must gallop through the 50× size skew.
fn skewed_query() -> StoreJucq {
    let big = StoreUcq::new(
        vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(14), v(1))], vec![0, 1])],
        vec![0, 1],
    );
    let small = StoreUcq::new(
        vec![StoreCq::with_var_head(vec![StorePattern::new(v(0), c(15), v(2))], vec![0, 2])],
        vec![0, 2],
    );
    StoreJucq::new(vec![big, small], vec![0, 1, 2])
}

fn sorted_rows(r: &Relation) -> Vec<Vec<TermId>> {
    let mut rows: Vec<Vec<TermId>> = r.rows().map(|row| row.to_vec()).collect();
    rows.sort();
    rows
}

/// Every (order, join, profile, threads, batch) cell answers
/// identically, and the knob-off cells report zero ordering counters.
#[test]
fn order_aware_matrix_is_differentially_identical() {
    let data = sample_triples();
    for (qname, q) in [("chain", chain_query()), ("skewed", skewed_query())] {
        let baseline = {
            let profile = EngineProfile::pg_like()
                .with_order_aware(false)
                .with_batch_size(0)
                .with_parallelism(1);
            let store = Store::from_triples(&data, profile);
            sorted_rows(&store.eval_jucq(&q).unwrap().relation)
        };
        assert!(!baseline.is_empty(), "{qname}: the fixture must produce answers");

        let bases: [fn() -> EngineProfile; 4] = [
            EngineProfile::pg_like,
            EngineProfile::db2_like,
            EngineProfile::mysql_like,
            EngineProfile::native_like,
        ];
        for base in bases {
            for join in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
                for order in [true, false] {
                    for threads in [1usize, 8] {
                        for batch in [0usize, 1024] {
                            let profile = base()
                                .with_fragment_join(join)
                                .with_order_aware(order)
                                .with_parallelism(threads)
                                .with_batch_size(batch);
                            let label = format!(
                                "{qname} {} join={join:?} order={order} threads={threads} \
                                 batch={batch}",
                                profile.name
                            );
                            let store = Store::from_triples(&data, profile);
                            let out = store
                                .eval_jucq(&q)
                                .unwrap_or_else(|e| panic!("{label}: evaluation failed: {e}"));
                            assert_eq!(sorted_rows(&out.relation), baseline, "{label}");
                            if !order {
                                assert_eq!(
                                    out.counters.sorts_elided, 0,
                                    "{label}: knob off must not elide"
                                );
                                assert_eq!(
                                    out.counters.gallop_seeks, 0,
                                    "{label}: knob off must not gallop"
                                );
                                assert_eq!(
                                    out.counters.scan_rows_borrowed, 0,
                                    "{label}: knob off must not borrow"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// On the skewed fixture the order-aware SortMerge run provably
/// exercises all three mechanisms: both scan orders align with the
/// join key (sorts elided), the 50× skew gallops, and the
/// single-member distinct fragments borrow their scan rows. SIP is
/// off here — its Bloom filter would pre-drop the non-joining rows
/// whose runs the gallop skips.
#[test]
fn order_aware_counters_are_live_on_the_skewed_fixture() {
    let data = sample_triples();
    let q = skewed_query();
    let on = Store::from_triples(
        &data,
        EngineProfile::pg_like().with_fragment_join(JoinAlgo::SortMerge).with_sip_filters(false),
    )
    .eval_jucq(&q)
    .unwrap();
    assert!(on.counters.sorts_elided > 0, "no sorts elided: {:?}", on.counters);
    assert!(on.counters.gallop_seeks > 0, "no gallop seeks: {:?}", on.counters);
    assert!(on.counters.scan_rows_borrowed > 0, "no rows borrowed: {:?}", on.counters);
    assert!(on.counters.rows_reserved > 0, "no output pre-sizing: {:?}", on.counters);
}
