//! Shared experiment-harness utilities.

use std::time::Duration;

use jucq_core::{AnswerError, RdfDatabase, Strategy};
use jucq_datagen::{dblp, lubm, NamedQuery};
use jucq_optimizer::calibrate;
use jucq_reformulation::BgpQuery;
use jucq_store::{EngineError, EngineProfile};

/// Default per-query engine deadline for experiments (the paper kills
/// runs after two hours; we scale that down with the data).
pub const EXPERIMENT_TIMEOUT: Duration = Duration::from_secs(10);

/// RAII handle from [`obs_sidecar`]: writes the metrics sidecar when
/// the experiment finishes (i.e. on drop).
pub struct ObsSidecar {
    path: std::path::PathBuf,
}

/// Opt-in observability for an experiment binary: when the `JUCQ_OBS`
/// environment variable is set, enable collection and, when the
/// returned guard drops, write the spans/metrics of the whole run to
/// `results/<experiment>.metrics.json` — a sidecar next to the
/// experiment's `results/<experiment>.txt` artifact. Without
/// `JUCQ_OBS`, collection stays disabled and benchmarks run at full
/// speed.
pub fn obs_sidecar(experiment: &str) -> Option<ObsSidecar> {
    std::env::var_os("JUCQ_OBS")?;
    jucq_obs::reset();
    jucq_obs::set_enabled(true);
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    Some(ObsSidecar { path: dir.join(format!("{experiment}.metrics.json")) })
}

impl Drop for ObsSidecar {
    fn drop(&mut self) {
        jucq_obs::set_enabled(false);
        let session = jucq_obs::take_session();
        match std::fs::write(&self.path, jucq_obs::export::to_json(&session)) {
            Ok(()) => eprintln!("wrote metrics sidecar {}", self.path.display()),
            Err(e) => eprintln!("failed to write metrics sidecar {}: {e}", self.path.display()),
        }
    }
}

/// Read a positional CLI argument as a scale, with a default.
pub fn arg_scale(position: usize, default: usize) -> usize {
    std::env::args().nth(position).and_then(|a| a.parse().ok()).unwrap_or(default)
}

/// Build and calibrate a LUBM-like database under `profile`.
pub fn lubm_db(universities: usize, profile: EngineProfile) -> RdfDatabase {
    let graph = lubm::generate(&lubm::LubmConfig::new(universities));
    let mut db = RdfDatabase::from_graph(graph, profile.with_timeout(EXPERIMENT_TIMEOUT));
    db.prepare();
    let constants = calibrate(db.plain_store());
    db.set_cost_constants(constants);
    db
}

/// Build and calibrate a DBLP-like database under `profile`.
pub fn dblp_db(authors: usize, profile: EngineProfile) -> RdfDatabase {
    let graph = dblp::generate(&dblp::DblpConfig::new(authors));
    let mut db = RdfDatabase::from_graph(graph, profile.with_timeout(EXPERIMENT_TIMEOUT));
    db.prepare();
    let constants = calibrate(db.plain_store());
    db.set_cost_constants(constants);
    db
}

/// Switch a prepared database to another engine profile and recalibrate
/// the cost constants for it (the paper calibrates per system). Stores
/// are not rebuilt — only execution behaviour and the model change.
pub fn switch_profile(db: &mut RdfDatabase, profile: EngineProfile) {
    db.set_profile(profile.with_timeout(EXPERIMENT_TIMEOUT));
    let constants = calibrate(db.plain_store());
    db.set_cost_constants(constants);
}

/// One measured cell of a figure/table: a time, or the paper's
/// "missing bar".
#[derive(Debug, Clone)]
pub enum Cell {
    /// Evaluation time plus plan shape.
    Time {
        /// Query-evaluation wall-clock time.
        eval: Duration,
        /// Planning (reformulation + cover search) time.
        planning: Duration,
        /// Result rows.
        rows: usize,
        /// Union terms of the evaluated query.
        union_terms: usize,
    },
    /// The engine failed (UnionTooLarge / memory / timeout) — rendered
    /// as the figures' missing bars.
    Failed(String),
}

impl Cell {
    /// Render compactly for text tables.
    pub fn render(&self) -> String {
        match self {
            Cell::Time { eval, .. } => format!("{:.1}", eval.as_secs_f64() * 1e3),
            Cell::Failed(reason) => {
                let short = if reason.contains("stack depth") {
                    "FAIL(union)"
                } else if reason.contains("materialize") {
                    "FAIL(mem)"
                } else if reason.contains("timed out") {
                    "FAIL(time)"
                } else {
                    "FAIL"
                };
                short.to_owned()
            }
        }
    }
}

/// Run one strategy, averaged over `warm` warm executions after one
/// warm-up (the paper averages over 3 warm executions).
pub fn run_strategy(db: &mut RdfDatabase, q: &BgpQuery, strategy: &Strategy, warm: u32) -> Cell {
    match db.answer(q, strategy) {
        Err(AnswerError::Engine(e)) => Cell::Failed(e.to_string()),
        Err(AnswerError::Cover(e)) => Cell::Failed(e.to_string()),
        Ok(first) => {
            let mut total = Duration::ZERO;
            let mut last = first;
            for _ in 0..warm {
                match db.answer(q, strategy) {
                    Ok(r) => {
                        total += r.eval_time;
                        last = r;
                    }
                    Err(e) => return Cell::Failed(e.to_string()),
                }
            }
            Cell::Time {
                eval: total / warm.max(1),
                planning: last.planning_time,
                rows: last.rows.len(),
                union_terms: last.union_terms,
            }
        }
    }
}

/// Parse a named workload against a database.
pub fn parse_workload(db: &mut RdfDatabase, queries: &[NamedQuery]) -> Vec<(String, BgpQuery)> {
    queries
        .iter()
        .map(|nq| {
            let q = db
                .parse_query(&nq.sparql)
                .unwrap_or_else(|e| panic!("query {} fails to parse: {e}\n{}", nq.name, nq.sparql));
            (nq.name.clone(), q)
        })
        .collect()
}

/// Run a (query × strategy) matrix, returning one row per query:
/// `[name, cell…]` with evaluation milliseconds or failure tags.
pub fn strategy_matrix(
    db: &mut RdfDatabase,
    queries: &[(String, BgpQuery)],
    strategies: &[(&str, Strategy)],
    warm: u32,
) -> Vec<Vec<String>> {
    let mut rows = Vec::with_capacity(queries.len());
    for (name, q) in queries {
        eprint!("  {name}:");
        let mut row = vec![name.clone()];
        for (label, s) in strategies {
            let cell = run_strategy(db, q, s, warm);
            eprint!(" {label}={}", cell.render());
            row.push(cell.render());
        }
        eprintln!();
        rows.push(row);
    }
    rows
}

/// The four contenders of Figures 4–6: UCQ, SCQ, ECov JUCQ, GCov JUCQ.
pub fn figure_strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("UCQ", Strategy::Ucq),
        ("SCQ", Strategy::Scq),
        ("ECov", Strategy::ecov_default()),
        ("GCov", Strategy::gcov_default()),
    ]
}

/// The Figures 4–6 experiment: for each RDBMS-like profile, run every
/// query under UCQ / SCQ / ECov / GCov and print one table per engine.
pub fn rdbms_figure(title: &str, db: &mut RdfDatabase, queries: &[NamedQuery]) {
    let parsed = parse_workload(db, queries);
    let strategies = figure_strategies();
    for profile in EngineProfile::rdbms_trio() {
        let engine = profile.name.clone();
        eprintln!("[{engine}] calibrating + running...");
        switch_profile(db, profile);
        let rows = strategy_matrix(db, &parsed, &strategies, 2);
        let header: Vec<String> = std::iter::once("q".to_string())
            .chain(strategies.iter().map(|(n, _)| format!("{n} (ms)")))
            .collect();
        println!("{}", render_table(&format!("{title} — engine {engine}"), &header, &rows));
    }
}

/// Render an aligned text table.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(c.len()))
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// True when a failed cell corresponds to a union-size rejection.
pub fn is_union_failure(e: &EngineError) -> bool {
    matches!(e, EngineError::UnionTooLarge { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_rendering() {
        let c = Cell::Time {
            eval: Duration::from_millis(12),
            planning: Duration::ZERO,
            rows: 5,
            union_terms: 3,
        };
        assert_eq!(c.render(), "12.0");
        assert_eq!(Cell::Failed("stack depth limit exceeded: ...".into()).render(), "FAIL(union)");
        assert_eq!(Cell::Failed("evaluation timed out after 1s".into()).render(), "FAIL(time)");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            "demo",
            &["q".into(), "ms".into()],
            &[vec!["Q1".into(), "1.5".into()], vec!["Q22".into(), "123.4".into()]],
        );
        assert!(t.contains("== demo =="));
        assert!(t.lines().count() >= 4);
    }
}
