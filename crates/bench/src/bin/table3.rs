//! Table 3 — characteristics of the motivating query q2's six triples:
//! direct answers, reformulation counts, answers after reformulation.
//!
//! Paper values (LUBM 100M, legible rows): t1/t2 = (18,999,081 / 188 /
//! 33,328,108), t5/t6 = (7,299,701 / 3 / 8,803,096); t3/t4
//! (mastersDegreeFrom / doctoralDegreeFrom) are small and selective.
//!
//! Run: `cargo run --release -p jucq-bench --bin table3 [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, render_table};
use jucq_core::Strategy;
use jucq_datagen::lubm;
use jucq_reformulation::BgpQuery;
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("table3");
    let universities = arg_scale(1, 4);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let q2 = db.parse_query(&lubm::motivating_queries()[1].sparql).expect("q2 parses");

    let mut rows = Vec::new();
    for (i, atom) in q2.atoms.iter().enumerate() {
        let single = BgpQuery::new(atom.variables().to_vec(), vec![*atom]);
        let direct = db
            .plain_store()
            .eval_cq(&single.to_store_cq())
            .expect("direct evaluation")
            .relation
            .len();
        let report = db.answer(&single, &Strategy::Ucq).expect("UCQ evaluation");
        rows.push(vec![
            format!("(t{})", i + 1),
            direct.to_string(),
            report.union_terms.to_string(),
            report.rows.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table 3: characteristics of q2 (LUBM-like {universities} univ, {} triples)",
                db.graph().len()
            ),
            &[
                "Triple".into(),
                "#answers".into(),
                "#reformulations".into(),
                "#answers after reformulation".into()
            ],
            &rows,
        )
    );
    println!("paper (LUBM 100M): t1,t2 = 18,999,081/188/33,328,108; t5,t6 = 7,299,701/3/8,803,096");
}
