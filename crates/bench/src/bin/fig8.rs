//! Figure 8 — cover-space exploration on DBLP: covers explored and
//! algorithm running times for ECov vs GCov (plus UCQ/SCQ build times).
//!
//! Paper shape: on the 10-atom Q10 the cover search space is so large
//! that ECov's exhaustive search is unfeasible (it times out and is
//! reported truncated), while GCov still completes.
//!
//! Run: `cargo run --release -p jucq-bench --bin fig8 [authors]`

use jucq_bench::harness::{arg_scale, dblp_db, render_table};
use jucq_core::Strategy;
use jucq_datagen::dblp;
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("fig8");
    let authors = arg_scale(1, 2_000);
    eprintln!("building DBLP-like({authors} authors)...");
    let mut db = dblp_db(authors, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let mut rows = Vec::new();
    for nq in dblp::workload() {
        eprintln!("  {}...", nq.name);
        let q = db.parse_query(&nq.sparql).expect("parses");
        let mut fmt = |s: &Strategy| match db.answer(&q, s) {
            Ok(r) => (
                r.covers_explored.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
                format!("{:.1}", r.planning_time.as_secs_f64() * 1e3),
            ),
            Err(e) => ("-".into(), format!("FAIL({e:.30})")),
        };
        let (e_explored, e_time) = fmt(&Strategy::ecov_default());
        let (g_explored, g_time) = fmt(&Strategy::gcov_default());
        rows.push(vec![nq.name.clone(), e_explored, g_explored, e_time, g_time]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 8: covers explored & algorithm time, DBLP-like ({} triples)",
                db.graph().len()
            ),
            &[
                "q".into(),
                "ECov #covers".into(),
                "GCov #covers".into(),
                "ECov (ms)".into(),
                "GCov (ms)".into()
            ],
            &rows,
        )
    );
}
