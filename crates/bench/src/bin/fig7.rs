//! Figure 7 — cover-space exploration on LUBM: number of query covers
//! explored by ECov vs GCov (top) and the algorithms' running times,
//! alongside the time to merely *build* the UCQ and SCQ reformulations
//! (bottom).
//!
//! Paper shape: the cover space can be huge; GCov explores a small
//! subset and runs up to an order of magnitude faster than ECov, while
//! the cost-ignorant UCQ/SCQ constructions are fastest (and pay for it
//! at evaluation time). The largest planning times belong to the
//! huge-reformulation queries.
//!
//! Run: `cargo run --release -p jucq-bench --bin fig7 [universities]`

use std::time::Instant;

use jucq_bench::harness::{arg_scale, lubm_db, render_table};
use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::{lubm, NamedQuery};
use jucq_store::EngineProfile;

fn explore_row(db: &mut RdfDatabase, nq: &NamedQuery) -> Vec<String> {
    let q = db.parse_query(&nq.sparql).expect("parses");
    // ECov / GCov: explored covers + planning time.
    let (e_explored, e_time) = match db.answer(&q, &Strategy::ecov_default()) {
        Ok(r) => (
            r.covers_explored.unwrap_or(0).to_string(),
            format!("{:.1}", r.planning_time.as_secs_f64() * 1e3),
        ),
        Err(_) => ("-".into(), "FAIL".into()),
    };
    let (g_explored, g_time) = match db.answer(&q, &Strategy::gcov_default()) {
        Ok(r) => (
            r.covers_explored.unwrap_or(0).to_string(),
            format!("{:.1}", r.planning_time.as_secs_f64() * 1e3),
        ),
        Err(_) => ("-".into(), "FAIL".into()),
    };
    // UCQ / SCQ construction times (reformulation only — measured as
    // planning time of the fixed strategies, evaluation excluded).
    let mut build_time = |s: &Strategy| -> String {
        let started = Instant::now();
        match db.answer(&q, s) {
            Ok(r) => format!("{:.1}", r.planning_time.as_secs_f64() * 1e3),
            Err(_) => format!("{:.1}*", started.elapsed().as_secs_f64() * 1e3),
        }
    };
    let ucq_time = build_time(&Strategy::Ucq);
    let scq_time = build_time(&Strategy::Scq);
    vec![nq.name.clone(), e_explored, g_explored, e_time, g_time, ucq_time, scq_time]
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("fig7");
    let universities = arg_scale(1, 2);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let queries: Vec<NamedQuery> =
        lubm::motivating_queries().into_iter().chain(lubm::workload()).collect();
    let mut rows = Vec::new();
    for nq in &queries {
        eprintln!("  {}...", nq.name);
        rows.push(explore_row(&mut db, nq));
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 7: covers explored & algorithm time, LUBM-like ({} triples)",
                db.graph().len()
            ),
            &[
                "q".into(),
                "ECov #covers".into(),
                "GCov #covers".into(),
                "ECov (ms)".into(),
                "GCov (ms)".into(),
                "UCQ build (ms)".into(),
                "SCQ build (ms)".into(),
            ],
            &rows,
        )
    );
    println!("(* = construction aborted by the engine's union limit)");
}
