//! Parallel-execution speedup: sequential vs multi-threaded JUCQ
//! evaluation on a reformulation-heavy LUBM workload.
//!
//! Runs the UCQ and GCov strategies at parallelism 1 (the strictly
//! sequential engine) and 4 (the issue's reference worker count) over
//! the LUBM workload, and records per-strategy wall times plus the
//! aggregate speedup in `results/BENCH_par_speedup.json`. The sidecar
//! also captures the host's available hardware concurrency: on a
//! single-core host the worker pool cannot physically speed anything
//! up, and the recorded speedup will honestly hover around 1.0×.
//!
//! Run: `cargo run --release -p jucq-bench --bin par_speedup [universities]`

use std::time::{Duration, Instant};

use jucq_bench::harness::{arg_scale, lubm_db, parse_workload, render_table};
use jucq_core::Strategy;
use jucq_datagen::lubm;
use jucq_store::EngineProfile;

const SEQUENTIAL: usize = 1;
const PARALLEL: usize = 4;
const WARM: u32 = 3;

struct Measurement {
    query: String,
    strategy: &'static str,
    seq: Option<Duration>,
    par: Option<Duration>,
}

/// Best-of-`WARM` warm evaluation time of one query, or `None` on
/// failure — the minimum is the standard noise-robust estimator for a
/// deterministic computation.
fn measure(
    db: &mut jucq_core::RdfDatabase,
    q: &jucq_reformulation::BgpQuery,
    strategy: &Strategy,
) -> Option<Duration> {
    db.answer(q, strategy).ok()?; // warm-up
    let mut best = Duration::MAX;
    for _ in 0..WARM {
        let started = Instant::now();
        db.answer(q, strategy).ok()?;
        best = best.min(started.elapsed());
    }
    Some(best)
}

fn ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.1}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn json_ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.3}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "null".into())
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("par_speedup");
    let universities = arg_scale(1, 2);
    eprintln!("building LUBM-like({universities} universities)...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let queries = parse_workload(&mut db, &lubm::workload());
    let strategies: [(&'static str, Strategy); 2] =
        [("UCQ", Strategy::Ucq), ("GCov", Strategy::gcov_default())];

    // The two parallelism legs alternate within each round so machine
    // drift over the run hits both equally; per-cell minima accumulate
    // across rounds.
    const ROUNDS: u32 = 3;
    let mut measurements: Vec<Measurement> = queries
        .iter()
        .flat_map(|(name, _)| {
            strategies.iter().map(|(label, _)| Measurement {
                query: name.clone(),
                strategy: label,
                seq: None,
                par: None,
            })
        })
        .collect();
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}...", round + 1);
        for (threads, slot) in [(SEQUENTIAL, 0usize), (PARALLEL, 1usize)] {
            db.set_profile(EngineProfile::pg_like().with_parallelism(threads));
            let mut mi = 0;
            for (_, q) in &queries {
                for (_, strategy) in &strategies {
                    let t = measure(&mut db, q, strategy);
                    let cell = &mut measurements[mi];
                    let best = if slot == 0 { &mut cell.seq } else { &mut cell.par };
                    *best = match (*best, t) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (prev, fresh) => fresh.or(prev),
                    };
                    mi += 1;
                }
            }
        }
    }

    // Aggregate speedup over the cells where both runs completed.
    let (mut seq_total, mut par_total) = (Duration::ZERO, Duration::ZERO);
    for m in &measurements {
        if let (Some(s), Some(p)) = (m.seq, m.par) {
            seq_total += s;
            par_total += p;
        }
    }
    let speedup =
        if par_total.is_zero() { 1.0 } else { seq_total.as_secs_f64() / par_total.as_secs_f64() };
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            let ratio = match (m.seq, m.par) {
                (Some(s), Some(p)) if !p.is_zero() => {
                    format!("{:.2}", s.as_secs_f64() / p.as_secs_f64())
                }
                _ => "-".into(),
            };
            vec![m.query.clone(), m.strategy.to_owned(), ms(m.seq), ms(m.par), ratio]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Parallel speedup: {SEQUENTIAL} vs {PARALLEL} workers \
                 ({hardware} hardware threads)"
            ),
            &[
                "q".into(),
                "strategy".into(),
                "seq (ms)".into(),
                "par (ms)".into(),
                "speedup".into()
            ],
            &rows,
        )
    );
    println!(
        "total: seq {:.1} ms, par {:.1} ms, speedup {speedup:.2}x",
        seq_total.as_secs_f64() * 1e3,
        par_total.as_secs_f64() * 1e3,
    );

    jucq_obs::metrics::gauge_set("bench.par_speedup.sequential_ms", seq_total.as_secs_f64() * 1e3);
    jucq_obs::metrics::gauge_set("bench.par_speedup.parallel_ms", par_total.as_secs_f64() * 1e3);
    jucq_obs::metrics::gauge_set("bench.par_speedup.speedup", speedup);

    // Requesting workers must never cost wall time. On a single-core
    // host `eval_unions` runs the sequential path outright, so the
    // worker pool's fan-out overhead cannot produce the sub-1.0
    // "speedups" the seed measured (0.88x at 4 workers on 1 core); on
    // multi-core hosts the parallel leg should win outright.
    assert!(
        speedup >= 0.98,
        "parallelism regressed the workload: {speedup:.2}x (seq {:.1} ms, par {:.1} ms, \
         {hardware} hardware threads)",
        seq_total.as_secs_f64() * 1e3,
        par_total.as_secs_f64() * 1e3,
    );

    // Always write the machine-readable sidecar: the speedup number is
    // the experiment's artifact, not an optional trace.
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"par_speedup\",\n");
    json.push_str(&format!("  \"universities\": {universities},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"sequential_parallelism\": {SEQUENTIAL},\n"));
    json.push_str(&format!("  \"parallel_parallelism\": {PARALLEL},\n"));
    json.push_str(&format!("  \"sequential_total_ms\": {:.3},\n", seq_total.as_secs_f64() * 1e3));
    json.push_str(&format!("  \"parallel_total_ms\": {:.3},\n", par_total.as_secs_f64() * 1e3));
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str("  \"queries\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"strategy\": \"{}\", \
             \"sequential_ms\": {}, \"parallel_ms\": {}}}{}\n",
            m.query,
            m.strategy,
            json_ms(m.seq),
            json_ms(m.par),
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_par_speedup.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
