//! Parallel-execution speedup: sequential vs multi-threaded JUCQ
//! evaluation on a reformulation-heavy LUBM workload.
//!
//! Runs the UCQ and GCov strategies at parallelism 1 (the strictly
//! sequential engine) and 4 (the issue's reference worker count) over
//! the LUBM workload, and records per-strategy wall times plus the
//! aggregate speedup in `results/BENCH_par_speedup.json`. The sidecar
//! also captures the host's available hardware concurrency: on a
//! single-core host the worker pool cannot physically speed anything
//! up, and the recorded speedup will honestly hover around 1.0×.
//!
//! Run: `cargo run --release -p jucq-bench --bin par_speedup [universities]`

use std::time::{Duration, Instant};

use jucq_bench::harness::{arg_scale, lubm_db, parse_workload, render_table};
use jucq_core::Strategy;
use jucq_datagen::lubm;
use jucq_store::EngineProfile;

const SEQUENTIAL: usize = 1;
const PARALLEL: usize = 4;
const WARM: u32 = 2;

struct Measurement {
    query: String,
    strategy: &'static str,
    seq: Option<Duration>,
    par: Option<Duration>,
}

/// Average warm evaluation time of one query, or `None` on failure.
fn measure(
    db: &mut jucq_core::RdfDatabase,
    q: &jucq_reformulation::BgpQuery,
    strategy: &Strategy,
) -> Option<Duration> {
    db.answer(q, strategy).ok()?; // warm-up
    let mut total = Duration::ZERO;
    for _ in 0..WARM {
        let started = Instant::now();
        db.answer(q, strategy).ok()?;
        total += started.elapsed();
    }
    Some(total / WARM)
}

fn ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.1}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn json_ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.3}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "null".into())
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("par_speedup");
    let universities = arg_scale(1, 2);
    eprintln!("building LUBM-like({universities} universities)...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let queries = parse_workload(&mut db, &lubm::workload());
    let strategies: [(&'static str, Strategy); 2] =
        [("UCQ", Strategy::Ucq), ("GCov", Strategy::gcov_default())];

    let mut measurements: Vec<Measurement> = Vec::new();
    for (threads, slot) in [(SEQUENTIAL, 0usize), (PARALLEL, 1usize)] {
        eprintln!("[parallelism {threads}] running workload...");
        db.set_profile(EngineProfile::pg_like().with_parallelism(threads));
        for (name, q) in &queries {
            for (label, strategy) in &strategies {
                let t = measure(&mut db, q, strategy);
                if slot == 0 {
                    measurements.push(Measurement {
                        query: name.clone(),
                        strategy: label,
                        seq: t,
                        par: None,
                    });
                } else {
                    let m = measurements
                        .iter_mut()
                        .find(|m| &m.query == name && &m.strategy == label)
                        .expect("sequential pass recorded this cell");
                    m.par = t;
                }
            }
        }
    }

    // Aggregate speedup over the cells where both runs completed.
    let (mut seq_total, mut par_total) = (Duration::ZERO, Duration::ZERO);
    for m in &measurements {
        if let (Some(s), Some(p)) = (m.seq, m.par) {
            seq_total += s;
            par_total += p;
        }
    }
    let speedup =
        if par_total.is_zero() { 1.0 } else { seq_total.as_secs_f64() / par_total.as_secs_f64() };
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            let ratio = match (m.seq, m.par) {
                (Some(s), Some(p)) if !p.is_zero() => {
                    format!("{:.2}", s.as_secs_f64() / p.as_secs_f64())
                }
                _ => "-".into(),
            };
            vec![m.query.clone(), m.strategy.to_owned(), ms(m.seq), ms(m.par), ratio]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Parallel speedup: {SEQUENTIAL} vs {PARALLEL} workers \
                 ({hardware} hardware threads)"
            ),
            &[
                "q".into(),
                "strategy".into(),
                "seq (ms)".into(),
                "par (ms)".into(),
                "speedup".into()
            ],
            &rows,
        )
    );
    println!(
        "total: seq {:.1} ms, par {:.1} ms, speedup {speedup:.2}x",
        seq_total.as_secs_f64() * 1e3,
        par_total.as_secs_f64() * 1e3,
    );

    jucq_obs::metrics::gauge_set("bench.par_speedup.sequential_ms", seq_total.as_secs_f64() * 1e3);
    jucq_obs::metrics::gauge_set("bench.par_speedup.parallel_ms", par_total.as_secs_f64() * 1e3);
    jucq_obs::metrics::gauge_set("bench.par_speedup.speedup", speedup);

    // Always write the machine-readable sidecar: the speedup number is
    // the experiment's artifact, not an optional trace.
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"par_speedup\",\n");
    json.push_str(&format!("  \"universities\": {universities},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"sequential_parallelism\": {SEQUENTIAL},\n"));
    json.push_str(&format!("  \"parallel_parallelism\": {PARALLEL},\n"));
    json.push_str(&format!("  \"sequential_total_ms\": {:.3},\n", seq_total.as_secs_f64() * 1e3));
    json.push_str(&format!("  \"parallel_total_ms\": {:.3},\n", par_total.as_secs_f64() * 1e3));
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str("  \"queries\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"strategy\": \"{}\", \
             \"sequential_ms\": {}, \"parallel_ms\": {}}}{}\n",
            m.query,
            m.strategy,
            json_ms(m.seq),
            json_ms(m.par),
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_par_speedup.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
