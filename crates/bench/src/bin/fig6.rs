//! Figure 6 — DBLP query answering through UCQ, SCQ, ECov and GCov
//! under the three RDBMS-like engine profiles.
//!
//! Paper shape: no fixed reformulation is always best (SCQ shines on a
//! couple of DB2 queries, collapses elsewhere; UCQ times out on Q09);
//! the GCov JUCQ is robust and within reach of the per-query optimum.
//!
//! Run: `cargo run --release -p jucq-bench --bin fig6 [authors]`

use jucq_bench::harness::{arg_scale, dblp_db, rdbms_figure};
use jucq_datagen::dblp;
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("fig6");
    let authors = arg_scale(1, 6_000);
    eprintln!("building DBLP-like({authors} authors)...");
    let mut db = dblp_db(authors, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    rdbms_figure(
        &format!("Figure 6: DBLP-like ({} triples)", db.graph().len()),
        &mut db,
        &dblp::workload(),
    );
}
