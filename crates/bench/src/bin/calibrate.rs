//! Cost-model calibration (§4.1 / §5.1): print the learned constants
//! for each engine profile on a LUBM-like dataset.
//!
//! Run: `cargo run --release -p jucq-bench --bin calibrate [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, render_table, switch_profile};
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("calibrate");
    let universities = arg_scale(1, 2);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());

    let mut rows = Vec::new();
    for profile in EngineProfile::rdbms_trio() {
        let name = profile.name.clone();
        switch_profile(&mut db, profile);
        let c = db.cost_constants();
        rows.push(vec![
            name,
            format!("{:.2e}", c.c_db),
            format!("{:.2e}", c.c_t),
            format!("{:.2e}", c.c_j),
            format!("{:.2e}", c.c_m),
            format!("{:.2e}", c.c_l),
            format!("{:.2e}", c.c_k),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!("Calibrated cost constants ({} triples)", db.graph().len()),
            &[
                "engine".into(),
                "c_db".into(),
                "c_t".into(),
                "c_j".into(),
                "c_m".into(),
                "c_l".into(),
                "c_k".into()
            ],
            &rows,
        )
    );
}
