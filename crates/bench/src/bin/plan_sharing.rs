//! Cross-member scan sharing: how much scan work the planner's
//! common-scan factoring pass saves on the LUBM workload.
//!
//! Answers every workload query under the UCQ and GCov strategies with
//! `EngineProfile::share_scans` on and off, and records per-query
//! `tuples_scanned` plus the aggregate reduction in
//! `results/BENCH_plan_sharing.json`. Reformulation-heavy queries put
//! many union members over the same handful of scans, so factoring
//! those scans into the plan-wide shared table should strictly reduce
//! the scan volume; the answers themselves must be identical.
//!
//! Run: `cargo run --release -p jucq-bench --bin plan_sharing [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, parse_workload, render_table};
use jucq_core::Strategy;
use jucq_datagen::lubm;
use jucq_store::EngineProfile;

struct Measurement {
    query: String,
    strategy: &'static str,
    shared: Option<u64>,
    unshared: Option<u64>,
    rows_agree: bool,
}

fn profile(share: bool) -> EngineProfile {
    EngineProfile::pg_like().with_parallelism(1).with_scan_sharing(share)
}

fn fmt(v: Option<u64>) -> String {
    v.map(|v| v.to_string()).unwrap_or_else(|| "-".into())
}

fn json_u64(v: Option<u64>) -> String {
    v.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("plan_sharing");
    let universities = arg_scale(1, 2);
    eprintln!("building LUBM-like({universities} universities)...");
    let mut db = lubm_db(universities, profile(true));
    eprintln!("  {} data triples", db.graph().len());

    let queries = parse_workload(&mut db, &lubm::workload());
    let strategies: [(&'static str, Strategy); 2] =
        [("UCQ", Strategy::Ucq), ("GCov", Strategy::gcov_default())];

    let mut measurements: Vec<Measurement> = Vec::new();
    for (name, q) in &queries {
        for (label, strategy) in &strategies {
            db.set_profile(profile(true));
            let shared = db.answer(q, strategy).ok();
            db.set_profile(profile(false));
            let unshared = db.answer(q, strategy).ok();
            let rows_agree = match (&shared, &unshared) {
                (Some(s), Some(u)) => {
                    let mut a: Vec<_> = s.rows.rows().map(|r| r.to_vec()).collect();
                    let mut b: Vec<_> = u.rows.rows().map(|r| r.to_vec()).collect();
                    a.sort();
                    b.sort();
                    a == b
                }
                // A query that fails the same way under both settings
                // (timeout/budget) is consistent; one-sided failure is not.
                (None, None) => true,
                _ => false,
            };
            measurements.push(Measurement {
                query: name.clone(),
                strategy: label,
                shared: shared.map(|r| r.counters.tuples_scanned),
                unshared: unshared.map(|r| r.counters.tuples_scanned),
                rows_agree,
            });
        }
    }

    let agree = measurements.iter().all(|m| m.rows_agree);
    let shared_total: u64 = measurements.iter().filter_map(|m| m.shared).sum();
    let unshared_total: u64 = measurements.iter().filter_map(|m| m.unshared).sum();
    let reduction =
        if unshared_total == 0 { 0.0 } else { 1.0 - shared_total as f64 / unshared_total as f64 };

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            let saved = match (m.shared, m.unshared) {
                (Some(s), Some(u)) if u > 0 => {
                    format!("{:.1}%", (1.0 - s as f64 / u as f64) * 100.0)
                }
                _ => "-".into(),
            };
            vec![m.query.clone(), m.strategy.to_owned(), fmt(m.unshared), fmt(m.shared), saved]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Scan sharing: tuples scanned with common-scan factoring off vs on, \
                 LUBM-like ({} triples)",
                db.graph().len()
            ),
            &[
                "q".into(),
                "strategy".into(),
                "scanned (off)".into(),
                "scanned (on)".into(),
                "saved".into()
            ],
            &rows,
        )
    );
    println!(
        "total: unshared {unshared_total}, shared {shared_total}, reduction {:.1}%, \
         answers agree: {agree}",
        reduction * 100.0
    );

    jucq_obs::metrics::gauge_set("bench.plan_sharing.unshared_scanned", unshared_total as f64);
    jucq_obs::metrics::gauge_set("bench.plan_sharing.shared_scanned", shared_total as f64);
    jucq_obs::metrics::gauge_set("bench.plan_sharing.reduction", reduction);

    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"plan_sharing\",\n");
    json.push_str(&format!("  \"universities\": {universities},\n"));
    json.push_str(&format!("  \"unshared_tuples_scanned\": {unshared_total},\n"));
    json.push_str(&format!("  \"shared_tuples_scanned\": {shared_total},\n"));
    json.push_str(&format!("  \"reduction\": {reduction:.4},\n"));
    json.push_str(&format!("  \"answers_agree\": {agree},\n"));
    json.push_str("  \"queries\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"strategy\": \"{}\", \
             \"unshared_scanned\": {}, \"shared_scanned\": {}, \"answers_agree\": {}}}{}\n",
            m.query,
            m.strategy,
            json_u64(m.unshared),
            json_u64(m.shared),
            m.rows_agree,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_plan_sharing.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    assert!(agree, "scan sharing changed the answers");
}
