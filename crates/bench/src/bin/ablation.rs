//! Ablation — the DESIGN.md-flagged substitution in the cost model:
//! equation 2 measures a member CQ's evaluation input as the sum of its
//! full atom extents (`ScanVolume`, faithful to the paper's RDBMS
//! plans), while our engine evaluates members with index-nested-loop
//! pipelines (`IndexPipeline`, the default). This binary runs GCov
//! under both member-evaluation models and evaluates the chosen JUCQs,
//! quantifying what the substrate-aware refinement buys.
//!
//! Run: `cargo run --release -p jucq-bench --bin ablation [universities]`

use std::time::Duration;

use jucq_bench::harness::{arg_scale, lubm_db, render_table, run_strategy, Cell};
use jucq_core::reformulation::reformulate::ReformulationEnv;
use jucq_core::Strategy;
use jucq_datagen::{lubm, NamedQuery};
use jucq_optimizer::cost::EvalModel;
use jucq_optimizer::{gcov, CoverSearch, PaperCostModel};
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("ablation");
    let universities = arg_scale(1, 4);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let constants = db.cost_constants();

    let queries: Vec<NamedQuery> =
        lubm::motivating_queries().into_iter().chain(lubm::workload()).collect();
    let mut rows = Vec::new();
    for nq in &queries {
        eprintln!("  {}...", nq.name);
        let q = db.parse_query(&nq.sparql).expect("parses");
        let rdf_type = db.rdf_type();
        let closure = db.closure().clone();
        let env = ReformulationEnv { closure: &closure, rdf_type };

        let mut row = vec![nq.name.clone()];
        let mut covers = Vec::new();
        {
            let store = db.plain_store();
            for eval_model in [EvalModel::IndexPipeline, EvalModel::ScanVolume] {
                let model = PaperCostModel::new(store.table(), store.stats(), constants)
                    .with_eval_model(eval_model);
                let search = CoverSearch::new(&q, env, &model);
                let result =
                    gcov(&search, Duration::from_secs(20), 10_000).expect("connected query");
                covers.push(result.cover);
            }
        }
        for cover in covers {
            let label = cover.to_string();
            match db.answer(&q, &Strategy::FixedCover(cover)) {
                Ok(r) => row.push(format!("{:.1} ({label})", r.eval_time.as_secs_f64() * 1e3)),
                Err(e) => row.push(format!("FAIL({e:.20})")),
            }
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Ablation: GCov guided by IndexPipeline vs ScanVolume member costs (LUBM-like, {} triples)",
                db.graph().len()
            ),
            &["q".into(), "pipeline model (ms, cover)".into(), "scan-volume model (ms, cover)".into()],
            &rows,
        )
    );

    // Second ablation: containment-minimized UCQ (the "minimal"
    // reformulations of the paper's related work) vs the plain UCQ.
    let mut rows = Vec::new();
    for nq in &queries {
        eprintln!("  minimize {}...", nq.name);
        let q = db.parse_query(&nq.sparql).expect("parses");
        let full = run_strategy(&mut db, &q, &Strategy::Ucq, 2);
        let min = run_strategy(&mut db, &q, &Strategy::minimized_ucq_default(), 2);
        let terms = |c: &Cell| match c {
            Cell::Time { union_terms, .. } => union_terms.to_string(),
            Cell::Failed(_) => "-".into(),
        };
        rows.push(vec![nq.name.clone(), terms(&full), full.render(), terms(&min), min.render()]);
    }
    println!(
        "{}",
        render_table(
            "Ablation: plain vs containment-minimized UCQ (cap 2000 members)",
            &[
                "q".into(),
                "UCQ terms".into(),
                "UCQ (ms)".into(),
                "UCQmin terms".into(),
                "UCQmin (ms)".into(),
            ],
            &rows,
        )
    );
}
