//! Vectorized-execution speedup: row-at-a-time vs batched kernels, and
//! the extra win from sideways-information-passing (SIP) Bloom filters,
//! on the LUBM and DBLP reformulation workloads.
//!
//! Three modes share one prepared database per workload:
//!   row        batch size 0, SIP off — the Volcano baseline
//!   batch      1024-row batches, SIP off — vectorization alone
//!   batch+sip  1024-row batches, SIP on — the default engine
//! Every query's answer is asserted identical across the three modes,
//! wall times and the SIP probe/drop totals are recorded, and the
//! machine-readable artifact lands in `results/BENCH_vectorized.json`.
//!
//! Run: `cargo run --release -p jucq-bench --bin vec_speedup [scale]`

use std::time::Duration;

use jucq_bench::harness::{arg_scale, dblp_db, lubm_db, parse_workload, render_table};
use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::{dblp, lubm};
use jucq_store::EngineProfile;

const WARM: u32 = 5;
const BATCH: usize = 1024;

/// One execution mode of the matrix.
struct Mode {
    label: &'static str,
    profile: EngineProfile,
}

fn modes() -> [Mode; 3] {
    [
        Mode {
            label: "row",
            profile: EngineProfile::pg_like().with_batch_size(0).with_sip_filters(false),
        },
        Mode {
            label: "batch",
            profile: EngineProfile::pg_like().with_batch_size(BATCH).with_sip_filters(false),
        },
        Mode {
            label: "batch+sip",
            profile: EngineProfile::pg_like().with_batch_size(BATCH).with_sip_filters(true),
        },
    ]
}

/// Per-(query, mode) measurement.
struct Cell {
    time: Option<Duration>,
    rows: Option<Vec<Vec<jucq_model::TermId>>>,
    sip_probes: u64,
    sip_drops: u64,
}

/// Best-of-`WARM` evaluation time of one query under the current
/// profile. The report's `eval_time` isolates query evaluation from
/// planning (reformulation + cover search runs identical work in every
/// mode), and the minimum is the standard noise-robust estimator for
/// a deterministic computation.
fn measure(db: &mut RdfDatabase, q: &jucq_reformulation::BgpQuery, strategy: &Strategy) -> Cell {
    let first = match db.answer(q, strategy) {
        Ok(r) => r,
        Err(_) => return Cell { time: None, rows: None, sip_probes: 0, sip_drops: 0 },
    };
    let mut sorted: Vec<Vec<jucq_model::TermId>> = first.rows.rows().map(|r| r.to_vec()).collect();
    sorted.sort();
    let mut best = Duration::MAX;
    let (mut probes, mut drops) = (first.counters.sip_probes, first.counters.sip_drops);
    for _ in 0..WARM {
        match db.answer(q, strategy) {
            Ok(r) => {
                best = best.min(r.eval_time);
                probes = r.counters.sip_probes;
                drops = r.counters.sip_drops;
            }
            Err(_) => return Cell { time: None, rows: None, sip_probes: 0, sip_drops: 0 },
        }
    }
    Cell { time: Some(best), rows: Some(sorted), sip_probes: probes, sip_drops: drops }
}

fn ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.1}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

struct WorkloadResult {
    workload: &'static str,
    // totals[mode] over cells where all three modes completed
    totals: [Duration; 3],
    sip_probes: u64,
    sip_drops: u64,
    table_rows: Vec<Vec<String>>,
}

fn run_workload(
    workload: &'static str,
    db: &mut RdfDatabase,
    queries: &[(String, jucq_reformulation::BgpQuery)],
    strategy: &Strategy,
) -> WorkloadResult {
    let modes = modes();
    // cells[query][mode]
    let mut cells: Vec<Vec<Cell>> = queries.iter().map(|_| Vec::new()).collect();
    for (mi, mode) in modes.iter().enumerate() {
        eprintln!("[{workload}/{}] running workload...", mode.label);
        jucq_bench::harness::switch_profile(db, mode.profile.clone());
        for (qi, (_, q)) in queries.iter().enumerate() {
            let cell = measure(db, q, strategy);
            if mi > 0 {
                // Differential check: every mode answers identically.
                if let (Some(a), Some(b)) = (&cells[qi][0].rows, &cell.rows) {
                    assert_eq!(a, b, "{workload}/{}: answers diverge from row mode", mode.label);
                }
            }
            cells[qi].push(cell);
        }
    }

    let mut totals = [Duration::ZERO; 3];
    let (mut probes, mut drops) = (0u64, 0u64);
    let mut table_rows = Vec::new();
    for (qi, (name, _)) in queries.iter().enumerate() {
        let all_done = cells[qi].iter().all(|c| c.time.is_some());
        if all_done {
            for (mi, c) in cells[qi].iter().enumerate() {
                totals[mi] += c.time.unwrap();
            }
        }
        let sip_cell = &cells[qi][2];
        probes += sip_cell.sip_probes;
        drops += sip_cell.sip_drops;
        table_rows.push(vec![
            name.clone(),
            ms(cells[qi][0].time),
            ms(cells[qi][1].time),
            ms(cells[qi][2].time),
            format!("{}", sip_cell.sip_drops),
        ]);
    }
    WorkloadResult { workload, totals, sip_probes: probes, sip_drops: drops, table_rows }
}

fn speedup(base: Duration, other: Duration) -> f64 {
    if other.is_zero() {
        1.0
    } else {
        base.as_secs_f64() / other.as_secs_f64()
    }
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("vec_speedup");
    let scale = arg_scale(1, 2);
    let strategy = Strategy::gcov_default();

    let mut results: Vec<WorkloadResult> = Vec::new();

    eprintln!("building LUBM-like({scale} universities)...");
    let mut db = lubm_db(scale, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let queries = parse_workload(&mut db, &lubm::workload());
    results.push(run_workload("lubm", &mut db, &queries, &strategy));

    eprintln!("building DBLP-like({} authors)...", scale * 100);
    let mut db = dblp_db(scale * 100, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let queries = parse_workload(&mut db, &dblp::workload());
    results.push(run_workload("dblp", &mut db, &queries, &strategy));

    for r in &results {
        println!(
            "{}",
            render_table(
                &format!("Vectorized speedup — {} (batch {BATCH})", r.workload),
                &[
                    "q".into(),
                    "row (ms)".into(),
                    "batch (ms)".into(),
                    "batch+sip (ms)".into(),
                    "sip drops".into(),
                ],
                &r.table_rows,
            )
        );
        println!(
            "{}: row {:.1} ms, batch {:.1} ms ({:.2}x), batch+sip {:.1} ms ({:.2}x), \
             sip dropped {}/{} probed tuples",
            r.workload,
            r.totals[0].as_secs_f64() * 1e3,
            r.totals[1].as_secs_f64() * 1e3,
            speedup(r.totals[0], r.totals[1]),
            r.totals[2].as_secs_f64() * 1e3,
            speedup(r.totals[0], r.totals[2]),
            r.sip_drops,
            r.sip_probes,
        );
        let (speedup_gauge, drops_gauge) = if r.workload == "lubm" {
            ("bench.vec_speedup.lubm.batch_speedup", "bench.vec_speedup.lubm.sip_drops")
        } else {
            ("bench.vec_speedup.dblp.batch_speedup", "bench.vec_speedup.dblp.sip_drops")
        };
        jucq_obs::metrics::gauge_set(speedup_gauge, speedup(r.totals[0], r.totals[1]));
        jucq_obs::metrics::gauge_set(drops_gauge, r.sip_drops as f64);
    }

    // Machine-readable artifact: the speedups and the SIP selectivity
    // are the experiment's deliverable.
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"vec_speedup\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"batch_rows\": {BATCH},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"row_total_ms\": {:.3}, \"batch_total_ms\": {:.3}, \
             \"batch_sip_total_ms\": {:.3}, \"batch_speedup\": {:.4}, \
             \"batch_sip_speedup\": {:.4}, \"sip_probes\": {}, \"sip_drops\": {}}}{}\n",
            r.workload,
            r.totals[0].as_secs_f64() * 1e3,
            r.totals[1].as_secs_f64() * 1e3,
            r.totals[2].as_secs_f64() * 1e3,
            speedup(r.totals[0], r.totals[1]),
            speedup(r.totals[0], r.totals[2]),
            r.sip_probes,
            r.sip_drops,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_vectorized.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
