//! Extension experiment — the update trade-off of §5.3: "if the RDF
//! graph is updated, the cost of maintaining the saturation may be very
//! high \[4\]. In contrast, query reformulation is performed directly at
//! query time, and so it naturally adapts".
//!
//! Measures, for batches of data insertions and deletions on the
//! LUBM-like dataset:
//!
//! * incremental maintenance of both stores (counting-based saturation
//!   delta + index merges) per batch;
//! * the full-rebuild alternative (re-saturate, re-sort, re-stat);
//! * query answering after updates, confirming GCov stays correct.
//!
//! Run: `cargo run --release -p jucq-bench --bin updates [universities]`

use std::time::Instant;

use jucq_bench::harness::{arg_scale, lubm_db, render_table};
use jucq_core::Strategy;
use jucq_datagen::lubm;
use jucq_model::{Term, Triple};
use jucq_store::EngineProfile;

/// A batch of in-vocabulary member/degree updates for department 0.
fn batch(size: usize, tag: &str) -> Vec<Triple> {
    let dept = jucq_datagen::lubm::generator::department_uri(0, 0);
    let univ = jucq_datagen::lubm::generator::university_uri(0);
    let member_of = lubm::Ontology::uri("memberOf");
    let degree = lubm::Ontology::uri("doctoralDegreeFrom");
    let grad = lubm::Ontology::uri("GraduateStudent");
    let rdf_type = jucq_model::vocab::RDF_TYPE;
    let mut out = Vec::with_capacity(size * 3);
    for i in 0..size {
        let s = format!("{dept}/new-{tag}-{i}");
        out.push(Triple::new(Term::uri(&s), Term::uri(rdf_type), Term::uri(&grad)));
        out.push(Triple::new(Term::uri(&s), Term::uri(&member_of), Term::uri(&dept)));
        out.push(Triple::new(Term::uri(&s), Term::uri(&degree), Term::uri(&univ)));
    }
    out
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("updates");
    let universities = arg_scale(1, 4);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).expect("q1");
    let baseline = db.answer(&q1, &Strategy::gcov_default()).expect("baseline").rows.len();

    let mut rows = Vec::new();
    for &size in &[10usize, 100, 1_000, 10_000] {
        let ins = batch(size, &format!("b{size}"));
        // Incremental path.
        let started = Instant::now();
        let report = db.apply_data_updates(&ins, &[]);
        let t_inc_ins = started.elapsed();
        assert!(report.incremental, "batch stays in vocabulary");
        let after = db.answer(&q1, &Strategy::gcov_default()).expect("after").rows.len();
        // q1's head is (x, y): each new graduate answers with three
        // implicit classes (GraduateStudent, Student, Person).
        assert_eq!(after, baseline + 3 * size, "each new member answers q1 thrice");
        let started = Instant::now();
        let report_del = db.apply_data_updates(&[], &ins);
        let t_inc_del = started.elapsed();
        assert!(report_del.incremental);

        // Full-rebuild path: insert triples through the invalidating
        // API and re-prepare.
        db.extend(&ins);
        let started = Instant::now();
        db.prepare();
        let t_full = started.elapsed();
        // Clean up (invalidating delete + rebuild outside the timer).
        let del_report = db.apply_data_updates(&[], &ins);
        assert_eq!(del_report.deleted, ins.len());

        rows.push(vec![
            (size * 3).to_string(),
            format!("{:.1}", t_inc_ins.as_secs_f64() * 1e3),
            format!("{:.1}", t_inc_del.as_secs_f64() * 1e3),
            format!("{:.1}", t_full.as_secs_f64() * 1e3),
            report.entailed_added.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Update maintenance, LUBM-like ({} triples): incremental vs full rebuild",
                db.graph().len()
            ),
            &[
                "batch (triples)".into(),
                "incr insert (ms)".into(),
                "incr delete (ms)".into(),
                "full rebuild (ms)".into(),
                "entailed added".into(),
            ],
            &rows,
        )
    );
    println!("paper §5.3: reformulation adapts at query time; saturation pays maintenance.");
}
