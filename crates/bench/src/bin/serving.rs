//! Concurrent serving throughput: the snapshot serving layer vs a
//! mutex-serialized baseline under multi-client load.
//!
//! The pre-serving way to put `RdfDatabase` behind a server is a
//! `Mutex<RdfDatabase>`: every request locks the database for its
//! whole parse + answer (the API needs `&mut self`). The serving layer
//! removes that serialization — requests pin an immutable snapshot and
//! answer on `&self`, and a bounded worker pool sized to the hardware
//! provides admission control so concurrent clients never oversubscribe
//! the cores (the same shape `jucq serve` deploys: clients enqueue,
//! workers answer). This bench offers the same fixed workload to both
//! designs at client counts 1, 2, 4 and 8 and records the throughput
//! of each, plus the headline ratio of served throughput at 8 clients
//! over the sequential baseline (the same serving stack driven by one
//! client at a time). Every
//! configuration's answers are fingerprinted and asserted identical —
//! concurrency must never change a result.
//!
//! Load generation is closed-loop with think time (the YCSB/TPC-C
//! client model): each client waits `THINK` between receiving a
//! response and submitting its next request, standing in for network
//! turnaround and client-side processing. Both designs and every
//! client count pay the identical think time; the sequential baseline
//! pays it inline while a loaded server overlaps it with other
//! clients' requests — the classic throughput case for concurrent
//! serving, which holds even on a single core. On multi-core hosts the
//! pool additionally overlaps whole requests; the JSON records the
//! hardware thread count so the numbers read in context. Each
//! configuration is measured best-of-`REPS` with reps interleaved
//! round-robin, and decoding/fingerprinting stay out of the timed
//! loop.
//!
//! Run: `cargo run --release -p jucq-bench --bin serving [universities]`

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use jucq_bench::harness::{arg_scale, lubm_db, render_table};
use jucq_core::{RdfDatabase, ServingDb, Strategy};
use jucq_datagen::lubm;
use jucq_store::EngineProfile;

const CLIENTS: [usize; 4] = [1, 2, 4, 8];
const REQUESTS_PER_QUERY: usize = 16;
const REPS: usize = 5;
/// Closed-loop client think time between a response and the next
/// request (simulated network turnaround + client-side processing).
const THINK: Duration = Duration::from_millis(1);

/// Sorted decoded rows per query — the answer fingerprint each
/// configuration must reproduce exactly.
fn fingerprint(rows: Vec<Vec<jucq_model::Term>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|row| row.iter().map(ToString::to_string).collect::<Vec<_>>().join("\t"))
        .collect();
    out.sort();
    out
}

/// One timed pass: `clients` threads split `requests` round-robin over
/// the workload, answering through `serve` (which returns the row
/// count). Returns wall time and the total rows produced — a cheap
/// checksum that the pass really did the work. Decoding and
/// fingerprinting stay out of the timed loop so the measurement is the
/// engine, not the bench's own string allocation.
fn run_pass<F>(clients: usize, queries: &[String], requests: usize, serve: F) -> (Duration, usize)
where
    F: Fn(&str) -> usize + Sync,
{
    let serve = &serve;
    let started = Instant::now();
    let rows: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                s.spawn(move || {
                    let mut rows = 0usize;
                    let mut i = client;
                    while i < requests {
                        std::thread::sleep(THINK);
                        rows += serve(&queries[i % queries.len()]);
                        i += clients;
                    }
                    rows
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });
    (started.elapsed(), rows)
}

/// A request waiting for a serving worker: query index plus the
/// channel the row count comes back on.
type Pending = (usize, mpsc::Sender<usize>);
/// The bounded admission queue: pending requests plus a closed flag,
/// with a condvar workers park on.
type Queue = Arc<(Mutex<(VecDeque<Pending>, bool)>, Condvar)>;

/// One timed pass through the serving layer as it actually deploys:
/// `clients` threads submit requests (one in flight each, like an HTTP
/// client awaiting its response) to a bounded queue drained by
/// `workers` pool threads, each answering on a freshly pinned
/// snapshot. Returns wall time and the total-row checksum.
fn run_served_pass(
    clients: usize,
    queries: &[String],
    requests: usize,
    workers: usize,
    serving: &jucq_core::ServingDb,
) -> (Duration, usize) {
    let queue: Queue = Arc::new((Mutex::new((VecDeque::new(), false)), Condvar::new()));
    let started = Instant::now();
    let rows: usize = std::thread::scope(|s| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            s.spawn(move || loop {
                let (lock, cvar) = &*queue;
                let mut state = lock.lock().expect("queue lock");
                let (qi, done) = loop {
                    if let Some(req) = state.0.pop_front() {
                        break req;
                    }
                    if state.1 {
                        return;
                    }
                    state = cvar.wait(state).expect("queue wait");
                };
                drop(state);
                let snapshot = serving.snapshot();
                let q = snapshot.parse_query(&queries[qi]).expect("workload query parses");
                let r = snapshot.answer(&q, &Strategy::gcov_default()).expect("served answer");
                let _ = done.send(r.rows.len());
            });
        }
        let client_rows: Vec<_> = (0..clients)
            .map(|client| {
                let queue = Arc::clone(&queue);
                s.spawn(move || {
                    let mut rows = 0usize;
                    let mut i = client;
                    while i < requests {
                        std::thread::sleep(THINK);
                        let (tx, rx) = mpsc::channel();
                        let (lock, cvar) = &*queue;
                        lock.lock().expect("queue lock").0.push_back((i % queries.len(), tx));
                        cvar.notify_one();
                        rows += rx.recv().expect("response for a submitted request");
                        i += clients;
                    }
                    rows
                })
            })
            .collect();
        let total = client_rows.into_iter().map(|h| h.join().expect("client thread")).sum();
        let (lock, cvar) = &*queue;
        lock.lock().expect("queue lock").1 = true;
        cvar.notify_all();
        total
    });
    (started.elapsed(), rows)
}

/// One untimed verification pass: every client fingerprints every
/// workload query; all observations must agree.
fn verify_pass<F>(clients: usize, queries: &[String], serve: F) -> Vec<Vec<String>>
where
    F: Fn(&str) -> Vec<Vec<jucq_model::Term>> + Sync,
{
    let serve = &serve;
    let fingerprints: Vec<Vec<Vec<String>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(move || queries.iter().map(|q| fingerprint(serve(q))).collect::<Vec<_>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let reference = fingerprints[0].clone();
    for client in &fingerprints[1..] {
        assert_eq!(&reference, client, "concurrent clients disagree on an answer");
    }
    reference
}

fn throughput(requests: usize, wall: Duration) -> f64 {
    requests as f64 / wall.as_secs_f64().max(1e-9)
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("serving");
    let universities = arg_scale(1, 1);
    eprintln!("building LUBM-like({universities} universities)...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    db.enable_plan_cache(64);
    eprintln!("  {} data triples", db.graph().len());

    let queries: Vec<String> = lubm::workload().into_iter().map(|nq| nq.sparql).collect();
    let requests = queries.len() * REQUESTS_PER_QUERY;

    // Baseline: the naive server — one mutex around the mutable
    // database, every request holds it for parse + answer.
    let mutex_db = Arc::new(Mutex::new({
        let mut b = lubm_db(universities, EngineProfile::pg_like());
        b.enable_plan_cache(64);
        b.prepare();
        b
    }));
    // Serving layer: immutable snapshots, `&self` answering.
    let serving = Arc::new(ServingDb::new(db));

    let snapshot_rows = |sparql: &str| {
        let snapshot = serving.snapshot();
        let q = snapshot.parse_query(sparql).expect("workload query parses");
        let r = snapshot.answer(&q, &Strategy::gcov_default()).expect("served answer");
        snapshot.decode_rows(&r.rows)
    };
    let snapshot_serve = |sparql: &str| {
        let snapshot = serving.snapshot();
        let q = snapshot.parse_query(sparql).expect("workload query parses");
        snapshot.answer(&q, &Strategy::gcov_default()).expect("served answer").rows.len()
    };
    let mutex_rows = |sparql: &str| {
        let mut db = mutex_db.lock().expect("baseline lock");
        let db: &mut RdfDatabase = &mut db;
        let q = db.parse_query(sparql).expect("workload query parses");
        let r = db.answer(&q, &Strategy::gcov_default()).expect("baseline answer");
        db.decode_rows(&r.rows)
    };
    let mutex_serve = |sparql: &str| {
        let mut db = mutex_db.lock().expect("baseline lock");
        let q = db.parse_query(sparql).expect("workload query parses");
        db.answer(&q, &Strategy::gcov_default()).expect("baseline answer").rows.len()
    };

    // Warm both plan caches so every timed pass runs the steady state.
    for sparql in &queries {
        let _ = snapshot_serve(sparql);
        let _ = mutex_serve(sparql);
    }

    // Correctness first (untimed): every concurrency level, both
    // designs, one fingerprint per query — all must agree.
    let mut reference: Vec<Vec<String>> = Vec::new();
    for &clients in &CLIENTS {
        let fps = verify_pass(clients, &queries, snapshot_rows);
        if reference.is_empty() {
            reference = fps;
        } else {
            assert_eq!(reference, fps, "snapshot answers changed at {clients} clients");
        }
        let fps = verify_pass(clients, &queries, mutex_rows);
        assert_eq!(reference, fps, "mutex baseline answers changed at {clients} clients");
    }
    eprintln!("answers identical across all concurrency levels and both designs");

    // Timed passes, reps interleaved round-robin across every
    // configuration so slow ambient drift biases no single cell; each
    // cell keeps its best (minimum) wall time.
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut expected_rows: Option<usize> = None;
    let mut served_best: Vec<Option<Duration>> = vec![None; CLIENTS.len()];
    let mut mutex_best: Vec<Option<Duration>> = vec![None; CLIENTS.len()];
    for rep in 0..REPS {
        eprintln!("rep {}/{REPS} ({workers} pool workers)...", rep + 1);
        for (slot, &clients) in CLIENTS.iter().enumerate() {
            let (wall, rows) = run_served_pass(clients, &queries, requests, workers, &serving);
            assert_eq!(rows, *expected_rows.get_or_insert(rows), "row checksum drifted");
            if served_best[slot].is_none_or(|b| wall < b) {
                served_best[slot] = Some(wall);
            }
            let (wall, rows) = run_pass(clients, &queries, requests, mutex_serve);
            assert_eq!(rows, expected_rows.unwrap(), "row checksum drifted");
            if mutex_best[slot].is_none_or(|b| wall < b) {
                mutex_best[slot] = Some(wall);
            }
        }
    }
    let snapshot_tp: Vec<(usize, f64)> = CLIENTS
        .iter()
        .zip(&served_best)
        .map(|(&c, w)| (c, throughput(requests, w.expect("measured"))))
        .collect();
    let mutex_tp: Vec<(usize, f64)> = CLIENTS
        .iter()
        .zip(&mutex_best)
        .map(|(&c, w)| (c, throughput(requests, w.expect("measured"))))
        .collect();

    let tp = |list: &[(usize, f64)], clients: usize| {
        list.iter().find(|(c, _)| *c == clients).map(|(_, t)| *t).unwrap_or(0.0)
    };
    // Sequential baseline: the same serving stack driven by one client
    // at a time. A loaded server beats it even on one core — a full
    // queue means the pool never idles waiting for a client turnaround.
    let sequential_baseline = tp(&snapshot_tp, 1);
    let served_at_8 = tp(&snapshot_tp, 8);
    let ratio_vs_sequential = served_at_8 / sequential_baseline.max(1e-9);
    let ratio_vs_mutex_at_8 = served_at_8 / tp(&mutex_tp, 8).max(1e-9);
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let rows: Vec<Vec<String>> = CLIENTS
        .iter()
        .map(|&c| {
            vec![
                c.to_string(),
                format!("{:.0}", tp(&snapshot_tp, c)),
                format!("{:.0}", tp(&mutex_tp, c)),
                format!("{:.2}", tp(&snapshot_tp, c) / tp(&mutex_tp, c).max(1e-9)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Served throughput, {requests} requests/pass, best of {REPS} \
                 ({hardware} hardware threads)"
            ),
            &["clients".into(), "snapshot (q/s)".into(), "mutex (q/s)".into(), "ratio".into()],
            &rows,
        )
    );
    println!(
        "8 clients: snapshot {served_at_8:.0} q/s, sequential baseline \
         {sequential_baseline:.0} q/s, ratio {ratio_vs_sequential:.2}x \
         (vs mutex at 8: {ratio_vs_mutex_at_8:.2}x)"
    );

    jucq_obs::metrics::gauge_set("bench.serving.throughput_8_clients", served_at_8);
    jucq_obs::metrics::gauge_set("bench.serving.sequential_baseline", sequential_baseline);
    jucq_obs::metrics::gauge_set("bench.serving.ratio", ratio_vs_sequential);

    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"serving\",\n");
    json.push_str(&format!("  \"universities\": {universities},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"requests_per_pass\": {requests},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"client_think_time_ms\": {},\n", THINK.as_millis()));
    json.push_str("  \"answers_identical_across_concurrency\": true,\n");
    json.push_str(&format!(
        "  \"served_throughput_ratio_vs_sequential\": {ratio_vs_sequential:.4},\n"
    ));
    json.push_str(&format!(
        "  \"served_throughput_ratio_vs_mutex_at_8\": {ratio_vs_mutex_at_8:.4},\n"
    ));
    json.push_str("  \"levels\": [\n");
    for (i, &clients) in CLIENTS.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {clients}, \"snapshot_qps\": {:.2}, \"mutex_qps\": {:.2}}}{}\n",
            tp(&snapshot_tp, clients),
            tp(&mutex_tp, clients),
            if i + 1 < CLIENTS.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_serving.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    assert!(
        ratio_vs_sequential >= 1.0,
        "snapshot serving at 8 clients fell below the sequential baseline \
         ({ratio_vs_sequential:.3}x)"
    );
}
