//! Table 2 — all eight covers of the motivating query q1: number of
//! union terms and execution time of each cover-based JUCQ
//! reformulation.
//!
//! Paper values (LUBM 100M, ms): (t1,t2,t3)=2256/6387;
//! (t1)(t2)(t3)=195/1,074,026; (t1,t2)(t3)=755/1968;
//! (t1)(t2,t3)=200/17,710; (t1,t3)(t2)=568/554;
//! (t1,t2)(t1,t3)=1316/2734; (t1,t2)(t2,t3)=764/2289;
//! (t1,t3)(t2,t3)=576/…
//!
//! Run: `cargo run --release -p jucq-bench --bin table2 [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, render_table, run_strategy, Cell};
use jucq_core::Strategy;
use jucq_datagen::lubm;
use jucq_reformulation::Cover;
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("table2");
    let universities = arg_scale(1, 4);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).expect("q1 parses");

    let covers: Vec<(&str, Vec<Vec<usize>>)> = vec![
        ("(t1,t2,t3)", vec![vec![0, 1, 2]]),
        ("(t1)(t2)(t3)", vec![vec![0], vec![1], vec![2]]),
        ("(t1,t2)(t3)", vec![vec![0, 1], vec![2]]),
        ("(t1)(t2,t3)", vec![vec![0], vec![1, 2]]),
        ("(t1,t3)(t2)", vec![vec![0, 2], vec![1]]),
        ("(t1,t2)(t1,t3)", vec![vec![0, 1], vec![0, 2]]),
        ("(t1,t2)(t2,t3)", vec![vec![0, 1], vec![1, 2]]),
        ("(t1,t3)(t2,t3)", vec![vec![0, 2], vec![1, 2]]),
    ];

    let mut rows = Vec::new();
    for (label, fragments) in covers {
        let cover = Cover::new(&q1, fragments).expect("valid cover of q1");
        let cell = run_strategy(&mut db, &q1, &Strategy::FixedCover(cover), 3);
        let (terms, time, result_rows) = match &cell {
            Cell::Time { union_terms, rows, .. } => {
                (union_terms.to_string(), cell.render(), rows.to_string())
            }
            Cell::Failed(_) => ("-".into(), cell.render(), "-".into()),
        };
        rows.push(vec![label.to_string(), terms, time, result_rows]);
    }

    // Also show which cover GCov picks.
    let gcov = db.answer(&q1, &Strategy::gcov_default()).expect("GCov");
    println!(
        "{}",
        render_table(
            &format!(
                "Table 2: covers of q1 (LUBM-like {universities} univ, {} triples)",
                db.graph().len()
            ),
            &["Cover".into(), "#reformulations".into(), "exec (ms)".into(), "#answers".into()],
            &rows,
        )
    );
    println!("GCov picks {} ({} union terms)", gcov.cover.expect("cover-based"), gcov.union_terms);
}
