//! Table 4 — characteristics of the workload queries: UCQ reformulation
//! size `|q_ref|` and answer-set size `|q(db)|` for the LUBM queries
//! (at two scales) and the DBLP queries.
//!
//! Paper shape: LUBM `|q_ref|` ranges 3 … 318,096 (Q28) and DBLP up to
//! 2,923,349 (Q10); answer sizes range from 0 to millions.
//!
//! Run: `cargo run --release -p jucq-bench --bin table4 [small] [large] [authors]`

use jucq_bench::harness::{arg_scale, dblp_db, lubm_db, render_table};
use jucq_core::{AnswerError, RdfDatabase, Strategy};
use jucq_datagen::{dblp, lubm, NamedQuery};
use jucq_store::EngineProfile;

/// |q_ref| via a bounded UCQ reformulation; reports `>N` beyond the cap.
fn ref_size(db: &mut RdfDatabase, q: &jucq_reformulation::BgpQuery) -> String {
    use jucq_reformulation::jucq::jucq_for_cover_bounded;
    use jucq_reformulation::reformulate::ReformulationEnv;
    use jucq_reformulation::Cover;
    let Ok(cover) = Cover::single_fragment(q) else {
        return "-".into();
    };
    let rdf_type = db.rdf_type();
    let closure = db.closure().clone();
    let env = ReformulationEnv { closure: &closure, rdf_type };
    match jucq_for_cover_bounded(q, &cover, &env, 500_000) {
        Ok(jucq) => jucq.union_terms().to_string(),
        Err(n) => format!(">{n}"),
    }
}

/// |q(db)| via saturation-based answering (always feasible).
fn answer_size(db: &mut RdfDatabase, q: &jucq_reformulation::BgpQuery) -> String {
    match db.answer(q, &Strategy::Saturation) {
        Ok(r) => r.rows.len().to_string(),
        Err(AnswerError::Engine(e)) => format!("({e})"),
        Err(e) => format!("({e})"),
    }
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("table4");
    let small = arg_scale(1, 2);
    let large = arg_scale(2, 8);
    let authors = arg_scale(3, 4_000);

    // --- LUBM ---
    let queries: Vec<NamedQuery> =
        lubm::motivating_queries().into_iter().chain(lubm::workload()).collect();

    eprintln!("building LUBM-like({small})...");
    let mut db_small = lubm_db(small, EngineProfile::pg_like());
    eprintln!("building LUBM-like({large})...");
    let mut db_large = lubm_db(large, EngineProfile::pg_like());

    let mut rows = Vec::new();
    for nq in &queries {
        eprint!("  {} ...", nq.name);
        let q_small = db_small.parse_query(&nq.sparql).expect("parses");
        let q_large = db_large.parse_query(&nq.sparql).expect("parses");
        let r = ref_size(&mut db_small, &q_small);
        let a_small = answer_size(&mut db_small, &q_small);
        let a_large = answer_size(&mut db_large, &q_large);
        eprintln!(" |q_ref|={r} small={a_small} large={a_large}");
        rows.push(vec![nq.name.clone(), r, a_small, a_large]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table 4a: LUBM query characteristics (small={} triples, large={} triples)",
                db_small.graph().len(),
                db_large.graph().len()
            ),
            &[
                "q".into(),
                "|q_ref|".into(),
                format!("|q(db)| ({small}u)"),
                format!("|q(db)| ({large}u)")
            ],
            &rows,
        )
    );

    // --- DBLP ---
    eprintln!("building DBLP-like({authors} authors)...");
    let mut db_dblp = dblp_db(authors, EngineProfile::pg_like());
    let mut rows = Vec::new();
    for nq in dblp::workload() {
        eprint!("  {} ...", nq.name);
        let q = db_dblp.parse_query(&nq.sparql).expect("parses");
        let r = ref_size(&mut db_dblp, &q);
        let a = answer_size(&mut db_dblp, &q);
        eprintln!(" |q_ref|={r} |q(db)|={a}");
        rows.push(vec![nq.name.clone(), r, a]);
    }
    println!(
        "{}",
        render_table(
            &format!("Table 4b: DBLP query characteristics ({} triples)", db_dblp.graph().len()),
            &["q".into(), "|q_ref|".into(), "|q(db)|".into()],
            &rows,
        )
    );
    println!("paper shape: LUBM |q_ref| ∈ [3, 318,096]; DBLP |q_ref| up to 2,923,349 (Q10).");
}
