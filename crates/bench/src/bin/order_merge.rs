//! Order-aware execution speedup: sort-elided merge joins, galloping
//! seeks and zero-copy scan borrows, on the LUBM heavy-join subset.
//!
//! Two legs share one prepared database and both run with
//! `fragment_join = SortMerge` under the SCQ strategy (one singleton
//! fragment per atom, so every multi-atom query joins at the fragment
//! level):
//!   baseline   order-awareness off — every merge join sorts both
//!              sides and every fragment union hashes through the
//!              dedup accumulator
//!   order      order-awareness on — scan permutations steered to the
//!              join key, provably-sorted merge inputs skip their
//!              sort, skewed merges gallop, and provably-distinct
//!              single-member fragments borrow their scan rows
//! Every query's answer is asserted identical across the legs, the
//! ordering counters of the order leg are asserted live (sorts elided,
//! gallop seeks), the aggregate speedup is gated at ≥ 1.3×, and the
//! machine-readable artifact lands in `results/BENCH_order_merge.json`.
//!
//! The bench also renders `EXPLAIN` for Q13 (the advisor chain) under
//! the *hash-join* pg-like profile and asserts a sort-elided MergeJoin
//! was chosen by cost (the profile's fragment join is Hash — nothing
//! forces a merge). Q09's explain is printed alongside for contrast:
//! its class-variable atoms reformulate into multi-member unions whose
//! output order is unknown, so hash legitimately wins there.
//!
//! Run: `cargo run --release -p jucq-bench --bin order_merge [scale]`

use std::time::Duration;

use jucq_bench::harness::{arg_scale, lubm_db, parse_workload, render_table, switch_profile};
use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_store::{EngineProfile, JoinAlgo};

const WARM: u32 = 5;

/// The heavy-join subset: multi-atom queries dominated by joins over
/// constant-predicate atoms, where the interesting-orders pass can
/// steer every leaf to a useful permutation (class-variable atoms like
/// Q09's reformulate into multi-member unions whose output order is
/// unknown, so order-awareness cannot reach them — those shapes are
/// covered by the contrast explain below, not the gate). The mix spans
/// chains (Q13, Q20), stars (Q15), and cycles (Q11, Q17, Q22).
const SUBSET: &[&str] = &["Q11", "Q13", "Q15", "Q17", "Q20", "Q22"];

struct Leg {
    label: &'static str,
    profile: EngineProfile,
}

fn legs() -> [Leg; 2] {
    let merge = EngineProfile::pg_like().with_fragment_join(JoinAlgo::SortMerge);
    [
        Leg { label: "baseline", profile: merge.clone().with_order_aware(false) },
        Leg { label: "order", profile: merge.with_order_aware(true) },
    ]
}

struct Cell {
    time: Option<Duration>,
    rows: Option<Vec<Vec<jucq_model::TermId>>>,
    sorts_elided: u64,
    gallop_seeks: u64,
    rows_borrowed: u64,
}

/// Best-of-`WARM` evaluation time under the current profile, with the
/// sorted answer for the cross-leg differential check and the ordering
/// counters of the last run. The caller interleaves legs per query, so
/// repeated calls fold into the running `best`.
fn measure(
    db: &mut RdfDatabase,
    q: &jucq_reformulation::BgpQuery,
    strategy: &Strategy,
    cell: &mut Cell,
) {
    let first = match db.answer(q, strategy) {
        Ok(r) => r,
        Err(_) => {
            cell.time = None;
            return;
        }
    };
    let mut sorted: Vec<Vec<jucq_model::TermId>> = first.rows.rows().map(|r| r.to_vec()).collect();
    sorted.sort();
    cell.rows = Some(sorted);
    let mut best = cell.time.unwrap_or(Duration::MAX);
    let mut c = first.counters;
    for _ in 0..WARM {
        match db.answer(q, strategy) {
            Ok(r) => {
                best = best.min(r.eval_time);
                c = r.counters;
            }
            Err(_) => {
                cell.time = None;
                return;
            }
        }
    }
    cell.time = Some(best);
    cell.sorts_elided = c.sorts_elided;
    cell.gallop_seeks = c.gallop_seeks;
    cell.rows_borrowed = c.scan_rows_borrowed;
}

fn ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.2}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("order_merge");
    let scale = arg_scale(1, 1);
    let strategy = Strategy::Scq;

    eprintln!("building LUBM-like({scale} universities)...");
    let mut db = lubm_db(scale, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let all = lubm::workload();
    let queries: Vec<_> = parse_workload(
        &mut db,
        &all.iter().filter(|q| SUBSET.contains(&q.name.as_str())).cloned().collect::<Vec<_>>(),
    );
    let contrast: Vec<_> = parse_workload(
        &mut db,
        &all.iter().filter(|q| q.name == "Q09").cloned().collect::<Vec<_>>(),
    );

    // cells[query][leg]. The legs alternate within each round so that
    // machine drift over the run hits both the same — a leg never runs
    // minutes after the one it is compared against.
    const ROUNDS: u32 = 5;
    let fresh =
        || Cell { time: None, rows: None, sorts_elided: 0, gallop_seeks: 0, rows_borrowed: 0 };
    let mut cells: Vec<Vec<Cell>> = queries.iter().map(|_| vec![fresh(), fresh()]).collect();
    let legs = legs();
    for round in 0..ROUNDS {
        eprintln!("round {}/{ROUNDS}...", round + 1);
        for (li, leg) in legs.iter().enumerate() {
            eprintln!("  [{}]", leg.label);
            switch_profile(&mut db, leg.profile.clone());
            for (qi, (_, q)) in queries.iter().enumerate() {
                let mut cell = std::mem::replace(&mut cells[qi][li], fresh());
                measure(&mut db, q, &strategy, &mut cell);
                cells[qi][li] = cell;
            }
        }
    }
    for (qi, (name, _)) in queries.iter().enumerate() {
        // Differential check: both legs answer identically.
        if let (Some(a), Some(b)) = (&cells[qi][0].rows, &cells[qi][1].rows) {
            assert_eq!(a, b, "{name}: order-aware answers diverge from baseline");
        }
    }

    let mut totals = [Duration::ZERO; 2];
    let (mut elided, mut gallops, mut borrowed) = (0u64, 0u64, 0u64);
    let mut table_rows = Vec::new();
    for (qi, (name, _)) in queries.iter().enumerate() {
        let order = &cells[qi][1];
        if cells[qi].iter().all(|c| c.time.is_some()) {
            totals[0] += cells[qi][0].time.unwrap();
            totals[1] += order.time.unwrap();
        }
        elided += order.sorts_elided;
        gallops += order.gallop_seeks;
        borrowed += order.rows_borrowed;
        table_rows.push(vec![
            name.clone(),
            ms(cells[qi][0].time),
            ms(order.time),
            format!("{}", order.sorts_elided),
            format!("{}", order.gallop_seeks),
            format!("{}", order.rows_borrowed),
        ]);
    }
    let speedup =
        if totals[1].is_zero() { 1.0 } else { totals[0].as_secs_f64() / totals[1].as_secs_f64() };

    println!(
        "{}",
        render_table(
            "Order-aware merge-join speedup — LUBM heavy-join subset (SCQ, SortMerge)",
            &[
                "q".into(),
                "baseline (ms)".into(),
                "order (ms)".into(),
                "sorts elided".into(),
                "gallops".into(),
                "rows borrowed".into(),
            ],
            &table_rows,
        )
    );
    println!(
        "total: baseline {:.1} ms, order-aware {:.1} ms ({speedup:.2}x); \
         {elided} sorts elided, {gallops} gallop seeks, {borrowed} scan rows borrowed",
        totals[0].as_secs_f64() * 1e3,
        totals[1].as_secs_f64() * 1e3,
    );
    jucq_obs::metrics::gauge_set("bench.order_merge.speedup", speedup);
    jucq_obs::metrics::gauge_set("bench.order_merge.sorts_elided", elided as f64);
    jucq_obs::metrics::gauge_set("bench.order_merge.gallop_seeks", gallops as f64);

    // EXPLAIN Q13 under the plain pg-like (Hash fragment join) profile:
    // the order-aware pass must *choose* a sort-elided merge join on
    // cost grounds — the profile forces nothing. Q09 is rendered for
    // contrast (its class-variable atoms reformulate into multi-member
    // unions with unknown output order, so hash correctly wins).
    switch_profile(&mut db, EngineProfile::pg_like());
    let (_, q13) = queries.iter().find(|(n, _)| n == "Q13").expect("Q13 is in the subset");
    let plan = db.explain(q13, &strategy).expect("Q13 plans under pg-like");
    println!("\nEXPLAIN Q13 (pg-like, Hash fragment join, SCQ cover):\n{plan}");
    assert!(
        plan.contains("MergeJoin") && plan.contains("sort elided"),
        "Q13 explain shows no cost-chosen sort-elided merge join:\n{plan}"
    );
    if let Some((_, q09)) = contrast.first() {
        if let Ok(p) = db.explain(q09, &strategy) {
            println!("\nEXPLAIN Q09 (contrast — multi-member unions keep hash optimal):\n{p}");
        }
    }

    // The experiment's gates: the order-aware leg must actually elide
    // and gallop, and must clear the 1.3x aggregate bar.
    assert!(elided > 0, "order-aware leg elided no sorts");
    assert!(gallops > 0, "order-aware leg took no gallop seeks");
    assert!(
        speedup >= 1.3,
        "order-aware speedup {speedup:.2}x below the 1.3x gate \
         (baseline {:.1} ms, order {:.1} ms)",
        totals[0].as_secs_f64() * 1e3,
        totals[1].as_secs_f64() * 1e3,
    );

    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"order_merge\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str("  \"strategy\": \"SCQ\",\n");
    json.push_str("  \"fragment_join\": \"SortMerge\",\n");
    json.push_str(&format!("  \"baseline_total_ms\": {:.3},\n", totals[0].as_secs_f64() * 1e3));
    json.push_str(&format!("  \"order_total_ms\": {:.3},\n", totals[1].as_secs_f64() * 1e3));
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"sorts_elided\": {elided},\n"));
    json.push_str(&format!("  \"gallop_seeks\": {gallops},\n"));
    json.push_str(&format!("  \"scan_rows_borrowed\": {borrowed},\n"));
    json.push_str("  \"queries\": [\n");
    for (qi, (name, _)) in queries.iter().enumerate() {
        let order = &cells[qi][1];
        json.push_str(&format!(
            "    {{\"query\": \"{name}\", \"baseline_ms\": {}, \"order_ms\": {}, \
             \"sorts_elided\": {}, \"gallop_seeks\": {}, \"scan_rows_borrowed\": {}}}{}\n",
            ms(cells[qi][0].time),
            ms(order.time),
            order.sorts_elided,
            order.gallop_seeks,
            order.rows_borrowed,
            if qi + 1 < queries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_order_merge.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
