//! Figure 9 — cost-model comparison: the JUCQs chosen by ECov/GCov when
//! guided by the paper's analytic cost model (§4.1) vs by the engine's
//! internal cost estimator (the paper's Postgres `EXPLAIN` harness).
//!
//! Paper shape: the two models mostly agree (similar evaluation times);
//! the analytic model is the more robust of the two — its choices are
//! always feasible, while the engine-model-guided choices occasionally
//! fail or time out.
//!
//! Run: `cargo run --release -p jucq-bench --bin fig9 [universities]`

use std::time::Duration;

use jucq_bench::harness::{arg_scale, lubm_db, render_table, run_strategy};
use jucq_core::{CostSource, Strategy};
use jucq_datagen::{lubm, NamedQuery};
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("fig9");
    let universities = arg_scale(1, 4);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let strategies = [
        ("ECov/paper", Strategy::ECov { budget: Duration::from_secs(30), cost: CostSource::Paper }),
        (
            "ECov/engine",
            Strategy::ECov { budget: Duration::from_secs(30), cost: CostSource::Engine },
        ),
        (
            "GCov/paper",
            Strategy::GCov {
                budget: Duration::from_secs(10),
                max_moves: 10_000,
                cost: CostSource::Paper,
            },
        ),
        (
            "GCov/engine",
            Strategy::GCov {
                budget: Duration::from_secs(10),
                max_moves: 10_000,
                cost: CostSource::Engine,
            },
        ),
    ];

    let queries: Vec<NamedQuery> =
        lubm::motivating_queries().into_iter().chain(lubm::workload()).collect();
    let mut rows = Vec::new();
    for nq in &queries {
        eprintln!("  {}...", nq.name);
        let q = db.parse_query(&nq.sparql).expect("parses");
        let mut row = vec![nq.name.clone()];
        for (_, s) in &strategies {
            row.push(run_strategy(&mut db, &q, s, 2).render());
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("q".to_string())
        .chain(strategies.iter().map(|(n, _)| format!("{n} (ms)")))
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 9: cost model comparison, LUBM-like ({} triples), pg-like engine",
                db.graph().len()
            ),
            &header,
            &rows,
        )
    );
}
