//! Range-scan speedup: hierarchy-aware dictionary encoding collapses
//! reformulation unions into single dictionary-interval range scans.
//!
//! Three strategies share one hierarchically-encoded database per
//! workload:
//!   ucq    full UCQ reformulation, one IndexScan per union member —
//!          run with the profile's `range_scans` knob *off*, because
//!          `Strategy::Ucq` and `Strategy::Range` reformulate
//!          identically and the union-to-interval collapse is a
//!          planner knob, not a strategy. Disabling it here is what
//!          makes this leg the true uncollapsed baseline.
//!   range  same reformulation, knob on: contiguous member runs
//!          collapsed into RangeScan/RangeProbe nodes by the planner
//!   gcov   the greedy cover optimizer (the engine default), knob on
//! The measured queries are the workloads' class-subtree queries — a
//! type (or property-subtree) atom over a hierarchy whose subtree the
//! LiteMat-style interval labeling turns into one contiguous range.
//! Two subsets matter and behave differently:
//!
//! * **extent-bound** queries (`*_SUBTREE`) return the whole subtree
//!   extent. Collapse removes only the per-member fixed overhead (plan
//!   dispatch, allocation, index positioning); the per-row scan and
//!   dedup work is identical by construction, so these sit near parity
//!   and are reported as context.
//! * **selective** queries (`LUBM_SELECTIVE`) join the subtree atom
//!   with a selective constant. Here the collapse changes the *work*:
//!   the fixpoint merges the member grid down to one member and the
//!   interval rides a RangeProbe — one contiguous index probe per
//!   binding row instead of one point probe per collapsed member. This
//!   subset carries the ≥ 1.5× gate.
//!
//! Every query's answer is asserted identical across the strategies,
//! and the artifact lands in `results/BENCH_range_speedup.json`.
//!
//! Run: `cargo run --release -p jucq-bench --bin range_speedup [scale]`

use std::time::Duration;

use jucq_bench::harness::{arg_scale, parse_workload, render_table, EXPERIMENT_TIMEOUT};
use jucq_core::{EncodingMode, RdfDatabase, Strategy};
use jucq_datagen::{dblp, lubm};
use jucq_optimizer::calibrate;
use jucq_store::EngineProfile;

const WARM: u32 = 5;

/// The extent-bound class-subtree subsets of the two workloads: single
/// type atoms (or a type atom plus one join) over classes with real
/// subtrees. Reported for context; collapse only removes per-member
/// fixed overhead here.
const LUBM_SUBTREE: &[&str] = &["Q02", "Q03", "Q06", "Q14", "Q21"];
const DBLP_SUBTREE: &[&str] = &["Q01", "Q02", "Q04", "Q05"];

/// The selective class-subtree subset carrying the speedup gate:
/// hierarchy atoms (Employee's class subtree in Q23, the memberOf and
/// degreeFrom property subtrees in Q08) joined with a selective
/// constant, so the collapsed interval is *probed* per binding row
/// instead of one point probe per union member.
const LUBM_SELECTIVE: &[&str] = &["Q08", "Q23"];

/// Build a hierarchically-encoded database and calibrate its constants.
fn hierarchical_db(graph: jucq_model::Graph, profile: EngineProfile) -> RdfDatabase {
    let mut db = RdfDatabase::from_graph(graph, profile.with_timeout(EXPERIMENT_TIMEOUT))
        .with_encoding(EncodingMode::Hierarchical);
    db.prepare();
    let constants = calibrate(db.plain_store());
    db.set_cost_constants(constants);
    db
}

/// Per-(query, strategy) measurement.
struct Cell {
    time: Option<Duration>,
    rows: Option<Vec<Vec<jucq_model::TermId>>>,
    range_scans: usize,
}

/// Best-of-`WARM` evaluation time of one query under one strategy.
fn measure(db: &mut RdfDatabase, q: &jucq_reformulation::BgpQuery, strategy: &Strategy) -> Cell {
    let first = match db.answer(q, strategy) {
        Ok(r) => r,
        Err(_) => return Cell { time: None, rows: None, range_scans: 0 },
    };
    let mut sorted: Vec<Vec<jucq_model::TermId>> = first.rows.rows().map(|r| r.to_vec()).collect();
    sorted.sort();
    let mut best = first.eval_time;
    let mut range_scans = first.range_scans_planned;
    for _ in 0..WARM {
        match db.answer(q, strategy) {
            Ok(r) => {
                best = best.min(r.eval_time);
                range_scans = r.range_scans_planned;
            }
            Err(_) => return Cell { time: None, rows: None, range_scans: 0 },
        }
    }
    Cell { time: Some(best), rows: Some(sorted), range_scans }
}

fn ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.2}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn speedup(base: Duration, other: Duration) -> f64 {
    if other.is_zero() {
        1.0
    } else {
        base.as_secs_f64() / other.as_secs_f64()
    }
}

struct WorkloadResult {
    workload: &'static str,
    // totals per strategy (ucq, range, gcov) over fully-measured queries
    totals: [Duration; 3],
    range_scans: usize,
    table_rows: Vec<Vec<String>>,
    per_query: Vec<(String, [Option<Duration>; 3], usize)>,
}

fn run_workload(
    workload: &'static str,
    db: &mut RdfDatabase,
    queries: &[(String, jucq_reformulation::BgpQuery)],
    profile: &EngineProfile,
) -> WorkloadResult {
    let strategies: [(&str, Strategy); 3] =
        [("ucq", Strategy::Ucq), ("range", Strategy::Range), ("gcov", Strategy::gcov_default())];
    // cells[query][strategy]
    let mut cells: Vec<Vec<Cell>> = queries.iter().map(|_| Vec::new()).collect();
    for (si, (label, strategy)) in strategies.iter().enumerate() {
        // Ucq and Range are the same reformulation; only the planner's
        // range-collapse knob separates them. Turn it off for the ucq
        // leg so the baseline really is one IndexScan per union member.
        db.set_profile(profile.clone().with_range_scans(*label != "ucq"));
        eprintln!("[{workload}/{label}] running class-subtree queries...");
        for (qi, (name, q)) in queries.iter().enumerate() {
            let cell = measure(db, q, strategy);
            if si > 0 {
                // Differential check: collapsing unions into range scans
                // must not change a single answer.
                if let (Some(a), Some(b)) = (&cells[qi][0].rows, &cell.rows) {
                    assert_eq!(a, b, "{workload}/{name}: {label} answers diverge from ucq");
                }
            }
            cells[qi].push(cell);
        }
    }

    let mut totals = [Duration::ZERO; 3];
    let mut range_scans = 0;
    let mut table_rows = Vec::new();
    let mut per_query = Vec::new();
    for (qi, (name, _)) in queries.iter().enumerate() {
        let all_done = cells[qi].iter().all(|c| c.time.is_some());
        if all_done {
            for (si, c) in cells[qi].iter().enumerate() {
                totals[si] += c.time.unwrap();
            }
        }
        range_scans += cells[qi][1].range_scans;
        table_rows.push(vec![
            name.clone(),
            ms(cells[qi][0].time),
            ms(cells[qi][1].time),
            ms(cells[qi][2].time),
            format!("{}", cells[qi][1].range_scans),
        ]);
        per_query.push((
            name.clone(),
            [cells[qi][0].time, cells[qi][1].time, cells[qi][2].time],
            cells[qi][1].range_scans,
        ));
    }
    WorkloadResult { workload, totals, range_scans, table_rows, per_query }
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("range_speedup");
    let scale = arg_scale(1, 2);

    let mut results: Vec<WorkloadResult> = Vec::new();

    // Strictly sequential: the union executor otherwise hides the
    // per-member overhead the collapse removes behind worker threads,
    // and the measurement becomes a thread-scheduling benchmark.
    let profile = EngineProfile::pg_like().with_parallelism(1).with_timeout(EXPERIMENT_TIMEOUT);

    eprintln!("building hierarchically-encoded LUBM-like({scale} universities)...");
    let mut db = hierarchical_db(lubm::generate(&lubm::LubmConfig::new(scale)), profile.clone());
    eprintln!("  {} data triples", db.graph().len());
    let workload: Vec<_> =
        lubm::workload().into_iter().filter(|q| LUBM_SUBTREE.contains(&q.name.as_str())).collect();
    let queries = parse_workload(&mut db, &workload);
    results.push(run_workload("lubm", &mut db, &queries, &profile));
    let workload: Vec<_> = lubm::workload()
        .into_iter()
        .filter(|q| LUBM_SELECTIVE.contains(&q.name.as_str()))
        .collect();
    let queries = parse_workload(&mut db, &workload);
    results.push(run_workload("lubm_selective", &mut db, &queries, &profile));

    eprintln!("building hierarchically-encoded DBLP-like({} authors)...", scale * 100);
    let mut db =
        hierarchical_db(dblp::generate(&dblp::DblpConfig::new(scale * 100)), profile.clone());
    eprintln!("  {} data triples", db.graph().len());
    let workload: Vec<_> =
        dblp::workload().into_iter().filter(|q| DBLP_SUBTREE.contains(&q.name.as_str())).collect();
    let queries = parse_workload(&mut db, &workload);
    results.push(run_workload("dblp", &mut db, &queries, &profile));

    for r in &results {
        println!(
            "{}",
            render_table(
                &format!("Range-scan speedup — {} (hierarchical encoding)", r.workload),
                &[
                    "q".into(),
                    "ucq (ms)".into(),
                    "range (ms)".into(),
                    "gcov (ms)".into(),
                    "range scans".into(),
                ],
                &r.table_rows,
            )
        );
        println!(
            "{}: ucq {:.2} ms, range {:.2} ms ({:.2}x), gcov {:.2} ms, \
             {} unions collapsed into range scans",
            r.workload,
            r.totals[0].as_secs_f64() * 1e3,
            r.totals[1].as_secs_f64() * 1e3,
            speedup(r.totals[0], r.totals[1]),
            r.totals[2].as_secs_f64() * 1e3,
            r.range_scans,
        );
        let (speedup_gauge, scans_gauge) = match r.workload {
            "lubm" => ("bench.range_speedup.lubm.speedup", "bench.range_speedup.lubm.range_scans"),
            "lubm_selective" => (
                "bench.range_speedup.lubm_selective.speedup",
                "bench.range_speedup.lubm_selective.range_scans",
            ),
            _ => ("bench.range_speedup.dblp.speedup", "bench.range_speedup.dblp.range_scans"),
        };
        jucq_obs::metrics::gauge_set(speedup_gauge, speedup(r.totals[0], r.totals[1]));
        jucq_obs::metrics::gauge_set(scans_gauge, r.range_scans as f64);
    }

    // The experiment's gate: the selective LUBM class-subtree queries
    // must collapse unions into range scans/probes and run at least
    // 1.5x faster than plain UCQ (answers asserted identical above).
    // The extent-bound subset is reported but not gated: returning a
    // whole subtree extent conserves per-row work under any strategy.
    let sel = results.iter().find(|r| r.workload == "lubm_selective").expect("lubm run");
    assert!(sel.range_scans > 0, "no selective LUBM union collapsed into a range scan");
    let sel_speedup = speedup(sel.totals[0], sel.totals[1]);
    assert!(
        sel_speedup >= 1.5,
        "selective LUBM class-subtree range speedup {sel_speedup:.2}x below the 1.5x gate"
    );

    // Machine-readable artifact.
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"range_speedup\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str("  \"encoding\": \"hierarchical\",\n");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"ucq_total_ms\": {:.3}, \"range_total_ms\": {:.3}, \
             \"gcov_total_ms\": {:.3}, \"range_speedup\": {:.4}, \"range_scans\": {},\n",
            r.workload,
            r.totals[0].as_secs_f64() * 1e3,
            r.totals[1].as_secs_f64() * 1e3,
            r.totals[2].as_secs_f64() * 1e3,
            speedup(r.totals[0], r.totals[1]),
            r.range_scans,
        ));
        json.push_str("     \"queries\": [\n");
        for (qi, (name, times, scans)) in r.per_query.iter().enumerate() {
            let t = |d: Option<Duration>| {
                d.map(|d| format!("{:.3}", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "null".into())
            };
            json.push_str(&format!(
                "       {{\"query\": \"{}\", \"ucq_ms\": {}, \"range_ms\": {}, \
                 \"gcov_ms\": {}, \"range_scans\": {}}}{}\n",
                name,
                t(times[0]),
                t(times[1]),
                t(times[2]),
                scans,
                if qi + 1 < r.per_query.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("     ]}}{}\n", if i + 1 < results.len() { "," } else { "" }));
    }
    json.push_str("  ]\n}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_range_speedup.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
