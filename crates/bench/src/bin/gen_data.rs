//! Dump a generated benchmark dataset as a Turtle file, ready for the
//! `jucq` CLI.
//!
//! ```text
//! gen_data lubm <universities> <out.ttl>
//! gen_data dblp <authors>      <out.ttl>
//! ```

use jucq_datagen::{dblp, lubm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [kind, scale, path] = args.as_slice() else {
        eprintln!("usage: gen_data lubm|dblp <scale> <out.ttl>");
        std::process::exit(2);
    };
    let scale: usize = scale.parse()?;
    let graph = match kind.as_str() {
        "lubm" => lubm::generate(&lubm::LubmConfig::new(scale)),
        "dblp" => dblp::generate(&dblp::DblpConfig::new(scale)),
        other => {
            eprintln!("unknown dataset `{other}`");
            std::process::exit(2);
        }
    };
    eprintln!("generated {} data triples, {} constraints", graph.len(), graph.schema().len());
    let text = jucq_core::turtle::write(&graph);
    std::fs::write(path, text)?;
    eprintln!("wrote {path}");
    Ok(())
}
