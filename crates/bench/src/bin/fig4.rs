//! Figure 4 — LUBM (small scale) query answering through UCQ, SCQ,
//! ECov and GCov JUCQ reformulations, under the three RDBMS-like engine
//! profiles (the paper's DB2 / Postgres / MySQL).
//!
//! Paper shape: neither UCQ nor SCQ is reliable — UCQ fails or is
//! slowest on many queries, SCQ collapses on the MySQL-like engine;
//! the GCov JUCQ always completes and is fastest overall.
//!
//! Run: `cargo run --release -p jucq-bench --bin fig4 [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, rdbms_figure};
use jucq_datagen::{lubm, NamedQuery};
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("fig4");
    let universities = arg_scale(1, 4);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let queries: Vec<NamedQuery> = lubm::workload();
    rdbms_figure(
        &format!("Figure 4: LUBM-like small scale ({} triples)", db.graph().len()),
        &mut db,
        &queries,
    );
}
