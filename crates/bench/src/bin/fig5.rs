//! Figure 5 — the Figure 4 experiment at the larger LUBM scale (the
//! paper's 100M-triple configuration; here laptop-scale, configurable).
//!
//! Paper shape: failures multiply at scale — UCQ becomes infeasible on
//! more queries, SCQ degrades by orders of magnitude, GCov stays fast;
//! GCov gains up to 4 orders of magnitude over SCQ and 2 over UCQ.
//!
//! Run: `cargo run --release -p jucq-bench --bin fig5 [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, rdbms_figure};
use jucq_datagen::{lubm, NamedQuery};
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("fig5");
    let universities = arg_scale(1, 12);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let queries: Vec<NamedQuery> = lubm::workload();
    rdbms_figure(
        &format!("Figure 5: LUBM-like large scale ({} triples)", db.graph().len()),
        &mut db,
        &queries,
    );
}
