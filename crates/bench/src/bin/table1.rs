//! Table 1 — characteristics of the motivating query q1's triples:
//! per-triple direct answers, reformulation counts, and answers after
//! reformulation, over the LUBM-like dataset.
//!
//! Paper values (LUBM 100M): t1 = (18,999,081 / 188 / 33,328,108),
//! t2 = (0 / 4 / 3,223), t3 = (4,434 / 3 / 5,939).
//!
//! Run: `cargo run --release -p jucq-bench --bin table1 [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, render_table};
use jucq_core::Strategy;
use jucq_datagen::lubm;
use jucq_reformulation::BgpQuery;
use jucq_store::EngineProfile;

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("table1");
    let universities = arg_scale(1, 4);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());

    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).expect("q1 parses");

    let mut rows = Vec::new();
    for (i, atom) in q1.atoms.iter().enumerate() {
        let single = BgpQuery::new(atom.variables().to_vec(), vec![*atom]);
        let direct = db
            .plain_store()
            .eval_cq(&single.to_store_cq())
            .expect("direct evaluation")
            .relation
            .len();
        let report = db.answer(&single, &Strategy::Ucq).expect("UCQ evaluation");
        rows.push(vec![
            format!("(t{})", i + 1),
            direct.to_string(),
            report.union_terms.to_string(),
            report.rows.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table 1: characteristics of q1 (LUBM-like {universities} univ, {} triples)",
                db.graph().len()
            ),
            &[
                "Triple".into(),
                "#answers".into(),
                "#reformulations".into(),
                "#answers after reformulation".into()
            ],
            &rows,
        )
    );
    println!(
        "paper (LUBM 100M): t1 = 18,999,081/188/33,328,108; t2 = 0/4/3,223; t3 = 4,434/3/5,939"
    );
}
