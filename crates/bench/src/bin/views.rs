//! Cross-query answer caching: repeated hot-fragment workload with the
//! materialized view catalog on vs off.
//!
//! The reformulation-based answering cost is paid per *request*: even
//! with a plan cache, every answer re-evaluates the cover fragments'
//! reformulated unions against the store. A served workload is not
//! one-shot — the same handful of templates arrive over and over — so
//! the catalog materializes each hot fragment once and every later
//! request scans the stored relation instead of re-running its union.
//!
//! This bench drives ≥100 requests round-robin over ≤10 hot LUBM
//! templates through the same database twice: views off (the
//! pre-catalog engine) and views on (every template's fragment pinned
//! under a generous tuple budget). Answers are fingerprinted and
//! asserted identical between the two configurations at every step,
//! and the headline ratio (views-on throughput over views-off) gates
//! at 2×.
//!
//! The run then exercises maintenance mid-workload with two
//! incremental deltas of known footprint:
//!
//! * a new `ub:Course` individual — a class no template's
//!   reformulation mentions — must invalidate *nothing*;
//! * a `ub:takesCourse` insert must invalidate *exactly* the fragments
//!   whose reformulated union reads that predicate (verified
//!   empirically per template through the catalog hit counter: dropped
//!   fragments stop hitting, survivors keep hitting), while every
//!   answer still equals a view-free database holding the same state.
//!
//! Run: `cargo run --release -p jucq-bench --bin views [universities]`

use std::time::{Duration, Instant};

use jucq_bench::harness::{arg_scale, lubm_db, render_table};
use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_model::{Term, Triple};
use jucq_store::EngineProfile;

/// Hot templates: the repeated shapes of the served workload. ≤10 by
/// design (the ISSUE's workload contract), chosen with concrete
/// classes/properties so every fragment footprint is exact (no
/// wildcard predicate/class atoms that would intersect every delta).
const TEMPLATES: [&str; 10] =
    ["Q01", "Q02", "Q03", "Q04", "Q05", "Q06", "Q07", "Q12", "Q14", "Q21"];
/// Requests per timed pass: round-robin over the templates.
const REQUESTS: usize = 120;
const REPS: usize = 5;
const BUDGET_TUPLES: usize = 5_000_000;

/// Sorted decoded rows — the configuration-independent answer
/// fingerprint both databases must reproduce exactly.
fn fingerprint(rows: Vec<Vec<Term>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|row| row.iter().map(ToString::to_string).collect::<Vec<_>>().join("\t"))
        .collect();
    out.sort();
    out
}

fn answer_fp(db: &mut RdfDatabase, sparql: &str) -> Vec<String> {
    let q = db.parse_query(sparql).expect("workload query parses");
    let r = db.answer(&q, &Strategy::Ucq).expect("workload query answers");
    fingerprint(db.decode_rows(&r.rows))
}

/// Assert both databases agree on every template, returning the
/// fingerprints as the level's reference answers.
fn assert_identical(
    off: &mut RdfDatabase,
    on: &mut RdfDatabase,
    queries: &[(String, String)],
    level: &str,
) -> Vec<Vec<String>> {
    queries
        .iter()
        .map(|(name, sparql)| {
            let expected = answer_fp(off, sparql);
            let got = answer_fp(on, sparql);
            assert_eq!(got, expected, "{name} diverged between views-on and views-off at {level}");
            expected
        })
        .collect()
}

/// One timed pass: `REQUESTS` requests round-robin over the templates,
/// returning wall time and a total-row checksum. Decoding stays out of
/// the timed loop.
fn run_pass(db: &mut RdfDatabase, queries: &[(String, String)]) -> (Duration, usize) {
    let parsed: Vec<_> = queries
        .iter()
        .map(|(_, sparql)| db.parse_query(sparql).expect("workload query parses"))
        .collect();
    let started = Instant::now();
    let mut rows = 0usize;
    for i in 0..REQUESTS {
        let q = &parsed[i % parsed.len()];
        rows += db.answer(q, &Strategy::Ucq).expect("workload query answers").rows.len();
    }
    (started.elapsed(), rows)
}

fn throughput(requests: usize, wall: Duration) -> f64 {
    requests as f64 / wall.as_secs_f64().max(1e-9)
}

/// Answer one template on the views database and report whether the
/// catalog served it (hit counter moved).
fn probe_hit(db: &mut RdfDatabase, sparql: &str) -> bool {
    let before = db.view_stats().expect("views enabled").hits;
    let _ = answer_fp(db, sparql);
    db.view_stats().expect("views enabled").hits > before
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("views");
    let universities = arg_scale(1, 1);
    eprintln!("building LUBM-like({universities} universities), twice...");
    // Same graph, same cost model, same plan cache — the only
    // difference between the two databases is the view catalog.
    let mut off = lubm_db(universities, EngineProfile::default().with_view_scans(false));
    off.enable_plan_cache(64);
    let mut on = lubm_db(universities, EngineProfile::default().with_view_scans(true));
    on.enable_plan_cache(64);
    on.enable_views(BUDGET_TUPLES);
    eprintln!("  {} data triples", on.graph().len());

    let queries: Vec<(String, String)> = lubm::workload()
        .into_iter()
        .filter(|nq| TEMPLATES.contains(&nq.name.as_str()))
        .map(|nq| (nq.name, nq.sparql))
        .collect();
    assert_eq!(queries.len(), TEMPLATES.len(), "every hot template resolved");

    // Level 0: no views pinned yet — the catalog must be a no-op.
    assert_identical(&mut off, &mut on, &queries, "level 0 (unpinned)");

    // Pin every template's cover fragment (UCQ: one fragment each).
    let mut pinned_total = 0usize;
    for (name, sparql) in &queries {
        let q = on.parse_query(sparql).expect("workload query parses");
        let pinned = on.pin_cover_fragments(&q, &Strategy::Ucq, None).expect("pin succeeds");
        assert_eq!(pinned, 1, "{name}: a UCQ plan pins exactly one fragment");
        pinned_total += pinned;
    }
    let stats = on.view_stats().expect("views enabled");
    assert_eq!(stats.entries, pinned_total, "all pins fit the budget");
    eprintln!("pinned {pinned_total} fragments ({} tuples of {BUDGET_TUPLES})", stats.total_tuples);

    // Level 1: views serving — answers still identical, catalog hitting.
    let hits_before = on.view_stats().unwrap().hits;
    assert_identical(&mut off, &mut on, &queries, "level 1 (pinned)");
    assert!(on.view_stats().unwrap().hits > hits_before, "pinned fragments actually serve");

    // Timed passes, reps interleaved so ambient drift biases neither
    // configuration; each keeps its best wall time.
    let mut best_off: Option<Duration> = None;
    let mut best_on: Option<Duration> = None;
    let mut expected_rows: Option<usize> = None;
    for rep in 0..REPS {
        eprintln!("rep {}/{REPS}...", rep + 1);
        let (wall, rows) = run_pass(&mut off, &queries);
        assert_eq!(rows, *expected_rows.get_or_insert(rows), "row checksum drifted (off)");
        if best_off.is_none_or(|b| wall < b) {
            best_off = Some(wall);
        }
        let (wall, rows) = run_pass(&mut on, &queries);
        assert_eq!(rows, expected_rows.unwrap(), "row checksum drifted (on)");
        if best_on.is_none_or(|b| wall < b) {
            best_on = Some(wall);
        }
    }
    let tp_off = throughput(REQUESTS, best_off.expect("measured"));
    let tp_on = throughput(REQUESTS, best_on.expect("measured"));
    let ratio = tp_on / tp_off.max(1e-9);

    // Mid-run maintenance. First a delta whose footprint no template
    // reads: a new `ub:Course` individual. Course is a known class
    // (incremental path) but lives under `Work`, outside every
    // template's class subtree — so no fragment footprint contains it.
    let ns = lubm::NS;
    let entries_before = on.view_stats().unwrap().entries;
    let disjoint = [Triple::new(
        Term::uri("http://example.org/bench/newCourse"),
        Term::uri(jucq_model::vocab::RDF_TYPE),
        Term::uri(format!("{ns}Course")),
    )];
    let report = on.apply_data_updates(&disjoint, &[]);
    assert!(report.incremental, "known-vocabulary insert takes the incremental path");
    off.apply_data_updates(&disjoint, &[]);
    let stats = on.view_stats().unwrap();
    assert_eq!(stats.entries, entries_before, "a disjoint delta invalidates nothing");
    assert_eq!(stats.invalidated, 0, "a disjoint delta invalidates nothing");
    assert_identical(&mut off, &mut on, &queries, "level 2 (disjoint delta)");

    // Then a delta that intersects: `ub:takesCourse` is read by every
    // fragment whose reformulation mentions it (Q06 textually; any
    // template whose class expansion pulls it in via domain/range).
    let invalidated_before = on.view_stats().unwrap().invalidated;
    let intersecting = [Triple::new(
        Term::uri("http://example.org/bench/newStudent"),
        Term::uri(format!("{ns}takesCourse")),
        Term::uri("http://example.org/bench/newCourse"),
    )];
    let report = on.apply_data_updates(&intersecting, &[]);
    assert!(report.incremental, "known-vocabulary insert takes the incremental path");
    off.apply_data_updates(&intersecting, &[]);
    let stats = on.view_stats().unwrap();
    let dropped = (stats.invalidated - invalidated_before) as usize;
    assert!(dropped >= 1, "the takesCourse delta invalidates at least Q06's fragment");
    assert_eq!(stats.entries, entries_before - dropped, "drops are exactly the invalidations");

    // Per-template exactness: dropped fragments stop hitting the
    // catalog, survivors keep hitting — and the set of non-hitting
    // templates is exactly as large as the invalidation count.
    let mut dropped_templates: Vec<&str> = Vec::new();
    for (name, sparql) in &queries {
        if !probe_hit(&mut on, sparql) {
            dropped_templates.push(name);
        }
    }
    assert_eq!(
        dropped_templates.len(),
        dropped,
        "exactly the intersecting fragments stopped serving: {dropped_templates:?}"
    );
    assert!(
        dropped_templates.contains(&"Q06"),
        "Q06 reads takesCourse textually and must be among the dropped"
    );
    assert!(dropped < queries.len(), "non-intersecting fragments survive");
    assert_identical(&mut off, &mut on, &queries, "level 3 (intersecting delta)");
    eprintln!(
        "maintenance: disjoint delta dropped 0, intersecting delta dropped {dropped} \
         ({dropped_templates:?}); answers identical throughout"
    );

    println!(
        "{}",
        render_table(
            &format!(
                "View cache, {REQUESTS} requests/pass over {} templates, best of {REPS}",
                queries.len()
            ),
            &["config".into(), "throughput (q/s)".into()],
            &[
                vec!["views off".into(), format!("{tp_off:.0}")],
                vec!["views on".into(), format!("{tp_on:.0}")],
            ],
        )
    );
    println!("views-on over views-off: {ratio:.2}x");

    jucq_obs::metrics::gauge_set("bench.views.throughput_off", tp_off);
    jucq_obs::metrics::gauge_set("bench.views.throughput_on", tp_on);
    jucq_obs::metrics::gauge_set("bench.views.ratio", ratio);

    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"view_cache\",\n");
    json.push_str(&format!("  \"universities\": {universities},\n"));
    json.push_str(&format!("  \"templates\": {},\n", queries.len()));
    json.push_str(&format!("  \"requests_per_pass\": {REQUESTS},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"budget_tuples\": {BUDGET_TUPLES},\n"));
    json.push_str(&format!("  \"pinned_fragments\": {pinned_total},\n"));
    json.push_str("  \"answers_identical_at_every_level\": true,\n");
    json.push_str("  \"disjoint_delta_invalidated\": 0,\n");
    json.push_str(&format!("  \"intersecting_delta_invalidated\": {dropped},\n"));
    json.push_str(&format!("  \"throughput_off_qps\": {tp_off:.2},\n"));
    json.push_str(&format!("  \"throughput_on_qps\": {tp_on:.2},\n"));
    json.push_str(&format!("  \"ratio_on_over_off\": {ratio:.4}\n"));
    json.push_str("}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("BENCH_view_cache.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    assert!(
        ratio >= 2.0,
        "the view catalog must at least double repeated-workload throughput (got {ratio:.2}x)"
    );
}
