//! Extension experiment — cardinality-estimator accuracy.
//!
//! The cost model's guidance (Figures 4–9) stands or falls with its
//! cardinality estimates. This binary measures the estimator's q-error
//! (`max(est/actual, actual/est)`, the standard metric) across the LUBM
//! workload for three granularities:
//!
//! * per-member CQ estimates (`est_cq`);
//! * fragment UCQ estimates, plain member-sum vs the overlap-aware
//!   join-of-unioned-extents template estimate;
//! * whole-query result estimates.
//!
//! Run: `cargo run --release -p jucq-bench --bin est_quality [universities]`

use jucq_bench::harness::{arg_scale, lubm_db, render_table};
use jucq_core::reformulation::reformulate::ReformulationEnv;
use jucq_core::Strategy;
use jucq_datagen::{lubm, NamedQuery};
use jucq_optimizer::PaperCostModel;
use jucq_reformulation::Cover;
use jucq_store::EngineProfile;

fn q_error(est: f64, actual: f64) -> f64 {
    let est = est.max(0.5);
    let actual = actual.max(0.5);
    (est / actual).max(actual / est)
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("est_quality");
    let universities = arg_scale(1, 2);
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let constants = db.cost_constants();

    let queries: Vec<NamedQuery> =
        lubm::motivating_queries().into_iter().chain(lubm::workload()).collect();
    let mut rows = Vec::new();
    for nq in &queries {
        eprintln!("  {}...", nq.name);
        let q = db.parse_query(&nq.sparql).expect("parses");
        // Actual result size via saturation (always feasible).
        let actual = match db.answer(&q, &Strategy::Saturation) {
            Ok(r) => r.rows.len() as f64,
            Err(_) => continue,
        };
        let rdf_type = db.rdf_type();
        let closure = db.closure().clone();
        let env = ReformulationEnv { closure: &closure, rdf_type };
        let Ok(cover) = Cover::single_fragment(&q) else { continue };
        let Ok(jucq) =
            jucq_core::reformulation::jucq::jucq_for_cover_bounded(&q, &cover, &env, 100_000)
        else {
            rows.push(vec![nq.name.clone(), "-".into(), "-".into(), actual.to_string()]);
            continue;
        };
        let store = db.plain_store();
        let model = PaperCostModel::new(store.table(), store.stats(), constants);
        // Member-sum estimate vs template estimate for the whole UCQ.
        let member_sum = store.stats().est_ucq(store.table(), &jucq.fragments[0]);
        let template = {
            let cq = &cover.cover_queries(&q)[0];
            let extents: Vec<f64> = cq
                .atoms
                .iter()
                .map(|a| {
                    let single =
                        jucq_reformulation::BgpQuery::new(a.variables().to_vec(), vec![*a]);
                    match jucq_core::reformulation::reformulate::reformulate_with_limit(
                        &single, &env, 100_000,
                    ) {
                        Ok(u) => model.ucq_scan_volume(&u),
                        Err(n) => n as f64,
                    }
                })
                .collect();
            store.stats().est_with_extents(&cq.atoms, &extents)
        };
        rows.push(vec![
            nq.name.clone(),
            format!("{:.1}", q_error(member_sum, actual)),
            format!("{:.1}", q_error(template, actual)),
            actual.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Estimator q-errors on UCQ result sizes (LUBM-like, {} triples)",
                db.graph().len()
            ),
            &["q".into(), "member-sum q-err".into(), "template q-err".into(), "actual rows".into(),],
            &rows,
        )
    );
    println!("(q-error = max(est/actual, actual/est); 1.0 is perfect)");
}
