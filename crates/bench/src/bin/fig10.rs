//! Figure 10 — optimized reformulation vs saturation-based answering:
//! UCQ reformulation, the GCov JUCQ, saturation on the relational
//! (pg-like) engine, and saturation on the native-RDF-like engine
//! (the paper's Virtuoso stand-in), at two LUBM scales.
//!
//! Paper shape: UCQ is up to three orders of magnitude worse than the
//! GCov JUCQ and fails on several queries at scale; saturation keeps an
//! edge on some queries, but the GCov JUCQ is competitive with it on
//! many others — remarkable, since reformulation reasons at query time.
//!
//! Run: `cargo run --release -p jucq-bench --bin fig10 [small] [large]`

use jucq_bench::harness::{arg_scale, lubm_db, render_table, run_strategy, switch_profile};
use jucq_core::Strategy;
use jucq_datagen::{lubm, NamedQuery};
use jucq_store::EngineProfile;

fn run_scale(universities: usize, label: &str) {
    eprintln!("building LUBM-like({universities})...");
    let mut db = lubm_db(universities, EngineProfile::pg_like());
    eprintln!("  {} data triples", db.graph().len());
    let queries: Vec<NamedQuery> = lubm::workload();

    let mut rows = Vec::new();
    for nq in &queries {
        eprintln!("  {}...", nq.name);
        let q = db.parse_query(&nq.sparql).expect("parses");
        // pg-like: UCQ, GCov JUCQ, saturation.
        switch_profile(&mut db, EngineProfile::pg_like());
        let ucq = run_strategy(&mut db, &q, &Strategy::Ucq, 2).render();
        let gcov = run_strategy(&mut db, &q, &Strategy::gcov_default(), 2).render();
        let sat_pg = run_strategy(&mut db, &q, &Strategy::Saturation, 2).render();
        // native-like: saturation only (the Virtuoso column).
        switch_profile(&mut db, EngineProfile::native_like());
        let sat_native = run_strategy(&mut db, &q, &Strategy::Saturation, 2).render();
        rows.push(vec![nq.name.clone(), ucq, gcov, sat_pg, sat_native]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 10({label}): reformulation vs saturation, LUBM-like ({universities} univ)"
            ),
            &[
                "q".into(),
                "UCQ (ms)".into(),
                "GCov JUCQ (ms)".into(),
                "SAT pg-like (ms)".into(),
                "SAT native-like (ms)".into(),
            ],
            &rows,
        )
    );
}

fn main() {
    let _obs = jucq_bench::harness::obs_sidecar("fig10");
    let small = arg_scale(1, 4);
    let large = arg_scale(2, 12);
    run_scale(small, "a");
    run_scale(large, "b");
}
