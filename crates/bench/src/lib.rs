//! # jucq-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! shared harness utilities in [`harness`]: dataset construction,
//! workload loading, strategy runners and plain-text report rendering
//! (the "figures" are rendered as aligned text tables; EXPERIMENTS.md
//! records paper-vs-measured).

#![warn(missing_docs)]

pub mod harness;
