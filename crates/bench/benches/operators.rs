//! Micro-benchmarks of the engine substrate's physical operators:
//! index-range scans, the three fragment-join algorithms, and duplicate
//! elimination. These are the quantities the §4.1 cost constants
//! (`c_t`, `c_j`, `c_l`) model, so their relative magnitudes sanity-check
//! the calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use jucq_model::term::TermKind;
use jucq_model::{TermId, TripleId};
use jucq_store::exec::{join, ExecContext};
use jucq_store::{EngineProfile, Relation, TripleTable};

fn id(i: u32) -> TermId {
    TermId::new(TermKind::Uri, i)
}

fn table(n: u32) -> TripleTable {
    let triples: Vec<TripleId> =
        (0..n).map(|i| TripleId::new(id(i), id(1_000_000 + i % 8), id(i % 1024))).collect();
    TripleTable::build(&triples)
}

fn relation(vars: Vec<u16>, rows: u32, dup_every: u32) -> Relation {
    let mut r = Relation::empty(vars.clone());
    for i in 0..rows {
        let key = id(i / dup_every);
        let row: Vec<TermId> = vars.iter().map(|_| key).collect();
        r.push_row(&row);
    }
    r
}

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    for &n in &[10_000u32, 100_000] {
        let t = table(n);
        g.bench_with_input(BenchmarkId::new("by_predicate", n), &t, |b, t| {
            b.iter(|| black_box(t.scan(&[None, Some(id(1_000_000)), None]).len()));
        });
        g.bench_with_input(BenchmarkId::new("point_lookup", n), &t, |b, t| {
            b.iter(|| black_box(t.count(&[Some(id(42)), Some(id(1_000_002)), None])));
        });
    }
    g.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("fragment_join");
    g.sample_size(20);
    let left = relation(vec![0, 1], 10_000, 1);
    let right = relation(vec![0, 2], 10_000, 1);
    let profile = EngineProfile::pg_like();
    g.bench_function("hash_10k_x_10k", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new(&profile);
            black_box(join::hash_join(&left, &right, &mut ctx).unwrap().len())
        });
    });
    g.bench_function("sort_merge_10k_x_10k", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new(&profile);
            black_box(join::sort_merge_join(&left, &right, &mut ctx).unwrap().len())
        });
    });
    // Block-nested-loop is quadratic; bench a smaller instance.
    let small_l = relation(vec![0, 1], 1_000, 1);
    let small_r = relation(vec![0, 2], 1_000, 1);
    g.bench_function("block_nested_loop_1k_x_1k", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new(&profile);
            black_box(join::block_nested_loop_join(&small_l, &small_r, &mut ctx).unwrap().len())
        });
    });
    g.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup");
    for &dup in &[1u32, 4, 32] {
        let base = relation(vec![0, 1], 50_000, dup);
        g.bench_with_input(BenchmarkId::new("hash_50k", dup), &base, |b, base| {
            b.iter(|| {
                let mut r = base.clone();
                black_box(r.dedup_in_place())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scans, bench_joins, bench_dedup);
criterion_main!(benches);
