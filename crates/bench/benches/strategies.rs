//! End-to-end strategy benchmarks on LUBM-like data, plus the physical
//! ablations DESIGN.md calls out: index-nested-loop vs hash CQ
//! evaluation, and the materialize-all-unions policy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use jucq_core::{RdfDatabase, Strategy};
use jucq_datagen::lubm;
use jucq_store::EngineProfile;

fn db_with(profile: EngineProfile) -> (RdfDatabase, jucq_reformulation::BgpQuery) {
    let graph = lubm::generate(&lubm::LubmConfig::new(1));
    let mut db = RdfDatabase::from_graph(graph, profile);
    db.set_cost_constants(Default::default());
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    db.prepare();
    (db, q1)
}

fn bench_strategies(c: &mut Criterion) {
    let (mut db, q1) = db_with(EngineProfile::pg_like());
    let mut g = c.benchmark_group("q1_strategies");
    g.sample_size(10);
    for (name, s) in [
        ("saturation", Strategy::Saturation),
        ("ucq", Strategy::Ucq),
        ("scq", Strategy::Scq),
        ("gcov", Strategy::gcov_default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(db.answer(&q1, &s).unwrap().rows.len()));
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("physical_ablations");
    g.sample_size(10);

    // CQ evaluation: index-nested-loop pipeline vs hashed extents.
    let (mut inlj_db, q1) = db_with(EngineProfile::pg_like());
    g.bench_function("cq_inlj", |b| {
        b.iter(|| black_box(inlj_db.answer(&q1, &Strategy::Ucq).unwrap().rows.len()));
    });
    let mut hash_profile = EngineProfile::pg_like();
    hash_profile.index_nested_loop_cq = false;
    let (mut hash_db, q1h) = db_with(hash_profile);
    g.bench_function("cq_hash_extents", |b| {
        b.iter(|| black_box(hash_db.answer(&q1h, &Strategy::Ucq).unwrap().rows.len()));
    });

    // Union materialization policy (the MySQL-like derived-table copy).
    let mut mat_profile = EngineProfile::pg_like();
    mat_profile.materialize_all_unions = true;
    let (mut mat_db, q1m) = db_with(mat_profile);
    g.bench_function("scq_materialize_all", |b| {
        b.iter(|| black_box(mat_db.answer(&q1m, &Strategy::Scq).unwrap().rows.len()));
    });
    let (mut pipe_db, q1p) = db_with(EngineProfile::pg_like());
    g.bench_function("scq_pipelined", |b| {
        b.iter(|| black_box(pipe_db.answer(&q1p, &Strategy::Scq).unwrap().rows.len()));
    });
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_ablations);
criterion_main!(benches);
