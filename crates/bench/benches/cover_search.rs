//! Benchmarks of the cover-search algorithms (planning cost only):
//! GCov vs ECov, and the Figure 9 ablation between the paper's cost
//! model and the engine's internal estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use jucq_core::RdfDatabase;
use jucq_datagen::lubm;
use jucq_model::SchemaClosure;
use jucq_optimizer::{ecov, gcov, CostConstants, CoverSearch, EngineCostModel, PaperCostModel};
use jucq_reformulation::reformulate::ReformulationEnv;
use jucq_reformulation::BgpQuery;
use jucq_store::{EngineProfile, Store};

struct Fixture {
    closure: SchemaClosure,
    rdf_type: jucq_model::TermId,
    store: Store,
    q1: BgpQuery,
    q22: BgpQuery,
}

fn fixture() -> Fixture {
    let graph = lubm::generate(&lubm::LubmConfig::new(1));
    let mut db = RdfDatabase::from_graph(graph, EngineProfile::pg_like());
    db.set_cost_constants(CostConstants::default());
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    let q22 = {
        let nq = lubm::workload().into_iter().find(|q| q.name == "Q22").unwrap();
        db.parse_query(&nq.sparql).unwrap()
    };
    db.prepare();
    Fixture {
        closure: db.closure().clone(),
        rdf_type: db.rdf_type(),
        store: db.plain_store().clone(),
        q1,
        q22,
    }
}

fn bench_search(c: &mut Criterion) {
    let f = fixture();
    let env = ReformulationEnv { closure: &f.closure, rdf_type: f.rdf_type };
    let paper = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
    let engine = EngineCostModel::new(&f.store);
    let budget = Duration::from_secs(60);

    let mut g = c.benchmark_group("cover_search");
    g.sample_size(10);

    g.bench_function("gcov_q1_paper_model", |b| {
        b.iter(|| {
            let search = CoverSearch::new(&f.q1, env, &paper);
            black_box(gcov(&search, budget, 10_000).expect("connected query").explored)
        });
    });
    g.bench_function("ecov_q1_paper_model", |b| {
        b.iter(|| {
            let search = CoverSearch::new(&f.q1, env, &paper);
            black_box(ecov(&search, budget).expect("connected query").explored)
        });
    });
    g.bench_function("gcov_q22_6atoms", |b| {
        b.iter(|| {
            let search = CoverSearch::new(&f.q22, env, &paper);
            black_box(gcov(&search, budget, 10_000).expect("connected query").explored)
        });
    });
    g.bench_function("ecov_q22_6atoms", |b| {
        b.iter(|| {
            let search = CoverSearch::new(&f.q22, env, &paper);
            black_box(ecov(&search, budget).expect("connected query").explored)
        });
    });
    // Ablation: engine-internal estimator instead of the paper model.
    g.bench_function("gcov_q1_engine_model", |b| {
        b.iter(|| {
            let search = CoverSearch::new(&f.q1, env, &engine);
            black_box(gcov(&search, budget, 10_000).expect("connected query").explored)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
