//! Benchmarks of the CQ-to-UCQ reformulation algorithm, including the
//! ablation DESIGN.md calls out: the per-atom product fast path vs the
//! general breadth-first fixpoint on independent multi-atom queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use jucq_core::RdfDatabase;
use jucq_datagen::lubm;
use jucq_model::SchemaClosure;
use jucq_reformulation::reformulate::{
    reformulate_fixpoint, reformulate_with_limit, ReformulationEnv,
};
use jucq_reformulation::BgpQuery;
use jucq_store::EngineProfile;

struct Fixture {
    closure: SchemaClosure,
    rdf_type: jucq_model::TermId,
    q1: BgpQuery,
    type_atom: BgpQuery,
}

fn fixture() -> Fixture {
    let graph = lubm::generate(&lubm::LubmConfig::new(1));
    let mut db = RdfDatabase::from_graph(graph, EngineProfile::pg_like());
    db.set_cost_constants(Default::default());
    let q1 = db.parse_query(&lubm::motivating_queries()[0].sparql).unwrap();
    let type_atom = db.parse_query("SELECT ?x ?y WHERE { ?x a ?y }").unwrap();
    db.prepare();
    Fixture { closure: db.closure().clone(), rdf_type: db.rdf_type(), q1, type_atom }
}

fn bench_reformulate(c: &mut Criterion) {
    let f = fixture();
    let env = ReformulationEnv { closure: &f.closure, rdf_type: f.rdf_type };
    let mut g = c.benchmark_group("reformulate");
    g.sample_size(20);

    g.bench_function("type_variable_atom", |b| {
        b.iter(|| black_box(reformulate_with_limit(&f.type_atom, &env, usize::MAX).unwrap().len()));
    });
    g.bench_function("q1_product_fast_path", |b| {
        b.iter(|| black_box(reformulate_with_limit(&f.q1, &env, usize::MAX).unwrap().len()));
    });
    // Ablation: the general fixpoint on the same q1 (the fast path
    // normally handles it); quantifies what the product decomposition
    // saves.
    g.bench_function("q1_general_fixpoint_ablation", |b| {
        b.iter(|| black_box(reformulate_fixpoint(&f.q1, &env, usize::MAX).unwrap().len()));
    });
    g.bench_function("q1_with_limit_short_circuit", |b| {
        b.iter(|| black_box(reformulate_with_limit(&f.q1, &env, 10).is_err()));
    });
    // Containment minimization of the class-variable atom's union
    // (quadratic in members; the opt-in trade-off).
    let type_ucq = reformulate_with_limit(&f.type_atom, &env, usize::MAX).unwrap();
    g.bench_function("minimize_type_atom_union", |b| {
        b.iter(|| black_box(jucq_reformulation::minimize_ucq(&type_ucq).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_reformulate);
criterion_main!(benches);
