//! Scoped span tracing with parent/child nesting.
//!
//! A span is opened with [`span`] (or the [`span!`] statement macro)
//! and closes when its guard drops. Open spans form a per-thread stack,
//! so nesting is tracked without any caller bookkeeping; completed
//! spans land in a bounded process-global buffer in end order.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Cap on buffered spans; beyond this, spans are counted as dropped
/// rather than growing memory without bound.
const MAX_BUFFERED_SPANS: usize = 65_536;

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (process-wide, monotonically assigned at open).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static site name, e.g. `"cover_search"`.
    pub name: &'static str,
    /// Nanoseconds from process trace epoch to span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Opening thread, as a small dense index.
    pub thread: u64,
}

struct Collector {
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    next_id: AtomicU64,
    next_thread: AtomicU64,
    epoch: Instant,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        spans: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
        next_id: AtomicU64::new(1),
        next_thread: AtomicU64::new(1),
        epoch: Instant::now(),
    })
}

thread_local! {
    /// Stack of open span ids on this thread.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Dense per-thread index, assigned on first span.
    static THREAD_IX: RefCell<Option<u64>> = const { RefCell::new(None) };
}

fn thread_index(c: &Collector) -> u64 {
    THREAD_IX.with(|ix| {
        *ix.borrow_mut().get_or_insert_with(|| c.next_thread.fetch_add(1, Ordering::Relaxed))
    })
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    thread: u64,
}

/// RAII guard returned by [`span`]; records the span when dropped.
/// A no-op (and nearly free) while observability is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Open a span named `name`, closing it when the guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let c = collector();
    let id = c.next_id.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN.with(|open| {
        let mut open = open.borrow_mut();
        let parent = open.last().copied();
        open.push(id);
        parent
    });
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            start: Instant::now(),
            thread: thread_index(c),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        let c = collector();
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            // Guards drop in LIFO order in ordinary code; be tolerant of
            // exotic drop orders by removing wherever the id sits.
            if let Some(pos) = open.iter().rposition(|&id| id == active.id) {
                open.remove(pos);
            }
        });
        let start_ns = active.start.duration_since(c.epoch).as_nanos() as u64;
        let mut spans = c.spans.lock().expect("span buffer poisoned");
        if spans.len() >= MAX_BUFFERED_SPANS {
            c.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(SpanRecord {
                id: active.id,
                parent: active.parent,
                name: active.name,
                start_ns,
                dur_ns,
                thread: active.thread,
            });
        }
    }
}

/// Drain all completed spans, returning them with the drop count
/// (which is reset alongside the buffer).
pub fn drain() -> (Vec<SpanRecord>, u64) {
    let c = collector();
    let spans = std::mem::take(&mut *c.spans.lock().expect("span buffer poisoned"));
    let dropped = c.dropped.swap(0, Ordering::Relaxed);
    (spans, dropped)
}

/// Drain completed spans, discarding the drop count.
pub fn take_spans() -> Vec<SpanRecord> {
    drain().0
}

/// Open a span for the rest of the enclosing scope:
/// `jucq_obs::span!("cover_search");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _jucq_obs_span_guard = $crate::span($name);
    };
}

#[cfg(test)]
mod tests {
    // Cross-thread behaviour is covered here; single-thread nesting is
    // covered in the crate-root test (global state, one test per file).
    #[test]
    fn thread_indices_are_distinct() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        let h = std::thread::spawn(|| {
            let _g = crate::span("worker_side");
        });
        {
            let _g = crate::span("main_side");
        }
        h.join().expect("worker thread");
        crate::set_enabled(false);
        let (spans, _) = super::drain();
        let worker = spans.iter().find(|s| s.name == "worker_side");
        let main = spans.iter().find(|s| s.name == "main_side");
        if let (Some(w), Some(m)) = (worker, main) {
            assert_ne!(w.thread, m.thread);
            assert_eq!(w.parent, None);
            assert_eq!(m.parent, None);
        }
    }
}
