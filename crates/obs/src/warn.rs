//! One-shot configuration warnings.
//!
//! Misconfiguration (an unparsable `JUCQ_THREADS`, say) should be
//! surfaced exactly once per process, not once per query, and should
//! leave a trace in the metrics registry so headless runs can detect it
//! after the fact. [`warn_once`] does both: the first call under a given
//! key prints the message to stderr and every call bumps the key's
//! counter (counters respect the global enable switch; the stderr line
//! does not, because a user who never turns on observability still
//! deserves to hear their env var was ignored).

use std::collections::BTreeSet;
use std::sync::Mutex;

static EMITTED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Emit `msg` to stderr the first time `key` is seen in this process and
/// bump the counter `key` (when observability is enabled). Returns
/// whether the message was printed by this call.
pub fn warn_once(key: &'static str, msg: &str) -> bool {
    crate::metrics::counter_add(key, 1);
    let mut emitted = EMITTED.lock().unwrap_or_else(|e| e.into_inner());
    if emitted.insert(key) {
        eprintln!("jucq: warning: {msg}");
        true
    } else {
        false
    }
}

/// Whether `key` has already produced its stderr line.
pub fn warned(key: &'static str) -> bool {
    EMITTED.lock().unwrap_or_else(|e| e.into_inner()).contains(key)
}

/// Forget all emitted keys (tests only — warnings are per-process).
pub fn reset_for_test() {
    EMITTED.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_per_key_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Barrier};
        let _serial = crate::test_lock();
        reset_for_test();
        let printed = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let printed = Arc::clone(&printed);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..100 {
                        if warn_once("warn.cross_thread_key", "raced") {
                            printed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("warn thread");
        }
        assert_eq!(printed.load(Ordering::Relaxed), 1, "exactly one thread printed");
        assert!(warned("warn.cross_thread_key"));
        reset_for_test();
    }

    #[test]
    fn warns_exactly_once_per_key_and_counts_every_call() {
        let _serial = crate::test_lock();
        reset_for_test();
        crate::metrics::global().reset();
        crate::set_enabled(true);
        assert!(!warned("warn.test_key"));
        assert!(warn_once("warn.test_key", "first"));
        assert!(!warn_once("warn.test_key", "second"));
        assert!(warned("warn.test_key"));
        crate::set_enabled(false);
        assert_eq!(crate::metrics::global().snapshot().counter("warn.test_key"), 2);
        crate::metrics::global().reset();
        reset_for_test();
    }
}
