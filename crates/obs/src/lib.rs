//! End-to-end observability for the JUCQ pipeline.
//!
//! Three pieces, all zero-dependency and disabled by default:
//!
//! - [`span`] / [`span!`]: lightweight scoped timers with parent/child
//!   nesting, collected into a bounded global buffer. Instrumentation
//!   sites cost one relaxed atomic load when observability is off.
//! - [`Registry`]: a process-global metrics registry of counters,
//!   gauges, and log-bucketed histograms under dotted names
//!   (`plan_cache.hits`, `exec.tuples_scanned`, ...).
//! - [`export`]: text and JSON renderings of the collected spans and
//!   metrics, shared by the CLI and the bench harness.
//! - [`record`]: the structured query log — one [`record::QueryRecord`]
//!   per answered query, appended as JSONL to a ring-buffered sink
//!   (`JUCQ_QUERY_LOG` / `--query-log`), the input of `jucq replay`.
//! - [`trace_export`]: Chrome-trace-event (catapult JSON) rendering of
//!   a span session, for Perfetto / `about://tracing` (`--trace-out`).
//! - [`json`]: the matching zero-dependency JSON reader, shared by the
//!   query-log parser and the replay harness.
//!
//! The master switch is [`set_enabled`]; [`take_session`] drains
//! everything collected so far (spans, metrics, drop counts) into an
//! [`ObsSession`] ready for export. The query-log sink is independent
//! of the switch: installing it is its own opt-in.

pub mod export;
pub mod json;
pub mod metrics;
pub mod record;
pub mod span;
pub mod trace_export;
pub mod warn;

pub use metrics::{global, HistogramSnapshot, MetricsSnapshot, Registry};
pub use record::{NodeRecord, QueryLogConfig, QueryRecord, RecordCounters};
pub use span::{span, take_spans, SpanGuard, SpanRecord};
pub use trace_export::to_chrome_trace;
pub use warn::warn_once;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn collection on or off process-wide. Off (the default) reduces
/// every instrumentation site to one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Everything collected over an observed run, ready for export.
#[derive(Debug, Clone)]
pub struct ObsSession {
    /// Completed spans in end order (children precede parents).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the collector buffer was full.
    pub dropped_spans: u64,
    /// Counter/gauge/histogram state at drain time.
    pub metrics: MetricsSnapshot,
}

/// Drain all collected spans and snapshot the metrics registry.
///
/// Metrics are left in place (they are cumulative); spans are removed.
pub fn take_session() -> ObsSession {
    let (spans, dropped_spans) = span::drain();
    ObsSession { spans, dropped_spans, metrics: global().snapshot() }
}

/// Reset all observability state: spans, drop counts, and metrics.
pub fn reset() {
    span::drain();
    global().reset();
}

/// Serializes tests that poke the process-global collector state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_round_trips() {
        let _serial = crate::test_lock();
        assert!(!enabled());
        {
            let _g = span("ignored_while_off");
        }
        let (spans, _) = span::drain();
        assert!(spans.iter().all(|s| s.name != "ignored_while_off"));

        set_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_enabled(false);
        let (spans, dropped) = span::drain();
        assert_eq!(dropped, 0);
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner span");
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer span");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(inner.dur_ns <= outer.dur_ns + 1_000_000);
    }
}
