//! The structured query log: one [`QueryRecord`] per answered query,
//! appended as JSONL to an optional file and retained in a bounded
//! in-process ring.
//!
//! This is the workload capture the serving layer and the view advisor
//! consume: enough to re-execute the query (normalized text +
//! strategy + profile fingerprint), to attribute its cost (per-phase
//! timings, executor counters, per-node estimate quality), and to spot
//! regressions (`jucq replay` diffs a recorded log against the current
//! build). The sink is process-global like the rest of the crate, and
//! configured via [`install`] (the CLI's `--query-log` / `--slow-ms`)
//! or [`install_from_env`] (`JUCQ_QUERY_LOG` / `JUCQ_SLOW_MS`).
//!
//! Records are written independently of the [`crate::enabled`] span/
//! metrics switch: installing the sink *is* the opt-in.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use crate::export::escape_json;
use crate::json::{self, Value};

/// Executor work counters of one query, mirrored into the log.
///
/// (A standalone mirror of the executor's counter block — this crate
/// sits below the store and cannot name its types.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordCounters {
    /// Tuples read from scans.
    pub tuples_scanned: u64,
    /// Tuples produced by joins.
    pub tuples_joined: u64,
    /// Tuples materialized into intermediates.
    pub tuples_materialized: u64,
    /// Duplicate tuples removed.
    pub tuples_deduped: u64,
    /// Sideways-information-passing filter probes.
    pub sip_probes: u64,
    /// Probes dropped by SIP filters before the join.
    pub sip_drops: u64,
    /// Collapsed-interval (`RangeScan`) operator executions
    /// (`jucq-log/2`; 0 when parsed from a `jucq-log/1` line).
    pub range_scans: u64,
    /// Epoch-exact materialized-view resolutions (`ViewScan` leaves
    /// served from the catalog; `jucq-log/3`, 0 from earlier lines).
    pub view_hits: u64,
    /// Merge-join sort passes skipped because the input already arrived
    /// in key order (`jucq-log/4`, 0 from earlier lines).
    pub sorts_elided: u64,
    /// Galloping (exponential-probe) seeks taken by skewed merge joins
    /// (`jucq-log/4`, 0 from earlier lines).
    pub gallop_seeks: u64,
}

/// One profiled plan node: the estimate/actual pair behind the Q-error.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Scoped plan-node label, e.g. `fragment[0].union`.
    pub label: String,
    /// Optimizer cardinality estimate, when the node has one.
    pub est_rows: Option<f64>,
    /// Measured output rows.
    pub actual_rows: u64,
    /// Inclusive wall time, nanoseconds.
    pub elapsed_ns: u64,
    /// `inf`-safe Q-error (see [`q_error_safe`]).
    pub q_error: Option<f64>,
}

/// One answered (or failed) query, as logged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryRecord {
    /// Sequence number within the log (assigned by [`submit`]).
    pub seq: u64,
    /// Normalized SPARQL text (re-parseable by `jucq replay`).
    pub query: String,
    /// Stable fingerprint of the canonicalized query.
    pub fingerprint: String,
    /// Strategy short name (`SAT`, `UCQ`, `SCQ`, `Range`, `UCQmin`,
    /// `ECov`, `GCov`, `Cover`).
    pub strategy: String,
    /// The engine profile's plan-affecting knob fingerprint.
    pub profile: String,
    /// `ok`, `union_too_large`, `memory_breach`, `deadline`,
    /// `cancelled`, or `cover_error`.
    pub outcome: String,
    /// Answer rows (0 on failure).
    pub rows: u64,
    /// Union terms of the evaluated reformulation.
    pub union_terms: u64,
    /// Planning (reformulation + cover search) time, nanoseconds.
    pub planning_ns: u64,
    /// Evaluation time, nanoseconds.
    pub eval_ns: u64,
    /// Chosen cover as atom-index fragments, for cover-based strategies.
    pub cover: Option<Vec<Vec<u64>>>,
    /// Fingerprint of the physical plan's node labels.
    pub plan_fingerprint: Option<String>,
    /// Executor counters.
    pub counters: RecordCounters,
    /// Whether the cover came from the plan cache (`None`: no cache or
    /// not a cached strategy).
    pub cover_cache_hit: Option<bool>,
    /// Whether the lowered physical plan came from the plan cache.
    pub plan_cache_hit: Option<bool>,
    /// Largest per-node Q-error of the run.
    pub max_q_error: Option<f64>,
    /// Per-node estimate/actual profile.
    pub nodes: Vec<NodeRecord>,
    /// Rendered `explain_analyze` tree, present when the query breached
    /// the slow-query threshold.
    pub slow_explain: Option<String>,
    /// Fragments the planner found range-collapsible — whether or not
    /// the collapse was applied (`jucq-log/2`; 0 from `/1` lines).
    pub range_eligible: u64,
    /// `RangeScan` nodes in the executed plan (`jucq-log/2`; 0 from
    /// `/1` lines). `range_eligible > 0 && range_scans_used == 0` marks
    /// a query that *could* have used interval scans but did not (knob
    /// off, or the run was broken up by the cover choice).
    pub range_scans_used: u64,
    /// Materialized fragment views resident in the catalog when the
    /// query ran (`jucq-log/3`, 0 from earlier lines). Together with
    /// `counters.view_hits` this is the advisor's signal: queries with
    /// a large catalog and zero hits pinned the wrong fragments.
    pub view_catalog_size: u64,
}

/// The `inf`-safe Q-error: `max(est/actual, actual/est)` with both
/// sides clamped to ≥ 1 row, `None` when there is no estimate or the
/// estimate is not finite (an overflowed cardinality product must not
/// poison the log with `inf`/`NaN`).
pub fn q_error_safe(est_rows: Option<f64>, actual_rows: u64) -> Option<f64> {
    let est = est_rows.filter(|e| e.is_finite())?.max(1.0);
    let actual = (actual_rows as f64).max(1.0);
    Some((est / actual).max(actual / est))
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_owned(),
    }
}

fn json_opt_bool(v: Option<bool>) -> String {
    match v {
        Some(b) => b.to_string(),
        None => "null".to_owned(),
    }
}

impl QueryRecord {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"schema\":\"jucq-log/4\",\"seq\":{},\"query\":\"{}\",\"fingerprint\":\"{}\",\
             \"strategy\":\"{}\",\"profile\":\"{}\",\"outcome\":\"{}\",\"rows\":{},\
             \"union_terms\":{},\"planning_ns\":{},\"eval_ns\":{}",
            self.seq,
            escape_json(&self.query),
            escape_json(&self.fingerprint),
            escape_json(&self.strategy),
            escape_json(&self.profile),
            escape_json(&self.outcome),
            self.rows,
            self.union_terms,
            self.planning_ns,
            self.eval_ns,
        );
        out.push_str(",\"cover\":");
        match &self.cover {
            None => out.push_str("null"),
            Some(fragments) => {
                out.push('[');
                for (i, frag) in fragments.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (j, atom) in frag.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{atom}");
                    }
                    out.push(']');
                }
                out.push(']');
            }
        }
        out.push_str(",\"plan_fingerprint\":");
        match &self.plan_fingerprint {
            None => out.push_str("null"),
            Some(fp) => {
                let _ = write!(out, "\"{}\"", escape_json(fp));
            }
        }
        let c = &self.counters;
        let _ = write!(
            out,
            ",\"counters\":{{\"tuples_scanned\":{},\"tuples_joined\":{},\
             \"tuples_materialized\":{},\"tuples_deduped\":{},\"sip_probes\":{},\
             \"sip_drops\":{},\"range_scans\":{},\"view_hits\":{},\"sorts_elided\":{},\
             \"gallop_seeks\":{}}}",
            c.tuples_scanned,
            c.tuples_joined,
            c.tuples_materialized,
            c.tuples_deduped,
            c.sip_probes,
            c.sip_drops,
            c.range_scans,
            c.view_hits,
            c.sorts_elided,
            c.gallop_seeks,
        );
        let _ = write!(
            out,
            ",\"range_eligible\":{},\"range_scans_used\":{},\"view_catalog_size\":{}",
            self.range_eligible, self.range_scans_used, self.view_catalog_size,
        );
        let _ = write!(
            out,
            ",\"cover_cache_hit\":{},\"plan_cache_hit\":{},\"max_q_error\":{}",
            json_opt_bool(self.cover_cache_hit),
            json_opt_bool(self.plan_cache_hit),
            json_opt_f64(self.max_q_error),
        );
        out.push_str(",\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"est_rows\":{},\"actual_rows\":{},\"elapsed_ns\":{},\
                 \"q_error\":{}}}",
                escape_json(&n.label),
                json_opt_f64(n.est_rows),
                n.actual_rows,
                n.elapsed_ns,
                json_opt_f64(n.q_error),
            );
        }
        out.push_str("],\"slow_explain\":");
        match &self.slow_explain {
            None => out.push_str("null"),
            Some(text) => {
                let _ = write!(out, "\"{}\"", escape_json(text));
            }
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line produced by [`QueryRecord::to_json_line`].
    ///
    /// Accepts `jucq-log/1` (pre-range), `jucq-log/2` (pre-views),
    /// `jucq-log/3` (pre-ordering) and `jucq-log/4` lines — replaying
    /// an old log against a new build is the whole point of the
    /// harness. Fields older versions lack (`range_eligible`,
    /// `range_scans_used`, `counters.range_scans` from `/1`;
    /// `view_catalog_size`, `counters.view_hits` from `/1` and `/2`;
    /// `counters.sorts_elided`, `counters.gallop_seeks` from `/1`–`/3`)
    /// default to 0.
    pub fn from_json_line(line: &str) -> Result<QueryRecord, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        match v.get("schema").and_then(Value::as_str) {
            Some("jucq-log/1" | "jucq-log/2" | "jucq-log/3" | "jucq-log/4") => {}
            other => return Err(format!("unsupported query-log schema {other:?}")),
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(ToOwned::to_owned)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing field `{key}`"))
        };
        let opt_f64 = |key: &str| v.get(key).and_then(Value::as_f64);
        let opt_bool = |key: &str| v.get(key).and_then(Value::as_bool);
        let cover = match v.get("cover") {
            None | Some(Value::Null) => None,
            Some(Value::Arr(fragments)) => Some(
                fragments
                    .iter()
                    .map(|f| {
                        f.as_arr()
                            .map(|atoms| atoms.iter().filter_map(Value::as_u64).collect())
                            .ok_or_else(|| "malformed cover fragment".to_owned())
                    })
                    .collect::<Result<Vec<Vec<u64>>, String>>()?,
            ),
            Some(_) => return Err("malformed `cover`".to_owned()),
        };
        let counters_v = v.get("counters").ok_or("missing `counters`")?;
        let counter = |key: &str| -> Result<u64, String> {
            counters_v
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing counter `{key}`"))
        };
        let nodes = match v.get("nodes") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|n| {
                    Ok(NodeRecord {
                        label: n
                            .get("label")
                            .and_then(Value::as_str)
                            .ok_or("node without `label`")?
                            .to_owned(),
                        est_rows: n.get("est_rows").and_then(Value::as_f64),
                        actual_rows: n
                            .get("actual_rows")
                            .and_then(Value::as_u64)
                            .ok_or("node without `actual_rows`")?,
                        elapsed_ns: n.get("elapsed_ns").and_then(Value::as_u64).unwrap_or(0),
                        q_error: n.get("q_error").and_then(Value::as_f64),
                    })
                })
                .collect::<Result<Vec<NodeRecord>, String>>()?,
            _ => Vec::new(),
        };
        Ok(QueryRecord {
            seq: u64_field("seq")?,
            query: str_field("query")?,
            fingerprint: str_field("fingerprint")?,
            strategy: str_field("strategy")?,
            profile: str_field("profile")?,
            outcome: str_field("outcome")?,
            rows: u64_field("rows")?,
            union_terms: u64_field("union_terms")?,
            planning_ns: u64_field("planning_ns")?,
            eval_ns: u64_field("eval_ns")?,
            cover,
            plan_fingerprint: v
                .get("plan_fingerprint")
                .and_then(Value::as_str)
                .map(ToOwned::to_owned),
            counters: RecordCounters {
                tuples_scanned: counter("tuples_scanned")?,
                tuples_joined: counter("tuples_joined")?,
                tuples_materialized: counter("tuples_materialized")?,
                tuples_deduped: counter("tuples_deduped")?,
                sip_probes: counter("sip_probes")?,
                sip_drops: counter("sip_drops")?,
                range_scans: counters_v.get("range_scans").and_then(Value::as_u64).unwrap_or(0),
                view_hits: counters_v.get("view_hits").and_then(Value::as_u64).unwrap_or(0),
                sorts_elided: counters_v.get("sorts_elided").and_then(Value::as_u64).unwrap_or(0),
                gallop_seeks: counters_v.get("gallop_seeks").and_then(Value::as_u64).unwrap_or(0),
            },
            cover_cache_hit: opt_bool("cover_cache_hit"),
            plan_cache_hit: opt_bool("plan_cache_hit"),
            max_q_error: opt_f64("max_q_error"),
            nodes,
            slow_explain: v.get("slow_explain").and_then(Value::as_str).map(ToOwned::to_owned),
            range_eligible: v.get("range_eligible").and_then(Value::as_u64).unwrap_or(0),
            range_scans_used: v.get("range_scans_used").and_then(Value::as_u64).unwrap_or(0),
            view_catalog_size: v.get("view_catalog_size").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// Parse a whole query-log document: one record per non-empty line.
/// Unparsable lines are returned separately rather than aborting the
/// load (logs may be truncated mid-line by a crash).
pub fn parse_log(text: &str) -> (Vec<QueryRecord>, Vec<String>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match QueryRecord::from_json_line(line) {
            Ok(r) => records.push(r),
            Err(e) => errors.push(format!("line {}: {e}", lineno + 1)),
        }
    }
    (records, errors)
}

/// Query-log sink configuration (see [`install`]).
#[derive(Debug, Clone, Default)]
pub struct QueryLogConfig {
    /// JSONL file to append records to; `None` keeps records only in
    /// the in-process ring.
    pub path: Option<PathBuf>,
    /// Ring capacity; 0 selects the default (1024).
    pub ring_capacity: usize,
    /// Queries at or above this total (planning + evaluation) duration
    /// also log their rendered `explain_analyze` tree.
    pub slow_threshold: Option<Duration>,
}

const DEFAULT_RING_CAPACITY: usize = 1024;

struct Sink {
    file: Option<File>,
    path: Option<PathBuf>,
    ring: VecDeque<QueryRecord>,
    capacity: usize,
    slow_threshold: Option<Duration>,
    next_seq: u64,
}

impl Sink {
    /// Flush buffered writes and force the bytes to disk, so every
    /// record submitted before a replacement is durable before the old
    /// handle drops. Failures warn once instead of failing the caller —
    /// the same policy as [`submit`].
    fn flush(&mut self) {
        if let Some(file) = &mut self.file {
            if file.flush().and_then(|()| file.sync_all()).is_err() {
                let msg = format!("query-log flush of {:?} failed on sink replacement", self.path);
                crate::warn_once("warn.query_log_flush_failed", &msg);
            }
        }
    }
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

fn sink() -> std::sync::MutexGuard<'static, Option<Sink>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Install the query-log sink. A previous sink is flushed to disk and
/// then dropped — replacement can never lose its tail records. With a
/// `path`, records are appended to the file as JSONL; the ring always
/// retains the most recent `ring_capacity` records in memory. On open
/// failure the previous sink stays installed untouched.
pub fn install(config: QueryLogConfig) -> std::io::Result<()> {
    let file = match &config.path {
        Some(p) => Some(File::options().create(true).append(true).open(p)?),
        None => None,
    };
    let capacity =
        if config.ring_capacity == 0 { DEFAULT_RING_CAPACITY } else { config.ring_capacity };
    let mut guard = sink();
    if let Some(mut old) = guard.take() {
        old.flush();
    }
    *guard = Some(Sink {
        file,
        path: config.path,
        ring: VecDeque::with_capacity(capacity.min(4096)),
        capacity,
        slow_threshold: config.slow_threshold,
        next_seq: 1,
    });
    Ok(())
}

/// Install the sink from `JUCQ_QUERY_LOG` (file path) and `JUCQ_SLOW_MS`
/// (slow-query threshold in milliseconds), when set. Returns whether a
/// sink was installed. An unparsable `JUCQ_SLOW_MS` warns once and is
/// ignored.
pub fn install_from_env() -> bool {
    let path = std::env::var_os("JUCQ_QUERY_LOG").map(PathBuf::from);
    let slow_threshold = slow_ms_from_env();
    if path.is_none() && slow_threshold.is_none() {
        return false;
    }
    let config = QueryLogConfig { path: path.clone(), ring_capacity: 0, slow_threshold };
    match install(config) {
        Ok(()) => true,
        Err(e) => {
            crate::warn_once(
                "warn.query_log_open_failed",
                &format!("cannot open JUCQ_QUERY_LOG {path:?}: {e}"),
            );
            false
        }
    }
}

/// Parse `JUCQ_SLOW_MS` into a threshold, warning once when unparsable.
pub fn slow_ms_from_env() -> Option<Duration> {
    let raw = std::env::var("JUCQ_SLOW_MS").ok()?;
    match raw.trim().parse::<u64>() {
        Ok(ms) => Some(Duration::from_millis(ms)),
        Err(_) => {
            crate::warn_once(
                "warn.slow_ms_invalid",
                &format!("ignoring unparsable JUCQ_SLOW_MS `{raw}` (expected milliseconds)"),
            );
            None
        }
    }
}

/// Whether a query-log sink is installed.
pub fn installed() -> bool {
    sink().is_some()
}

/// The installed sink's slow-query threshold (None: no sink or no
/// threshold). Callers use this to decide whether to render the
/// `explain_analyze` tree before [`submit`]ting.
pub fn slow_threshold() -> Option<Duration> {
    sink().as_ref().and_then(|s| s.slow_threshold)
}

/// Submit one record: assigns its sequence number, appends the JSONL
/// line to the configured file (write failures warn once rather than
/// failing the query), and retains it in the ring. Returns the assigned
/// sequence number, or `None` when no sink is installed.
pub fn submit(mut record: QueryRecord) -> Option<u64> {
    let mut guard = sink();
    let s = guard.as_mut()?;
    record.seq = s.next_seq;
    s.next_seq += 1;
    let seq = record.seq;
    if let Some(file) = &mut s.file {
        let mut line = record.to_json_line();
        line.push('\n');
        if file.write_all(line.as_bytes()).is_err() {
            let msg =
                format!("query-log write to {:?} failed; further records may be lost", s.path);
            drop(guard);
            crate::warn_once("warn.query_log_write_failed", &msg);
            return Some(seq);
        }
    }
    while s.ring.len() >= s.capacity {
        s.ring.pop_front();
    }
    s.ring.push_back(record);
    crate::metrics::counter_add("query_log.records", 1);
    Some(seq)
}

/// Drain the in-memory ring (oldest first). The file, if any, is
/// untouched.
pub fn drain_ring() -> Vec<QueryRecord> {
    match sink().as_mut() {
        Some(s) => s.ring.drain(..).collect(),
        None => Vec::new(),
    }
}

/// Remove the sink, flushing and closing the log file.
pub fn uninstall() {
    if let Some(mut old) = sink().take() {
        old.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> QueryRecord {
        QueryRecord {
            seq: 7,
            query: "SELECT ?v0 WHERE { ?v0 <p> \"a \\\"quoted\\\" literal\" }".into(),
            fingerprint: "00c0ffee00c0ffee".into(),
            strategy: "GCov".into(),
            profile: "pg-like|join=Hash|mat=AllButLargest|inlj=false|share=true|vec=true|batch=1024|sip=true".into(),
            outcome: "ok".into(),
            rows: 42,
            union_terms: 13,
            planning_ns: 1_000_000,
            eval_ns: 2_500_000,
            cover: Some(vec![vec![0, 1], vec![2]]),
            plan_fingerprint: Some("deadbeef01020304".into()),
            counters: RecordCounters {
                tuples_scanned: 100,
                tuples_joined: 50,
                tuples_materialized: 20,
                tuples_deduped: 3,
                sip_probes: 10,
                sip_drops: 4,
                range_scans: 2,
                view_hits: 5,
                sorts_elided: 6,
                gallop_seeks: 9,
            },
            cover_cache_hit: Some(false),
            plan_cache_hit: None,
            max_q_error: Some(3.25),
            nodes: vec![
                NodeRecord {
                    label: "fragment[0].union".into(),
                    est_rows: Some(130.0),
                    actual_rows: 40,
                    elapsed_ns: 900,
                    q_error: Some(3.25),
                },
                NodeRecord {
                    label: "dedup".into(),
                    est_rows: None,
                    actual_rows: 42,
                    elapsed_ns: 100,
                    q_error: None,
                },
            ],
            slow_explain: None,
            range_eligible: 1,
            range_scans_used: 2,
            view_catalog_size: 3,
        }
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let rec = sample_record();
        let line = rec.to_json_line();
        crate::json::parse(&line).expect("record line is valid JSON");
        let parsed = QueryRecord::from_json_line(&line).expect("parses back");
        assert_eq!(parsed, rec);
        // Including the slow-explain text with newlines and quotes.
        let mut slow = rec;
        slow.slow_explain = Some("EXPLAIN ANALYZE\n  node \"x\"\t1 row\n".into());
        let parsed = QueryRecord::from_json_line(&slow.to_json_line()).expect("parses back");
        assert_eq!(parsed, slow);
    }

    #[test]
    fn v1_lines_still_parse_with_range_fields_defaulted() {
        // A line exactly as the jucq-log/1 writer produced it: no
        // `range_eligible`/`range_scans_used`, no `range_scans`,
        // `view_hits` or ordering counters, no `view_catalog_size`.
        let line = sample_record()
            .to_json_line()
            .replace("\"schema\":\"jucq-log/4\"", "\"schema\":\"jucq-log/1\"")
            .replace(
                ",\"range_scans\":2,\"view_hits\":5,\"sorts_elided\":6,\"gallop_seeks\":9}",
                "}",
            )
            .replace(",\"range_eligible\":1,\"range_scans_used\":2,\"view_catalog_size\":3", "");
        assert!(!line.contains("range"), "v1 line must carry no range fields: {line}");
        assert!(!line.contains("view"), "v1 line must carry no view fields: {line}");
        assert!(!line.contains("sorts_elided"), "v1 line must carry no ordering fields: {line}");
        let parsed = QueryRecord::from_json_line(&line).expect("v1 parses");
        assert_eq!(parsed.counters.range_scans, 0);
        assert_eq!(parsed.range_eligible, 0);
        assert_eq!(parsed.range_scans_used, 0);
        let mut expect = sample_record();
        expect.counters.range_scans = 0;
        expect.range_eligible = 0;
        expect.range_scans_used = 0;
        expect.counters.view_hits = 0;
        expect.view_catalog_size = 0;
        expect.counters.sorts_elided = 0;
        expect.counters.gallop_seeks = 0;
        assert_eq!(parsed, expect);
        // And the re-rendered line upgrades to /4 losslessly.
        let upgraded = QueryRecord::from_json_line(&parsed.to_json_line()).expect("v4 parses");
        assert_eq!(upgraded, expect);
    }

    #[test]
    fn v2_lines_still_parse_with_view_fields_defaulted() {
        // A line exactly as the jucq-log/2 writer produced it: range
        // fields present, but no `view_hits` or ordering counters and
        // no `view_catalog_size`.
        let line = sample_record()
            .to_json_line()
            .replace("\"schema\":\"jucq-log/4\"", "\"schema\":\"jucq-log/2\"")
            .replace(",\"view_hits\":5,\"sorts_elided\":6,\"gallop_seeks\":9}", "}")
            .replace(",\"view_catalog_size\":3", "");
        assert!(!line.contains("view"), "v2 line must carry no view fields: {line}");
        let parsed = QueryRecord::from_json_line(&line).expect("v2 parses");
        assert_eq!(parsed.counters.range_scans, 2, "range fields survive");
        assert_eq!(parsed.counters.view_hits, 0);
        assert_eq!(parsed.view_catalog_size, 0);
        let mut expect = sample_record();
        expect.counters.view_hits = 0;
        expect.view_catalog_size = 0;
        expect.counters.sorts_elided = 0;
        expect.counters.gallop_seeks = 0;
        assert_eq!(parsed, expect);
        // And the re-rendered line upgrades to /4 losslessly.
        let upgraded = QueryRecord::from_json_line(&parsed.to_json_line()).expect("v4 parses");
        assert_eq!(upgraded, expect);
    }

    #[test]
    fn v3_lines_still_parse_with_ordering_counters_defaulted() {
        // A line exactly as the jucq-log/3 writer produced it: range and
        // view fields present, but no `sorts_elided`/`gallop_seeks`.
        let line = sample_record()
            .to_json_line()
            .replace("\"schema\":\"jucq-log/4\"", "\"schema\":\"jucq-log/3\"")
            .replace(",\"sorts_elided\":6,\"gallop_seeks\":9}", "}");
        assert!(!line.contains("sorts_elided"), "v3 line must carry no ordering fields: {line}");
        let parsed = QueryRecord::from_json_line(&line).expect("v3 parses");
        assert_eq!(parsed.counters.view_hits, 5, "view fields survive");
        assert_eq!(parsed.counters.sorts_elided, 0);
        assert_eq!(parsed.counters.gallop_seeks, 0);
        let mut expect = sample_record();
        expect.counters.sorts_elided = 0;
        expect.counters.gallop_seeks = 0;
        assert_eq!(parsed, expect);
        // And the re-rendered line upgrades to /4 losslessly.
        let upgraded = QueryRecord::from_json_line(&parsed.to_json_line()).expect("v4 parses");
        assert_eq!(upgraded, expect);
    }

    #[test]
    fn parse_log_collects_errors_without_aborting() {
        let good = sample_record().to_json_line();
        let text = format!("{good}\n\nnot json\n{good}\n{{\"schema\":\"other/9\"}}\n");
        let (records, errors) = parse_log(&text);
        assert_eq!(records.len(), 2);
        assert_eq!(errors.len(), 2);
        assert!(errors[0].contains("line 3"), "{errors:?}");
    }

    #[test]
    fn q_error_is_inf_safe() {
        // Zero actual and zero estimate both clamp to one row.
        assert_eq!(q_error_safe(Some(0.0), 0), Some(1.0));
        assert_eq!(q_error_safe(Some(0.0), 10), Some(10.0));
        assert_eq!(q_error_safe(Some(10.0), 0), Some(10.0));
        // Non-finite estimates yield None, never inf/NaN.
        assert_eq!(q_error_safe(Some(f64::INFINITY), 5), None);
        assert_eq!(q_error_safe(Some(f64::NAN), 5), None);
        assert_eq!(q_error_safe(None, 5), None);
        // All produced values are finite and ≥ 1.
        for (est, actual) in [(1.0, 1u64), (1e300, 1), (1.0, u64::MAX)] {
            let q = q_error_safe(Some(est), actual).unwrap();
            assert!(q.is_finite() && q >= 1.0, "{est}/{actual} -> {q}");
        }
    }

    #[test]
    fn sink_assigns_seq_and_bounds_the_ring() {
        let _serial = crate::test_lock();
        uninstall();
        assert!(!installed());
        assert_eq!(submit(sample_record()), None, "no sink, no seq");
        install(QueryLogConfig { path: None, ring_capacity: 2, slow_threshold: None })
            .expect("install");
        assert!(installed());
        assert_eq!(slow_threshold(), None);
        for i in 0..3 {
            let mut r = sample_record();
            r.rows = i;
            assert_eq!(submit(r), Some(i + 1));
        }
        let drained = drain_ring();
        assert_eq!(drained.len(), 2, "ring keeps the most recent records");
        assert_eq!(drained[0].seq, 2);
        assert_eq!(drained[1].seq, 3);
        assert_eq!(drained[1].rows, 2);
        uninstall();
        assert!(!installed());
    }

    #[test]
    fn sink_appends_jsonl_to_the_file() {
        let _serial = crate::test_lock();
        uninstall();
        let path =
            std::env::temp_dir().join(format!("jucq-record-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        install(QueryLogConfig {
            path: Some(path.clone()),
            ring_capacity: 0,
            slow_threshold: Some(Duration::from_millis(250)),
        })
        .expect("install");
        assert_eq!(slow_threshold(), Some(Duration::from_millis(250)));
        submit(sample_record());
        submit(sample_record());
        uninstall();
        let text = std::fs::read_to_string(&path).expect("log file written");
        let (records, errors) = parse_log(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reinstall_flushes_the_previous_sink_before_replacing_it() {
        let _serial = crate::test_lock();
        uninstall();
        let pid = std::process::id();
        let first = std::env::temp_dir().join(format!("jucq-record-reinstall-a-{pid}.jsonl"));
        let second = std::env::temp_dir().join(format!("jucq-record-reinstall-b-{pid}.jsonl"));
        let _ = std::fs::remove_file(&first);
        let _ = std::fs::remove_file(&second);

        install(QueryLogConfig {
            path: Some(first.clone()),
            ring_capacity: 4,
            slow_threshold: None,
        })
        .expect("install first");
        submit(sample_record());
        submit(sample_record());
        // Replace the sink while the first still holds tail records.
        install(QueryLogConfig {
            path: Some(second.clone()),
            ring_capacity: 4,
            slow_threshold: None,
        })
        .expect("install second");

        // Every record submitted before the swap is durable on disk —
        // without waiting for the process to exit or the file to drop.
        let text = std::fs::read_to_string(&first).expect("first log written");
        let (records, errors) = parse_log(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(records.len(), 2, "no tail records lost on replacement");
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);

        // The fresh sink starts clean: its own seq space and ring.
        submit(sample_record());
        let drained = drain_ring();
        assert_eq!(drained.len(), 1, "old ring does not leak into the new sink");
        assert_eq!(drained[0].seq, 1);
        uninstall();
        let text = std::fs::read_to_string(&second).expect("second log written");
        let (records, errors) = parse_log(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(records.len(), 1);
        let _ = std::fs::remove_file(&first);
        let _ = std::fs::remove_file(&second);
    }
}
