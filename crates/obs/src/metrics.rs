//! A process-global metrics registry: counters, gauges, and
//! log₂-bucketed histograms under dotted names.
//!
//! Naming convention is `component.metric[.unit]`, e.g.
//! `plan_cache.hits`, `exec.tuples_scanned`,
//! `pipeline.cover_search.ns`. Writers go through the free functions
//! ([`counter_add`], [`gauge_set`], [`histogram_record`]) which no-op
//! while observability is disabled; readers snapshot the whole registry
//! at once.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of log₂ buckets: values up to 2⁶³ land in a bucket.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index of a sample: 0 holds the value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive-exclusive value range `[lo, hi)` of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1u64 << (i - 1), if i >= 64 { u64::MAX } else { 1u64 << i })
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value).min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (a conservative estimate; exact values are not retained).
    pub fn quantile_le(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }
}

/// Read-only view of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample, 0 if empty.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Conservative 50th-percentile upper bound.
    pub p50: u64,
    /// Conservative 90th-percentile upper bound.
    pub p90: u64,
    /// Conservative 95th-percentile upper bound.
    pub p95: u64,
    /// Conservative 99th-percentile upper bound.
    pub p99: u64,
    /// Non-empty buckets as `(lo, hi_exclusive, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl Histogram {
    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile_le(0.50),
            p90: self.quantile_le(0.90),
            p95: self.quantile_le(0.95),
            p99: self.quantile_le(0.99),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    let (lo, hi) = bucket_bounds(i);
                    (lo, hi, c)
                })
                .collect(),
        }
    }
}

/// Consistent point-in-time view of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// The registry backing the free functions; obtain it via [`global`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Registry {
    /// Add `delta` to the counter `name`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut c = self.counters.lock().expect("counters poisoned");
        *c.entry(name).or_insert(0) += delta;
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        self.gauges.lock().expect("gauges poisoned").insert(name, value);
    }

    /// Record one histogram sample under `name`.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        let mut h = self.histograms.lock().expect("histograms poisoned");
        h.entry(name).or_default().record(value);
    }

    /// Snapshot everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("counters poisoned")
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauges poisoned")
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("histograms poisoned")
                .iter()
                .map(|(&k, h)| (k.to_owned(), h.snapshot()))
                .collect(),
        }
    }

    /// Clear all metrics.
    pub fn reset(&self) {
        self.counters.lock().expect("counters poisoned").clear();
        self.gauges.lock().expect("gauges poisoned").clear();
        self.histograms.lock().expect("histograms poisoned").clear();
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Add to a global counter (no-op while observability is disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if crate::enabled() {
        global().counter_add(name, delta);
    }
}

/// Set a global gauge (no-op while observability is disabled).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if crate::enabled() {
        global().gauge_set(name, value);
    }
}

/// Record a global histogram sample (no-op while disabled).
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if crate::enabled() {
        global().histogram_record(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1013);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // Bucket sanity: value 0 → [0,1), 1 → [1,2), 3 → [2,4), 8 → [8,16).
        assert!(s.buckets.contains(&(0, 1, 1)));
        assert!(s.buckets.contains(&(1, 2, 2)));
        assert!(s.buckets.contains(&(2, 4, 1)));
        assert!(s.buckets.contains(&(8, 16, 1)));
        // p50 of [0,1,1,3,8,1000]: 3rd rank lands in the [1,2) bucket.
        assert!(s.p50 <= 3);
        assert!(s.p99 >= 512 && s.p99 <= 1000);
        // The percentile chain is monotone: p50 ≤ p90 ≤ p95 ≤ p99 ≤ max.
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // p95 of 6 samples is the 6th rank: the [512,1024) bucket.
        assert!(s.p95 >= 512 && s.p95 <= 1000);
    }

    #[test]
    fn registry_isolated_instance() {
        let r = Registry::default();
        r.counter_add("t.hits", 2);
        r.counter_add("t.hits", 3);
        r.gauge_set("t.ratio", 0.5);
        r.histogram_record("t.lat", 7);
        let s = r.snapshot();
        assert_eq!(s.counter("t.hits"), 5);
        assert_eq!(s.gauges["t.ratio"], 0.5);
        assert_eq!(s.histograms["t.lat"].count, 1);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn free_functions_gate_on_enabled() {
        let _serial = crate::test_lock();
        crate::set_enabled(false);
        counter_add("gate.off", 1);
        assert_eq!(global().snapshot().counter("gate.off"), 0);
        crate::set_enabled(true);
        counter_add("gate.on", 1);
        crate::set_enabled(false);
        assert_eq!(global().snapshot().counter("gate.on"), 1);
        global().reset();
    }
}
