//! Chrome-trace-event (catapult JSON) export of a span session.
//!
//! Perfetto and `about://tracing` both load the catapult "JSON Trace
//! Event Format": an object with a `traceEvents` array of events. We
//! emit one complete (`"ph":"X"`) event per recorded span — timestamps
//! and durations in *microseconds* per the format — with the span's
//! thread index as `tid`, so a query's span tree opens as a per-thread
//! flame chart. Events are sorted by start time, which the format does
//! not require but some viewers load faster with.

use std::fmt::Write as _;

use crate::export::escape_json;
use crate::ObsSession;

/// Process id used for all events (one trace = one jucq process).
const PID: u64 = 1;

/// Render `session`'s spans as a catapult JSON trace document.
pub fn to_chrome_trace(session: &ObsSession) -> String {
    let mut spans: Vec<&crate::SpanRecord> = session.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    let mut out = String::with_capacity(256 + spans.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    // A metadata event naming the process, per the format.
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"ts\":0,\
         \"args\":{{\"name\":\"jucq\"}}}}"
    );
    for s in &spans {
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"cat\":\"jucq\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{PID},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            escape_json(s.name),
            micros(s.start_ns),
            micros(s.dur_ns),
            s.thread,
            s.id,
            s.parent.map_or("null".to_owned(), |p| p.to_string()),
        );
    }
    if session.dropped_spans > 0 {
        let _ = write!(
            out,
            ",{{\"name\":\"dropped_spans\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"ts\":0,\
             \"args\":{{\"count\":{}}}}}",
            session.dropped_spans
        );
    }
    out.push_str("]}");
    out
}

/// Nanoseconds as a microsecond decimal with nanosecond precision
/// (catapult timestamps are float microseconds).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Validate `text` against the catapult schema subset this exporter
/// relies on: a `traceEvents` array whose events carry
/// `name`/`ph`/`pid`/`tid`, whose complete (`"X"`) events carry
/// non-negative `ts`/`dur`, and whose `ts` sequence is monotone
/// non-decreasing. Returns the number of complete events. Used by the
/// crate's tests and the CI record→replay smoke.
pub fn validate_catapult(text: &str) -> Result<usize, String> {
    use crate::json::{self, Value};
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events =
        doc.get("traceEvents").and_then(Value::as_arr).ok_or("missing `traceEvents` array")?;
    let mut last_ts = f64::MIN;
    let mut complete = 0;
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Value::as_str).ok_or(format!("event {i} missing `ph`"))?;
        e.get("name").and_then(Value::as_str).ok_or(format!("event {i} missing `name`"))?;
        e.get("pid").and_then(Value::as_u64).ok_or(format!("event {i} missing `pid`"))?;
        e.get("tid").and_then(Value::as_u64).ok_or(format!("event {i} missing `tid`"))?;
        if ph == "X" {
            let ts =
                e.get("ts").and_then(Value::as_f64).ok_or(format!("event {i} missing `ts`"))?;
            let dur =
                e.get("dur").and_then(Value::as_f64).ok_or(format!("event {i} missing `dur`"))?;
            if ts < 0.0 || dur < 0.0 {
                return Err(format!("event {i} has negative ts/dur"));
            }
            if ts < last_ts {
                return Err(format!("event {i} breaks ts monotonicity"));
            }
            last_ts = ts;
            complete += 1;
        }
    }
    Ok(complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::{ObsSession, SpanRecord};

    fn session() -> ObsSession {
        ObsSession {
            spans: vec![
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "execution",
                    start_ns: 1_500,
                    dur_ns: 800,
                    thread: 1,
                },
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "answer \"q\"",
                    start_ns: 1_000,
                    dur_ns: 2_000,
                    thread: 1,
                },
                SpanRecord {
                    id: 3,
                    parent: None,
                    name: "worker",
                    start_ns: 1_600,
                    dur_ns: 100,
                    thread: 2,
                },
            ],
            dropped_spans: 1,
            metrics: Default::default(),
        }
    }

    #[test]
    fn emits_schema_conformant_events() {
        let text = to_chrome_trace(&session());
        let complete = validate_catapult(&text).expect("valid catapult trace");
        assert_eq!(complete, 3);
        // Spot-check content: µs conversion and thread mapping.
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let answer = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("answer \"q\""))
            .expect("answer event");
        assert_eq!(answer.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(answer.get("dur").and_then(Value::as_f64), Some(2.0));
        assert_eq!(answer.get("tid").and_then(Value::as_u64), Some(1));
        let worker = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("worker"))
            .unwrap();
        assert_eq!(worker.get("tid").and_then(Value::as_u64), Some(2));
        // The drop-count metadata event survives.
        assert!(text.contains("dropped_spans"));
    }

    #[test]
    fn empty_session_is_still_valid() {
        let empty = ObsSession { spans: vec![], dropped_spans: 0, metrics: Default::default() };
        let text = to_chrome_trace(&empty);
        assert_eq!(validate_catapult(&text).expect("valid"), 0);
    }

    #[test]
    fn events_are_sorted_by_start() {
        let text = to_chrome_trace(&session());
        let doc = json::parse(&text).unwrap();
        let ts: Vec<f64> = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .map(|e| e.get("ts").and_then(Value::as_f64).unwrap())
            .collect();
        let mut sorted = ts.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(ts, sorted);
    }
}
